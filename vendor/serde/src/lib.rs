//! Offline vendored serde facade.
//!
//! The build environment has no crates.io access, so this crate provides
//! the serde surface the workspace uses — `Serialize`/`Deserialize` with
//! `#[derive(..)]`, `#[serde(with = "...")]` and `#[serde(default)]` —
//! over a simple self-describing [`Value`] data model instead of the
//! upstream visitor architecture. `serde_json` (also vendored) prints and
//! parses [`Value`]s. The public trait signatures match upstream closely
//! enough that the workspace's hand-written `serialize`/`deserialize`
//! helpers (e.g. duration-as-seconds with-modules) compile unchanged.

use std::collections::{BTreeMap, HashMap};
use std::convert::Infallible;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree value — the intermediate data model every
/// serializer and deserializer in this workspace speaks.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map (insertion order preserved).
    Map(Vec<(String, Value)>),
}

pub mod ser {
    //! Serialization traits.

    use super::Value;

    /// Error constraint for serializers.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        /// An error carrying a custom message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    /// A value that can render itself into a serializer.
    pub trait Serialize {
        /// Serializes `self`.
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
    }

    /// A sink for one value. All primitive entry points funnel into
    /// [`Serializer::serialize_value`] by default.
    pub trait Serializer: Sized {
        /// Successful output.
        type Ok;
        /// Error type.
        type Error: Error;

        /// Consumes a finished [`Value`] tree.
        fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

        /// Serializes a boolean.
        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::Bool(v))
        }
        /// Serializes a signed integer.
        fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::I64(v))
        }
        /// Serializes an unsigned integer.
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::U64(v))
        }
        /// Serializes an `f32`.
        fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::F64(v as f64))
        }
        /// Serializes an `f64`.
        fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::F64(v))
        }
        /// Serializes a string.
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::Str(v.to_string()))
        }
        /// Serializes a unit/null.
        fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::Null)
        }
        /// Serializes an absent option.
        fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::Null)
        }
        /// Serializes a present option.
        fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(super::to_value(v))
        }
    }

    impl Error for std::convert::Infallible {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            unreachable!("infallible serializer raised: {msg}")
        }
    }
}

pub mod de {
    //! Deserialization traits.

    use super::Value;

    /// Error constraint for deserializers.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        /// An error carrying a custom message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    /// A value that can reconstruct itself from a deserializer.
    pub trait Deserialize<'de>: Sized {
        /// Deserializes one value.
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
    }

    /// A source of one [`Value`] tree.
    pub trait Deserializer<'de>: Sized {
        /// Error type.
        type Error: Error;

        /// Yields the full value.
        fn take_value(self) -> Result<Value, Self::Error>;
    }

    /// Owned-deserializable marker, mirroring upstream.
    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
    impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
}

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

/// A serializer producing the [`Value`] tree itself; cannot fail.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Infallible;

    fn serialize_value(self, value: Value) -> Result<Value, Infallible> {
        Ok(value)
    }
}

/// Renders any serializable value to the [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    match v.serialize(ValueSerializer) {
        Ok(value) => value,
        Err(e) => match e {},
    }
}

/// A deserializer reading back from a [`Value`] tree, generic in the error
/// type so derived code can thread the caller's error through.
pub struct ValueDeserializer<E> {
    value: Value,
    _marker: std::marker::PhantomData<fn() -> E>,
}

impl<E> ValueDeserializer<E> {
    /// Wraps a value.
    pub fn new(value: Value) -> Self {
        ValueDeserializer { value, _marker: std::marker::PhantomData }
    }
}

impl<'de, E: de::Error> Deserializer<'de> for ValueDeserializer<E> {
    type Error = E;

    fn take_value(self) -> Result<Value, E> {
        Ok(self.value)
    }
}

/// Reconstructs any deserializable type from a [`Value`] tree.
pub fn from_value<'de, T: Deserialize<'de>, E: de::Error>(v: Value) -> Result<T, E> {
    T::deserialize(ValueDeserializer::<E>::new(v))
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! impl_serialize_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_u64(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_serialize_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_i64(*self as i64)
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bool(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f32(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_none(),
            Some(v) => s.serialize_some(v),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Seq(self.iter().map(to_value).collect()))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

/// Map keys must render as strings (JSON's constraint); numeric and string
/// keys are supported.
fn key_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::F64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key: {other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let entries =
            self.iter().map(|(k, v)| (key_string(&to_value(k)), to_value(v))).collect();
        s.serialize_value(Value::Map(entries))
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (key_string(&to_value(k)), to_value(v))).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        s.serialize_value(Value::Map(entries))
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::Seq(vec![$(to_value(&self.$idx)),+]))
            }
        }
    )*};
}

impl_serialize_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

fn as_u64<E: de::Error>(v: &Value, what: &str) -> Result<u64, E> {
    match v {
        Value::U64(n) => Ok(*n),
        Value::I64(n) if *n >= 0 => Ok(*n as u64),
        Value::F64(f) if *f >= 0.0 && f.fract() == 0.0 => Ok(*f as u64),
        other => Err(E::custom(format!("expected {what}, found {other:?}"))),
    }
}

fn as_i64<E: de::Error>(v: &Value, what: &str) -> Result<i64, E> {
    match v {
        Value::I64(n) => Ok(*n),
        Value::U64(n) if *n <= i64::MAX as u64 => Ok(*n as i64),
        Value::F64(f) if f.fract() == 0.0 => Ok(*f as i64),
        other => Err(E::custom(format!("expected {what}, found {other:?}"))),
    }
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),* $(,)?) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let n = as_u64::<D::Error>(&v, stringify!($t))?;
                <$t>::try_from(n)
                    .map_err(|_| de::Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_deserialize_int {
    ($($t:ty),* $(,)?) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let n = as_i64::<D::Error>(&v, stringify!($t))?;
                <$t>::try_from(n)
                    .map_err(|_| de::Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_deserialize_uint!(u8, u16, u32, u64, usize);
impl_deserialize_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(de::Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(de::Error::custom(format!("expected number, found {other:?}"))),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(de::Error::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(None),
            v => from_value::<T, D::Error>(v).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Seq(items) => items.into_iter().map(from_value::<T, D::Error>).collect(),
            other => Err(de::Error::custom(format!("expected sequence, found {other:?}"))),
        }
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    let key = from_value::<K, D::Error>(Value::Str(k))?;
                    Ok((key, from_value::<V, D::Error>(v)?))
                })
                .collect(),
            other => Err(de::Error::custom(format!("expected map, found {other:?}"))),
        }
    }
}

/// Support code for derive-generated impls. Not part of the public API.
#[doc(hidden)]
pub mod __private {
    use super::{de, from_value, to_value, Deserialize, Serialize, Value, ValueSerializer};
    use std::convert::Infallible;

    /// Runs a `with`-module serialize function against the value sink.
    pub fn with_to_value<F>(f: F) -> Value
    where
        F: FnOnce(ValueSerializer) -> Result<Value, Infallible>,
    {
        match f(ValueSerializer) {
            Ok(v) => v,
            Err(e) => match e {},
        }
    }

    /// Serializes one struct field.
    pub fn field_value<T: Serialize + ?Sized>(v: &T) -> Value {
        to_value(v)
    }

    /// Unwraps a map value, or errors.
    pub fn into_map<E: de::Error>(v: Value, ty: &str) -> Result<Vec<(String, Value)>, E> {
        match v {
            Value::Map(entries) => Ok(entries),
            other => Err(E::custom(format!("expected map for {ty}, found {other:?}"))),
        }
    }

    /// Removes and returns the entry named `name`, if present.
    pub fn take_field(entries: &mut Vec<(String, Value)>, name: &str) -> Option<Value> {
        let idx = entries.iter().position(|(k, _)| k == name)?;
        Some(entries.remove(idx).1)
    }

    /// Required field: missing is an error.
    pub fn field<'de, T: Deserialize<'de>, E: de::Error>(
        entries: &mut Vec<(String, Value)>,
        name: &'static str,
    ) -> Result<T, E> {
        match take_field(entries, name) {
            Some(v) => from_value(v),
            None => Err(E::custom(format!("missing field `{name}`"))),
        }
    }

    /// `#[serde(default)]` field: missing falls back to `Default`.
    pub fn field_default<'de, T: Deserialize<'de> + Default, E: de::Error>(
        entries: &mut Vec<(String, Value)>,
        name: &'static str,
    ) -> Result<T, E> {
        match take_field(entries, name) {
            Some(v) => from_value(v),
            None => Ok(T::default()),
        }
    }

    /// `#[serde(with = "...")]` field: applies the module's deserialize.
    pub fn field_with<'de, T, E: de::Error, F>(
        entries: &mut Vec<(String, Value)>,
        name: &'static str,
        f: F,
    ) -> Result<T, E>
    where
        F: FnOnce(super::ValueDeserializer<E>) -> Result<T, E>,
    {
        match take_field(entries, name) {
            Some(v) => f(super::ValueDeserializer::new(v)),
            None => Err(E::custom(format!("missing field `{name}`"))),
        }
    }

    /// `#[serde(with = "...", default)]` field: applies the module's
    /// deserialize, with missing falling back to `Default`.
    pub fn field_with_default<'de, T: Default, E: de::Error, F>(
        entries: &mut Vec<(String, Value)>,
        name: &'static str,
        f: F,
    ) -> Result<T, E>
    where
        F: FnOnce(super::ValueDeserializer<E>) -> Result<T, E>,
    {
        match take_field(entries, name) {
            Some(v) => f(super::ValueDeserializer::new(v)),
            None => Ok(T::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_to_value() {
        assert_eq!(to_value(&3u32), Value::U64(3));
        assert_eq!(to_value(&-2i64), Value::I64(-2));
        assert_eq!(to_value(&1.5f64), Value::F64(1.5));
        assert_eq!(to_value("hi"), Value::Str("hi".into()));
        assert_eq!(to_value(&Option::<u8>::None), Value::Null);
    }

    #[test]
    fn collections_to_value() {
        assert_eq!(
            to_value(&vec![1u32, 2]),
            Value::Seq(vec![Value::U64(1), Value::U64(2)])
        );
        let m = BTreeMap::from([("a".to_string(), 1u64)]);
        assert_eq!(to_value(&m), Value::Map(vec![("a".into(), Value::U64(1))]));
    }

    #[test]
    fn round_trip_via_value() {
        #[derive(Debug, PartialEq)]
        struct E(String);
        impl std::fmt::Display for E {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", self.0)
            }
        }
        impl de::Error for E {
            fn custom<T: std::fmt::Display>(msg: T) -> Self {
                E(msg.to_string())
            }
        }

        let v = to_value(&vec![(1u32, 2.5f64)]);
        let back: Vec<(u32, f64)> = match v {
            Value::Seq(items) => items
                .into_iter()
                .map(|it| match it {
                    Value::Seq(pair) => {
                        let mut pair = pair.into_iter();
                        Ok((
                            from_value::<u32, E>(pair.next().unwrap())?,
                            from_value::<f64, E>(pair.next().unwrap())?,
                        ))
                    }
                    other => Err(E::custom(format!("bad pair {other:?}"))),
                })
                .collect::<Result<_, E>>()
                .unwrap(),
            _ => panic!("expected seq"),
        };
        assert_eq!(back, vec![(1, 2.5)]);
    }
}
