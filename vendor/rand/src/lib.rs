//! Offline vendored subset of the `rand` crate API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the slice of `rand` it actually uses: a seedable, deterministic
//! generator ([`rngs::StdRng`], xoshiro256** seeded via splitmix64),
//! uniform range sampling ([`RngExt::random_range`]) and the
//! [`Distribution`] plumbing that `rand_distr` builds on. The streams are
//! deterministic in the seed — which is all the reproduction relies on —
//! but are *not* the same streams as the upstream crate.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Marker trait mirroring upstream `rand::Rng`; every [`RngCore`] is one.
pub trait Rng: RngCore {}
impl<R: RngCore + ?Sized> Rng for R {}

/// A type samplable uniformly from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                debug_assert!(span > 0, "empty range");
                // Multiply-shift bounded draw (Lemire); the tiny bias over a
                // u64 stream is irrelevant for these workloads.
                let x = rng.next_u64() as u128;
                low + ((x * span) >> 64) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

/// Ranges accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// One uniform draw from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample from an empty range");
                if high < <$t>::MAX {
                    <$t>::sample_range(rng, low, high + 1)
                } else if low > <$t>::MIN {
                    <$t>::sample_range(rng, low - 1, high) + 1
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_sample_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A distribution producing values of `T` from a generator.
pub trait Distribution<T> {
    /// One draw.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over a type's natural unit domain
/// (`[0, 1)` for floats, full width for integers, fair coin for `bool`).
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardUniform;

impl Distribution<f64> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Distribution<$t> for StandardUniform {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform draw from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A draw from the type's standard distribution.
    fn random<T>(&mut self) -> T
    where
        Self: Sized,
        StandardUniform: Distribution<T>,
    {
        StandardUniform.sample(self)
    }

    /// A draw from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit: f64 = StandardUniform.sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// A generator whose whole stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small generator is the same engine here.
    pub type SmallRng = StdRng;
}

/// A fresh generator seeded from the system clock — only for callers that
/// explicitly do not want reproducibility.
pub fn rng() -> rngs::StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    SeedableRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100).all(|_| a.random_range(0u64..1000) == c.random_range(0u64..1000));
        assert!(!same, "different seeds must differ somewhere");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: u32 = rng.random_range(5..8);
            assert!((5..8).contains(&n));
            let m: usize = rng.random_range(0..=4);
            assert!(m <= 4);
        }
    }

    #[test]
    fn uniform_f64_covers_the_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }
}
