//! Offline vendored subset of `rand_distr`: the normal distributions the
//! workspace samples for p-stable LSH draws and Gaussian synthetic data.

pub use rand::Distribution;
use rand::RngCore;

/// The standard normal `N(0, 1)`, via the Marsaglia polar method (one
/// draw per sample; the rejected mate is discarded to keep the
/// implementation stateless).
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let u: f64 = (rng.next_u64() >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0;
            let v: f64 = (rng.next_u64() >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl Distribution<f32> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        let x: f64 = StandardNormal.sample(rng);
        x as f32
    }
}

/// Errors constructing a parameterized distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or non-finite.
    BadVariance,
    /// The mean was non-finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation must be finite and >= 0"),
            NormalError::MeanTooSmall => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// A normal distribution with the given mean and standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let z: f64 = StandardNormal.sample(rng);
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.sample(StandardNormal)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn parameterized_normal_shifts_and_scales() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = Normal::new(10.0, 2.0).unwrap();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.sample(d)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.08, "mean = {mean}");
        assert!(Normal::new(0.0, -1.0).is_err());
    }
}
