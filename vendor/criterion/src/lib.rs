//! Offline vendored subset of the `criterion` benchmark harness.
//!
//! Keeps the `criterion` API shape (`criterion_group!`, `criterion_main!`,
//! groups, `BenchmarkId`, `Throughput`, `Bencher::iter`) but measures with
//! a plain wall-clock loop: warm up, calibrate an iteration count so one
//! sample takes a few milliseconds, time `sample_size` samples, and print
//! the median time per iteration (plus derived throughput). There is no
//! statistical analysis or HTML report — the numbers are for relative
//! comparisons within one run.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    /// Just the parameter as the label.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Times the benchmarked closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` in a timed loop; the measured time is read by the harness.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness handle.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.default_sample_size, None, f);
        self
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares work per iteration for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_bench(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Benchmarks a no-input closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_bench(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (upstream parity; nothing to flush here).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate: grow the per-sample iteration count until one sample
    // takes ~5 ms (or a single iteration is already slower than that).
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut per_iter: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let best = per_iter[0];

    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12}/s", human(n as f64 / median)),
        Some(Throughput::Bytes(n)) => format!("  {:>10}B/s", human(n as f64 / median)),
        None => String::new(),
    };
    println!(
        "bench {label:<48} median {:>12}  best {:>12}{rate}",
        human_time(median),
        human_time(best)
    );
}

fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn human(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2}k", x / 1e3)
    } else {
        format!("{x:.1}")
    }
}

/// Declares a group runner function from a list of bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }
}
