//! Offline vendored facade over `std::sync` exposing the `parking_lot`
//! lock API the workspace uses: `lock()`/`read()`/`write()` returning
//! guards directly (poisoning is absorbed — a panicked critical section
//! still leaves the data usable, matching `parking_lot` semantics).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new lock owning `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A readers-writer lock whose acquisitions cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new lock owning `value`.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poisoned_lock_stays_usable() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let mc = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = mc.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
