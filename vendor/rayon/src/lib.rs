//! Offline vendored subset of the `rayon` API, backed by a real executor.
//!
//! Unlike the original stand-in — which spawned fresh OS threads on every
//! `par_iter` call and copied its input into per-thread `Vec`s — this
//! implementation keeps a **persistent worker pool**:
//!
//! * Workers are spawned lazily on first use and parked on a condition
//!   variable between calls; no thread is created or destroyed per
//!   operation. The pool size defaults to the hardware parallelism and can
//!   be overridden with the `LSHDDP_THREADS` environment variable (read
//!   once, at pool initialization).
//! * Work is distributed by **work stealing over chunked index ranges**:
//!   every job splits its index space into many more chunks than there are
//!   threads, and workers (plus the submitting thread, which always
//!   participates) claim chunks through a shared atomic counter. A thread
//!   stuck on a long chunk simply stops claiming; the others drain the
//!   rest — skewed workloads load-balance instead of pinning one thread
//!   with a contiguous slab.
//! * Iteration is **lazy and zero-copy**: `par_iter` over a slice hands
//!   out `&T` references straight from the slice, `into_par_iter` over a
//!   `Vec` moves items out of the original buffer in place, and adaptors
//!   (`enumerate`, `map`) compose without materializing intermediate
//!   `Vec`s. Only terminal operations run the pool.
//!
//! Determinism: chunk *boundaries* depend only on the item count and
//! `with_min_len`, never on the thread count, and indexed outputs are
//! written to their final position directly. Every operation therefore
//! produces bit-identical results under any `LSHDDP_THREADS` value —
//! including floating-point `sum`/`reduce`, whose partial groupings are
//! fixed by the chunking.
//!
//! Panics: a panicking chunk is caught, the remaining chunks still run
//! (so sibling workers and the shared pool are never wedged), and the
//! panic payload is re-raised on the submitting thread once the job has
//! fully settled. A `Vec` producer interrupted mid-chunk leaks the
//! not-yet-consumed items of that chunk (it cannot tell which were moved
//! out) — a bounded leak on an already-panicking path.

use std::cell::Cell;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::num::NonZeroUsize;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Pool statistics and the chunk observer
// ---------------------------------------------------------------------------

/// Always-on scheduler counters (relaxed atomics bumped per job/chunk —
/// a few dozen per parallel call, far off any hot path).
static JOBS_SUBMITTED: AtomicU64 = AtomicU64::new(0);
static CHUNKS_RUN: AtomicU64 = AtomicU64::new(0);
static CHUNKS_STOLEN: AtomicU64 = AtomicU64::new(0);
/// Chunks run by each pool worker (index = worker id; the submitting
/// thread is not listed — its share is `chunks_run - sum(per_worker)`).
static WORKER_CHUNKS: OnceLock<Vec<AtomicU64>> = OnceLock::new();

thread_local! {
    /// This thread's pool-worker index, or `usize::MAX` for submitters.
    static WORKER_ID: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Point-in-time scheduler statistics.
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// Pool parallelism (submitting thread included).
    pub threads: usize,
    /// Jobs submitted through [`run_job`] since process start.
    pub jobs_submitted: u64,
    /// Chunks executed (by workers and submitters).
    pub chunks_run: u64,
    /// Chunks claimed by parked pool workers rather than the submitter —
    /// the work actually *stolen*.
    pub chunks_stolen: u64,
    /// Chunks executed by each pool worker, by worker index.
    pub per_worker_chunks: Vec<u64>,
}

/// Snapshots the scheduler counters (initializing the pool if needed).
pub fn pool_stats() -> PoolStats {
    let threads = pool().threads;
    PoolStats {
        threads,
        jobs_submitted: JOBS_SUBMITTED.load(Ordering::Relaxed),
        chunks_run: CHUNKS_RUN.load(Ordering::Relaxed),
        chunks_stolen: CHUNKS_STOLEN.load(Ordering::Relaxed),
        per_worker_chunks: WORKER_CHUNKS
            .get()
            .map(|v| v.iter().map(|c| c.load(Ordering::Relaxed)).collect())
            .unwrap_or_default(),
    }
}

/// Observer called after every executed chunk with `(run_nanos,
/// was_stolen, submit_tag)`.
type ChunkObserver = Box<dyn Fn(u64, bool, u64) + Send + Sync>;

static OBSERVER: OnceLock<ChunkObserver> = OnceLock::new();
/// Fast-path flag: [`JobCore::run_one`] reads the clock only when an
/// observer is installed, so untraced runs never pay per-chunk timing.
static OBSERVER_SET: AtomicBool = AtomicBool::new(false);
/// Called once per job on the *submitting* thread to produce an opaque
/// tag forwarded to the observer with every chunk of that job (obsv uses
/// it to parent chunk events under the submitting span).
static TAG_PROVIDER: OnceLock<fn() -> u64> = OnceLock::new();

/// Installs the process-wide chunk observer (at most once). The observer
/// runs on the executing thread after each chunk, with the chunk's run
/// time in nanoseconds, whether it was stolen by a pool worker, and the
/// submitting thread's tag (see [`set_chunk_tag_provider`]; 0 when no
/// provider is installed). Returns `false` if an observer was already
/// installed.
pub fn set_chunk_observer(f: Box<dyn Fn(u64, bool, u64) + Send + Sync>) -> bool {
    let installed = OBSERVER.set(f).is_ok();
    if installed {
        OBSERVER_SET.store(true, Ordering::Release);
    }
    installed
}

/// Installs the process-wide chunk tag provider (at most once), invoked
/// on the submitting thread as each job is created — only while an
/// observer is installed, so untagged runs pay nothing. Returns `false`
/// if a provider was already installed.
pub fn set_chunk_tag_provider(f: fn() -> u64) -> bool {
    TAG_PROVIDER.set(f).is_ok()
}

/// Admission gate called on the executing thread *before* each chunk
/// runs. Installed by a memory governor to pace chunk execution while the
/// process is over its memory budget. The gate MUST be bounded-wait: a
/// gate that blocks indefinitely deadlocks the pool, because the releases
/// it waits for are produced by other chunks of the same job.
type ChunkGate = Box<dyn Fn() + Send + Sync>;

static GATE: OnceLock<ChunkGate> = OnceLock::new();
/// Fast-path flag mirroring [`OBSERVER_SET`]: ungoverned runs never pay a
/// `OnceLock` read per chunk.
static GATE_SET: AtomicBool = AtomicBool::new(false);

/// Installs the process-wide chunk admission gate (at most once). Returns
/// `false` if a gate was already installed.
pub fn set_chunk_admission_gate(f: Box<dyn Fn() + Send + Sync>) -> bool {
    let installed = GATE.set(f).is_ok();
    if installed {
        GATE_SET.store(true, Ordering::Release);
    }
    installed
}

// ---------------------------------------------------------------------------
// The persistent pool
// ---------------------------------------------------------------------------

/// Number of chunks a job's index space is split into (before the
/// `with_min_len` floor). Deliberately a constant rather than a multiple of
/// the thread count: chunk boundaries — and therefore the grouping of
/// floating-point reductions — must not change when `LSHDDP_THREADS` does,
/// and 64 stealable chunks are plenty to balance skew on typical machines.
const DEFAULT_CHUNKS: usize = 64;

struct Pool {
    /// Logical parallelism: the submitting thread plus `threads - 1`
    /// pool workers.
    threads: usize,
    /// Jobs with unclaimed chunks. Kept short: finished jobs are pruned by
    /// both workers and submitters.
    queue: Mutex<Vec<Arc<JobCore>>>,
    /// Signaled when a new job is pushed; workers park here when idle.
    work_available: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();
static WORKERS: OnceLock<()> = OnceLock::new();

fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("LSHDDP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// The process-wide pool, initialized (and its workers spawned) on first
/// use. Workers are daemon threads: they park between jobs and die with
/// the process.
fn pool() -> &'static Pool {
    let p = POOL.get_or_init(|| Pool {
        threads: configured_threads(),
        queue: Mutex::new(Vec::new()),
        work_available: Condvar::new(),
    });
    WORKERS.get_or_init(|| {
        let n_workers = p.threads.saturating_sub(1);
        WORKER_CHUNKS
            .set((0..n_workers).map(|_| AtomicU64::new(0)).collect())
            .ok();
        for i in 0..n_workers {
            std::thread::Builder::new()
                .name(format!("lshddp-worker-{i}"))
                .spawn(move || worker_loop(p, i))
                .expect("failed to spawn pool worker");
        }
    });
    p
}

/// Number of threads the pool uses (including the submitting thread).
pub fn current_num_threads() -> usize {
    pool().threads
}

/// One submitted job: a chunked index space drained through an atomic
/// claim counter.
///
/// `run` points into the submitting thread's stack. Soundness: a chunk can
/// only be claimed while `claimed < total`, and the submitter does not
/// return from [`run_job`] until `completed == total`; therefore every
/// dereference of `run` happens while the submitter is still blocked in
/// `run_job` and the pointee is alive. After exhaustion, workers holding
/// the `Arc` touch only the atomics/locks owned by this struct.
struct JobCore {
    run: *const (dyn Fn(usize) + Sync),
    total: usize,
    claimed: AtomicUsize,
    completed: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Submitting thread's observer tag (see [`set_chunk_tag_provider`]).
    tag: u64,
}

unsafe impl Send for JobCore {}
unsafe impl Sync for JobCore {}

impl JobCore {
    /// Claims and runs one chunk; returns `false` when no chunks remain.
    /// `stolen` says whether the claimer is a parked pool worker (as
    /// opposed to the submitting thread draining its own job).
    fn run_one(&self, stolen: bool) -> bool {
        let i = self.claimed.fetch_add(1, Ordering::AcqRel);
        if i >= self.total {
            return false;
        }
        CHUNKS_RUN.fetch_add(1, Ordering::Relaxed);
        if stolen {
            CHUNKS_STOLEN.fetch_add(1, Ordering::Relaxed);
            let id = WORKER_ID.with(Cell::get);
            if let Some(counts) = WORKER_CHUNKS.get() {
                if let Some(c) = counts.get(id) {
                    c.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // Pace under memory pressure before touching the chunk (the gate
        // is bounded-wait, see `set_chunk_admission_gate`).
        if GATE_SET.load(Ordering::Acquire) {
            if let Some(gate) = GATE.get() {
                gate();
            }
        }
        // Safety: see the struct docs — a successful claim implies the
        // submitter is still inside `run_job`.
        let run = unsafe { &*self.run };
        // Per-chunk timing only when an observer is watching; untraced
        // runs never touch the clock here.
        let timed = OBSERVER_SET.load(Ordering::Acquire);
        let start = timed.then(std::time::Instant::now);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run(i))) {
            let mut slot = self.panic.lock().unwrap();
            slot.get_or_insert(payload);
        }
        if let (Some(start), Some(obs)) = (start, OBSERVER.get()) {
            obs(start.elapsed().as_nanos() as u64, stolen, self.tag);
        }
        let mut completed = self.completed.lock().unwrap();
        *completed += 1;
        if *completed == self.total {
            self.done.notify_all();
        }
        true
    }

    fn exhausted(&self) -> bool {
        self.claimed.load(Ordering::Acquire) >= self.total
    }
}

fn worker_loop(pool: &'static Pool, worker_id: usize) {
    WORKER_ID.with(|w| w.set(worker_id));
    loop {
        let job = {
            let mut q = pool.queue.lock().unwrap();
            loop {
                q.retain(|j| !j.exhausted());
                if let Some(j) = q.first() {
                    break j.clone();
                }
                q = pool.work_available.wait(q).unwrap();
            }
        };
        // Steal chunks until the job is drained, then look for the next.
        while job.run_one(true) {}
    }
}

/// Runs `total` chunks on the pool. The calling thread always participates
/// (progress never depends on a free worker, so nested calls from inside a
/// chunk cannot deadlock); idle workers steal chunks concurrently. Panics
/// from any chunk are re-raised here after the job has fully settled.
fn run_job(total: usize, run: &(dyn Fn(usize) + Sync)) {
    if total == 0 {
        return;
    }
    let p = pool();
    JOBS_SUBMITTED.fetch_add(1, Ordering::Relaxed);
    if p.threads <= 1 || total == 1 {
        CHUNKS_RUN.fetch_add(total as u64, Ordering::Relaxed);
        for i in 0..total {
            run(i);
        }
        return;
    }
    // Safety: the `'static` lifetime on the stored pointer is a lie the
    // claim/complete protocol makes good on — see the `JobCore` docs.
    let run_static: *const (dyn Fn(usize) + Sync + 'static) =
        unsafe { std::mem::transmute(run as *const (dyn Fn(usize) + Sync)) };
    let tag = if OBSERVER_SET.load(Ordering::Acquire) {
        TAG_PROVIDER.get().map_or(0, |f| f())
    } else {
        0
    };
    let job = Arc::new(JobCore {
        run: run_static,
        total,
        claimed: AtomicUsize::new(0),
        completed: Mutex::new(0),
        done: Condvar::new(),
        panic: Mutex::new(None),
        tag,
    });
    {
        let mut q = p.queue.lock().unwrap();
        q.push(job.clone());
    }
    p.work_available.notify_all();
    while job.run_one(false) {}
    let mut completed = job.completed.lock().unwrap();
    while *completed < total {
        completed = job.done.wait(completed).unwrap();
    }
    drop(completed);
    {
        let mut q = p.queue.lock().unwrap();
        q.retain(|j| !Arc::ptr_eq(j, &job));
    }
    let payload = job.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Runs two closures, potentially in parallel (one may be stolen by a pool
/// worker while the caller runs the other), returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let a_cell = Mutex::new(Some(a));
    let b_cell = Mutex::new(Some(b));
    let ra_cell = Mutex::new(None);
    let rb_cell = Mutex::new(None);
    run_job(2, &|i| {
        if i == 0 {
            let f = a_cell.lock().unwrap().take().expect("join arm claimed twice");
            *ra_cell.lock().unwrap() = Some(f());
        } else {
            let f = b_cell.lock().unwrap().take().expect("join arm claimed twice");
            *rb_cell.lock().unwrap() = Some(f());
        }
    });
    (
        ra_cell.into_inner().unwrap().expect("join arm a completed"),
        rb_cell.into_inner().unwrap().expect("join arm b completed"),
    )
}

/// Chunk boundaries for `len` items: a function of `(len, min_len)` only,
/// never of the thread count (see the module docs on determinism).
fn chunk_ranges(len: usize, min_len: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunk_len = len.div_ceil(DEFAULT_CHUNKS).max(min_len.max(1));
    (0..len)
        .step_by(chunk_len)
        .map(|lo| lo..(lo + chunk_len).min(len))
        .collect()
}

// ---------------------------------------------------------------------------
// Producers: lazy, splittable item sources
// ---------------------------------------------------------------------------

/// A fixed-length source of items consumable by disjoint index ranges from
/// multiple threads.
///
/// Contract: a terminal operation calls [`Producer::produce`] with
/// disjoint ranges covering `0..len` at most once each, in any order and
/// from any thread. Producers that move items out (the `Vec` producer)
/// rely on this for soundness.
pub trait Producer: Send + Sync {
    /// The item type.
    type Item: Send;
    /// Total number of items.
    fn len(&self) -> usize;
    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Feeds `sink` every `(index, item)` of `range`, ascending.
    fn produce(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, Self::Item));
}

/// Owning producer over a `Vec`'s buffer; items are moved out in place —
/// no intermediate copies, no per-thread staging `Vec`s.
pub struct VecProducer<T> {
    buf: *mut T,
    len: usize,
    cap: usize,
    /// Whether any range was produced; governs drop behavior.
    produced: AtomicBool,
}

unsafe impl<T: Send> Send for VecProducer<T> {}
unsafe impl<T: Send> Sync for VecProducer<T> {}

impl<T> VecProducer<T> {
    fn from_vec(v: Vec<T>) -> Self {
        let mut v = ManuallyDrop::new(v);
        VecProducer {
            buf: v.as_mut_ptr(),
            len: v.len(),
            cap: v.capacity(),
            produced: AtomicBool::new(false),
        }
    }
}

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.len
    }
    fn produce(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, T)) {
        self.produced.store(true, Ordering::Relaxed);
        for i in range {
            // Safety: the `Producer` contract guarantees each index is
            // produced at most once, so every element is read at most once.
            let item = unsafe { std::ptr::read(self.buf.add(i)) };
            sink(i, item);
        }
    }
}

impl<T> Drop for VecProducer<T> {
    fn drop(&mut self) {
        unsafe {
            if self.produced.load(Ordering::Relaxed) {
                // Items were (partially) moved out; free the buffer without
                // dropping elements. On a panic mid-chunk this leaks the
                // unconsumed tail — bounded, and only on unwinding paths.
                drop(Vec::from_raw_parts(self.buf, 0, self.cap));
            } else {
                // Never consumed: drop everything normally.
                drop(Vec::from_raw_parts(self.buf, self.len, self.cap));
            }
        }
    }
}

/// Borrowing producer over a slice: items are `&T` straight from the
/// slice — zero-copy.
pub struct SliceProducer<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn produce(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, &'a T)) {
        for i in range {
            sink(i, &self.slice[i]);
        }
    }
}

/// Producer over a numeric range.
pub struct RangeProducer<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_producer {
    ($($t:ty),* $(,)?) => {$(
        impl Producer for RangeProducer<$t> {
            type Item = $t;
            fn len(&self) -> usize {
                self.len
            }
            fn produce(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, $t)) {
                for i in range {
                    sink(i, self.start + i as $t);
                }
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = ParIter<RangeProducer<$t>>;
            fn into_par_iter(self) -> Self::Iter {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                ParIter::new(RangeProducer { start: self.start, len })
            }
        }
    )*};
}

/// Pairs every item with its index.
pub struct EnumerateProducer<P> {
    inner: P,
}

impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn produce(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, (usize, P::Item))) {
        self.inner.produce(range, &mut |i, item| sink(i, (i, item)));
    }
}

/// Applies a function lazily, at consumption time, on whichever thread
/// consumes the item.
pub struct MapProducer<P, F> {
    inner: P,
    f: F,
}

impl<P, U, F> Producer for MapProducer<P, F>
where
    P: Producer,
    U: Send,
    F: Fn(P::Item) -> U + Send + Sync,
{
    type Item = U;
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn produce(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, U)) {
        self.inner.produce(range, &mut |i, item| sink(i, (self.f)(item)));
    }
}

// ---------------------------------------------------------------------------
// ParIter: the public parallel-iterator surface
// ---------------------------------------------------------------------------

/// A lazy parallel iterator: adaptors compose producers, terminal
/// operations chunk the index space and drain it on the pool.
pub struct ParIter<P> {
    producer: P,
    min_len: usize,
}

/// Shared-pointer wrapper so indexed output writes can cross the closure's
/// `Sync` boundary.
struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<P: Producer> ParIter<P> {
    fn new(producer: P) -> Self {
        ParIter {
            producer,
            min_len: 1,
        }
    }

    /// Sets a minimum chunk length, bounding how finely the index space is
    /// split (rayon's `with_min_len`): raise it when per-item work is tiny
    /// and the per-chunk overhead would dominate.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Pairs every item with its index, preserving order. Lazy.
    pub fn enumerate(self) -> ParIter<EnumerateProducer<P>> {
        ParIter {
            producer: EnumerateProducer {
                inner: self.producer,
            },
            min_len: self.min_len,
        }
    }

    /// Parallel map. Lazy: `f` runs at consumption time on the consuming
    /// thread.
    pub fn map<U, F>(self, f: F) -> ParIter<MapProducer<P, F>>
    where
        U: Send,
        F: Fn(P::Item) -> U + Send + Sync,
    {
        ParIter {
            producer: MapProducer {
                inner: self.producer,
                f,
            },
            min_len: self.min_len,
        }
    }

    /// Runs `per_chunk` over every chunk range on the pool, returning the
    /// per-chunk results in chunk order.
    fn drive<R, F>(&self, per_chunk: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let ranges = chunk_ranges(self.producer.len(), self.min_len);
        let slots: Vec<Mutex<Option<R>>> = ranges.iter().map(|_| Mutex::new(None)).collect();
        run_job(ranges.len(), &|ci| {
            let r = per_chunk(ranges[ci].clone());
            *slots[ci].lock().unwrap() = Some(r);
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("chunk completed"))
            .collect()
    }

    /// Collects into a `Vec`, writing each item directly into its final
    /// position (no per-chunk staging buffers).
    fn collect_vec(self) -> Vec<P::Item> {
        let n = self.producer.len();
        let mut out: Vec<MaybeUninit<P::Item>> = Vec::with_capacity(n);
        // Safety: MaybeUninit needs no initialization; every slot is
        // written exactly once below before being read.
        unsafe { out.set_len(n) };
        let out_ptr = SendPtr(out.as_mut_ptr());
        let ranges = chunk_ranges(n, self.min_len);
        let producer = &self.producer;
        run_job(ranges.len(), &|ci| {
            let p = out_ptr;
            producer.produce(ranges[ci].clone(), &mut |i, item| {
                // Safety: each index is produced exactly once; disjoint
                // indices never alias.
                unsafe { p.0.add(i).write(MaybeUninit::new(item)) };
            });
        });
        // Safety: all n slots initialized; MaybeUninit<T> has T's layout.
        unsafe {
            let mut out = ManuallyDrop::new(out);
            Vec::from_raw_parts(out.as_mut_ptr() as *mut P::Item, out.len(), out.capacity())
        }
    }

    /// Collects the items, in input order.
    pub fn collect<C: FromIterator<P::Item>>(self) -> C {
        self.collect_vec().into_iter().collect()
    }

    /// Parallel side-effecting visit.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Send + Sync,
    {
        let producer = &self.producer;
        let ranges = chunk_ranges(producer.len(), self.min_len);
        run_job(ranges.len(), &|ci| {
            producer.produce(ranges[ci].clone(), &mut |_i, item| f(item));
        });
    }

    /// Parallel filter (the predicate runs in parallel; order preserved).
    /// Kept items go straight into per-chunk buffers — no intermediate
    /// `Option` staging.
    pub fn filter<F>(self, f: F) -> ParIter<VecProducer<P::Item>>
    where
        F: Fn(&P::Item) -> bool + Send + Sync,
    {
        let min_len = self.min_len;
        let producer = &self.producer;
        let chunks: Vec<Vec<P::Item>> = self.drive(|range| {
            let mut kept = Vec::new();
            producer.produce(range, &mut |_i, item| {
                if f(&item) {
                    kept.push(item);
                }
            });
            kept
        });
        let total = chunks.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for c in chunks {
            out.extend(c);
        }
        ParIter::new(VecProducer::from_vec(out)).with_min_len(min_len)
    }

    /// Parallel sum. Partial sums are grouped by chunk; chunk boundaries
    /// are thread-count independent, so the result is reproducible under
    /// any `LSHDDP_THREADS`.
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<P::Item> + std::iter::Sum<S>,
    {
        let producer = &self.producer;
        let partials: Vec<S> = self.drive(|range| {
            let mut acc: Option<S> = Some(std::iter::empty::<P::Item>().sum());
            producer.produce(range, &mut |_i, item| {
                let one: S = std::iter::once(item).sum();
                let prev = acc.take().expect("accumulator present");
                acc = Some([prev, one].into_iter().sum());
            });
            acc.expect("accumulator present")
        });
        partials.into_iter().sum()
    }

    /// Parallel reduction with an identity element. `op` must be
    /// associative; partials are combined in chunk order.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
    where
        ID: Fn() -> P::Item + Send + Sync,
        OP: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
    {
        let producer = &self.producer;
        let partials: Vec<P::Item> = self.drive(|range| {
            let mut acc = Some(identity());
            producer.produce(range, &mut |_i, item| {
                let prev = acc.take().expect("accumulator present");
                acc = Some(op(prev, item));
            });
            acc.expect("accumulator present")
        });
        partials.into_iter().fold(identity(), &op)
    }

    /// Parallel fold (rayon-style): each chunk folds sequentially from
    /// `identity()`, yielding one accumulator per chunk as a new parallel
    /// iterator — chain `.reduce(..)` or `.collect()` to combine.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<VecProducer<T>>
    where
        T: Send,
        ID: Fn() -> T + Send + Sync,
        F: Fn(T, P::Item) -> T + Send + Sync,
    {
        let min_len = self.min_len;
        let producer = &self.producer;
        let partials: Vec<T> = self.drive(|range| {
            let mut acc = Some(identity());
            producer.produce(range, &mut |_i, item| {
                let prev = acc.take().expect("accumulator present");
                acc = Some(fold_op(prev, item));
            });
            acc.expect("accumulator present")
        });
        ParIter::new(VecProducer::from_vec(partials)).with_min_len(min_len)
    }
}

// ---------------------------------------------------------------------------
// Entry-point conversion traits
// ---------------------------------------------------------------------------

/// Conversion into a [`ParIter`] by value.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Concrete iterator type.
    type Iter;
    /// Builds the iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<VecProducer<T>>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter::new(VecProducer::from_vec(self))
    }
}

impl_range_producer!(u8, u16, u32, u64, usize, i32, i64);

/// Conversion into a [`ParIter`] over references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Concrete iterator type.
    type Iter;
    /// Builds the iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<SliceProducer<'a, T>>;
    fn par_iter(&'a self) -> Self::Iter {
        ParIter::new(SliceProducer { slice: self })
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<SliceProducer<'a, T>>;
    fn par_iter(&'a self) -> Self::Iter {
        ParIter::new(SliceProducer { slice: self })
    }
}

/// The usual glob import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0..10_000u64).collect();
        let doubled: Vec<u64> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..10_000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_then_map() {
        let v = vec!["a", "b", "c"];
        let out: Vec<(usize, &str)> = v.into_par_iter().enumerate().map(|p| p).collect();
        assert_eq!(out, vec![(0, "a"), (1, "b"), (2, "c")]);
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<u32> = (0u32..100).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[7], 49);
        assert_eq!(squares.len(), 100);
    }

    #[test]
    fn slice_par_iter_is_zero_copy() {
        // The items handed out must be references into the original slice,
        // not copies.
        let v: Vec<u64> = (0..500).collect();
        let base = v.as_ptr() as usize;
        let addrs: Vec<usize> = v.par_iter().map(|x| x as *const u64 as usize).collect();
        for (i, a) in addrs.iter().enumerate() {
            assert_eq!(*a, base + i * std::mem::size_of::<u64>());
        }
    }

    #[test]
    fn filter_keeps_order() {
        let v: Vec<u32> = (0..1000).collect();
        let evens: Vec<u32> = v.into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(evens, (0..1000).filter(|x| x % 2 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn sum_and_reduce_match_sequential() {
        let v: Vec<u64> = (0..100_000).collect();
        let s: u64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, (0..100_000u64).sum());
        let m = (0..100_000u64)
            .into_par_iter()
            .reduce(|| 0, |a, b| a.max(b));
        assert_eq!(m, 99_999);
    }

    #[test]
    fn float_sum_is_deterministic() {
        // Chunk boundaries are thread-count independent, so repeated runs
        // (and runs under different LSHDDP_THREADS) give identical bits.
        let v: Vec<f64> = (0..10_000).map(|i| (i as f64).sqrt()).collect();
        let a: f64 = v.par_iter().map(|&x| x).sum();
        let b: f64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn fold_then_reduce() {
        let v: Vec<u64> = (1..=1000).collect();
        let total: u64 = v
            .into_par_iter()
            .fold(|| 0u64, |acc, x| acc + x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 500_500);
    }

    #[test]
    fn with_min_len_still_covers_everything() {
        let v: Vec<u32> = (0..1000).collect();
        let out: Vec<u32> = v.into_par_iter().with_min_len(64).map(|x| x + 1).collect();
        assert_eq!(out.len(), 1000);
        assert_eq!(out[999], 1000);
    }

    #[test]
    fn map_actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        if super::current_num_threads() < 2 {
            return;
        }
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let v: Vec<u64> = (0..1000u64).collect();
        let _: Vec<u64> = v
            .into_par_iter()
            .map(|x| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_micros(50));
                x
            })
            .collect();
        assert!(seen.lock().unwrap().len() >= 2, "expected work on >= 2 threads");
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let v: Vec<u32> = (0..1000).collect();
        let result = std::panic::catch_unwind(|| {
            let _: Vec<u32> = v
                .into_par_iter()
                .map(|x| {
                    if x == 777 {
                        panic!("boom at {x}");
                    }
                    x
                })
                .collect();
        });
        assert!(result.is_err(), "panic must reach the submitter");
        // The pool must still execute subsequent jobs correctly.
        let v: Vec<u32> = (0..1000).collect();
        let out: Vec<u32> = v.into_par_iter().map(|x| x * 3).collect();
        assert_eq!(out[999], 2997);
    }

    #[test]
    fn drop_types_are_not_leaked_or_double_dropped() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D(#[allow(dead_code)] u32);
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        DROPS.store(0, Ordering::Relaxed);
        let v: Vec<D> = (0..100).map(D).collect();
        let out: Vec<u32> = v.into_par_iter().map(|d| d.0 * 2).collect();
        assert_eq!(out.len(), 100);
        assert_eq!(DROPS.load(Ordering::Relaxed), 100, "each item dropped once");
    }

    #[test]
    fn pool_stats_count_jobs_and_chunks() {
        let before = super::pool_stats();
        let v: Vec<u64> = (0..10_000).collect();
        let _: u64 = v.par_iter().map(|&x| x).sum();
        let after = super::pool_stats();
        assert_eq!(after.threads, super::current_num_threads());
        assert!(after.jobs_submitted > before.jobs_submitted);
        assert!(after.chunks_run > before.chunks_run);
        assert!(after.chunks_stolen <= after.chunks_run);
        assert_eq!(
            after.per_worker_chunks.len(),
            after.threads.saturating_sub(1)
        );
    }

    #[test]
    fn unconsumed_vec_producer_drops_items() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        DROPS.store(0, Ordering::Relaxed);
        let v: Vec<D> = (0..10).map(|_| D).collect();
        let it = v.into_par_iter();
        drop(it);
        assert_eq!(DROPS.load(Ordering::Relaxed), 10);
    }
}
