//! Offline vendored subset of the `rayon` API.
//!
//! Implements the parallel-iterator surface this workspace uses —
//! `into_par_iter().enumerate().map(..).collect()` and friends — over
//! `std::thread::scope` with one chunk per hardware thread. There is no
//! work stealing: each adaptor materializes its input, and `map`/`for_each`
//! fan the items out across threads in contiguous, order-preserving
//! chunks. For the coarse task-sized closures the MapReduce engine and the
//! density kernels run, that recovers the parallel speedup that matters.

use std::num::NonZeroUsize;

/// Number of threads the pool would use (here: hardware parallelism).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

/// Order-preserving parallel map of `items` through `f`, chunked across
/// the available threads.
fn par_map_vec<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk_len).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    let outputs: Vec<Vec<U>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel map task panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(outputs.iter().map(Vec::len).sum());
    for chunk in outputs {
        out.extend(chunk);
    }
    out
}

/// An eager "parallel iterator": adaptors record the pipeline on a
/// materialized `Vec`, and the data-parallel stages (`map`, `for_each`)
/// execute across threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pairs every item with its index, preserving order.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Parallel map; the returned iterator holds the already-computed
    /// results in input order.
    pub fn map<U: Send, F>(self, f: F) -> ParIter<U>
    where
        F: Fn(T) -> U + Sync,
    {
        ParIter { items: par_map_vec(self.items, f) }
    }

    /// Parallel filter (predicate runs in parallel, order preserved).
    pub fn filter<F>(self, f: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        let kept = par_map_vec(self.items, |t| if f(&t) { Some(t) } else { None });
        ParIter { items: kept.into_iter().flatten().collect() }
    }

    /// Parallel side-effecting visit.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let _ = par_map_vec(self.items, f);
    }

    /// Collects the (already computed) items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sum of the items.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }

    /// Parallel reduction with an identity element.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        self.items.into_iter().fold(identity(), op)
    }
}

/// Conversion into a [`ParIter`] by value.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Builds the iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_into_par_iter_range {
    ($($t:ty),* $(,)?) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_into_par_iter_range!(u8, u16, u32, u64, usize, i32, i64);

/// Conversion into a [`ParIter`] over references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Builds the iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// The usual glob import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0..10_000u64).collect();
        let doubled: Vec<u64> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..10_000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_then_map() {
        let v = vec!["a", "b", "c"];
        let out: Vec<(usize, &str)> = v.into_par_iter().enumerate().map(|p| p).collect();
        assert_eq!(out, vec![(0, "a"), (1, "b"), (2, "c")]);
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<u32> = (0u32..100).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[7], 49);
        assert_eq!(squares.len(), 100);
    }

    #[test]
    fn map_actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        if super::current_num_threads() < 2 {
            return;
        }
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let v: Vec<u64> = (0..1000u64).collect();
        let _: Vec<u64> = v
            .into_par_iter()
            .map(|x| {
                seen.lock().unwrap().insert(std::thread::current().id());
                x
            })
            .collect();
        assert!(seen.lock().unwrap().len() >= 2, "expected work on >= 2 threads");
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }
}
