//! Offline vendored `#[derive(Serialize, Deserialize)]`.
//!
//! Implemented without `syn`/`quote`: the input item is parsed directly
//! from the raw `TokenStream` (only field/variant names and the
//! `#[serde(with = "...")]` / `#[serde(default)]` attributes matter — field
//! *types* are never parsed because the generated code lets inference
//! recover them at struct-literal / helper-call positions), and the impl is
//! generated as a source string re-parsed via `TokenStream::from_str`.
//!
//! Supported shapes: named-field structs, tuple structs, unit structs, and
//! enums with unit / tuple / struct variants (externally tagged, matching
//! serde_json's representation). Generics are not supported — the
//! workspace derives none.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

#[derive(Default)]
struct FieldAttrs {
    with: Option<String>,
    default: bool,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Consumes a run of `#[...]` attributes starting at `i`, extracting any
/// serde `with`/`default` settings and skipping everything else (docs,
/// cfg, derive, ...).
fn take_attrs(tokens: &[TokenTree], mut i: usize) -> (FieldAttrs, usize) {
    let mut attrs = FieldAttrs::default();
    while i + 1 < tokens.len() {
        let (TokenTree::Punct(p), TokenTree::Group(g)) = (&tokens[i], &tokens[i + 1]) else {
            break;
        };
        if p.as_char() != '#' || g.delimiter() != Delimiter::Bracket {
            break;
        }
        parse_attr_body(g, &mut attrs);
        i += 2;
    }
    (attrs, i)
}

/// Reads one `[...]` attribute body; only `serde(...)` contents are
/// interpreted.
fn parse_attr_body(group: &Group, attrs: &mut FieldAttrs) {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let Some(TokenTree::Ident(head)) = toks.first() else { return };
    if head.to_string() != "serde" {
        return;
    }
    let Some(TokenTree::Group(args)) = toks.get(1) else { return };
    let inner: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < inner.len() {
        match &inner[i] {
            TokenTree::Ident(id) if id.to_string() == "default" => {
                attrs.default = true;
                i += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "with" => {
                assert!(
                    i + 2 < inner.len() && is_punct(&inner[i + 1], '='),
                    "expected #[serde(with = \"path\")]"
                );
                let TokenTree::Literal(lit) = &inner[i + 2] else {
                    panic!("expected string literal in #[serde(with = ...)]");
                };
                let s = lit.to_string();
                attrs.with = Some(s.trim_matches('"').to_string());
                i += 3;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            other => panic!("unsupported serde attribute token: {other}"),
        }
    }
}

/// Skips `pub` / `pub(...)` at `i`.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Advances past a type, stopping after the top-level `,` (or at end).
/// Tracks `<...>` nesting; `->`'s `>` is not a closer.
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    let mut prev_dash = false;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && !prev_dash => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return i + 1,
            _ => {}
        }
        prev_dash = matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '-');
        i += 1;
    }
    i
}

/// Parses the `{ name: Type, ... }` body of a struct or struct variant.
fn parse_named_fields(group: &Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (attrs, ni) = take_attrs(&tokens, i);
        i = skip_visibility(&tokens, ni);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            panic!("expected field name, found {:?}", tokens.get(i).map(|t| t.to_string()));
        };
        let name = id.to_string();
        i += 1;
        assert!(
            tokens.get(i).is_some_and(|t| is_punct(t, ':')),
            "expected `:` after field `{name}`"
        );
        i = skip_type(&tokens, i + 1);
        fields.push(Field { name, attrs });
    }
    fields
}

/// Counts the fields of a `( ... )` tuple body.
fn tuple_arity(group: &Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut arity = 0;
    let mut i = 0;
    while i < tokens.len() {
        let (_, ni) = take_attrs(&tokens, i);
        i = skip_visibility(&tokens, ni);
        if i >= tokens.len() {
            break;
        }
        i = skip_type(&tokens, i);
        arity += 1;
    }
    arity
}

/// Parses the `{ Variant, Variant(T), Variant { .. } }` body of an enum.
fn parse_variants(group: &Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (_, ni) = take_attrs(&tokens, i);
        i = ni;
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            panic!("expected variant name, found {:?}", tokens.get(i).map(|t| t.to_string()));
        };
        let name = id.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(tuple_arity(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g))
            }
            _ => VariantKind::Unit,
        };
        if tokens.get(i).is_some_and(|t| is_punct(t, ',')) {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let keyword = loop {
        match tokens.get(i) {
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            Some(_) => i += 1,
            None => panic!("derive input has no struct or enum"),
        }
    };
    i += 1;
    let Some(TokenTree::Ident(id)) = tokens.get(i) else {
        panic!("expected type name after `{keyword}`");
    };
    let name = id.to_string();
    i += 1;
    assert!(
        !tokens.get(i).is_some_and(|t| is_punct(t, '<')),
        "derive on generic type `{name}` is not supported by the vendored serde"
    );
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if keyword == "enum" {
                Item::Enum { name, variants: parse_variants(g) }
            } else {
                Item::NamedStruct { name, fields: parse_named_fields(g) }
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Item::TupleStruct { name, arity: tuple_arity(g) }
        }
        Some(t) if is_punct(t, ';') => Item::UnitStruct { name },
        other => panic!("unsupported item body after `{name}`: {:?}", other.map(|t| t.to_string())),
    }
}

// ---------------------------------------------------------------------------
// Codegen (source strings re-parsed into TokenStreams)
// ---------------------------------------------------------------------------

const ERR: &str = "<__D::Error as ::serde::de::Error>";

/// Expression producing the `::serde::Value` for one field read through
/// `access` (e.g. `&self.rho` or a match binding).
fn ser_field_expr(f: &Field, access: &str) -> String {
    match &f.attrs.with {
        Some(w) => format!(
            "::serde::__private::with_to_value(|__vs| {w}::serialize({access}, __vs))"
        ),
        None => format!("::serde::__private::field_value({access})"),
    }
}

/// Statements pushing each named field into `__entries`.
fn ser_named_pushes(fields: &[Field], access: &dyn Fn(&str) -> String) -> String {
    fields
        .iter()
        .map(|f| {
            let expr = ser_field_expr(f, &access(&f.name));
            format!("__entries.push((\"{}\".to_string(), {expr}));\n", f.name)
        })
        .collect()
}

/// Struct-literal initializer for one named field read out of `__m`.
fn de_field_init(f: &Field) -> String {
    let n = &f.name;
    match (&f.attrs.with, f.attrs.default) {
        (Some(w), false) => format!(
            "{n}: ::serde::__private::field_with::<_, __D::Error, _>(&mut __m, \"{n}\", \
             |__vd| {w}::deserialize(__vd))?,\n"
        ),
        (Some(w), true) => format!(
            "{n}: ::serde::__private::field_with_default::<_, __D::Error, _>(&mut __m, \"{n}\", \
             |__vd| {w}::deserialize(__vd))?,\n"
        ),
        (None, true) => {
            format!("{n}: ::serde::__private::field_default::<_, __D::Error>(&mut __m, \"{n}\")?,\n")
        }
        (None, false) => {
            format!("{n}: ::serde::__private::field::<_, __D::Error>(&mut __m, \"{n}\")?,\n")
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, __s: __S) \
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all)]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(__d: __D) \
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let pushes = ser_named_pushes(fields, &|n| format!("&self.{n}"));
            impl_serialize(
                name,
                &format!(
                    "let mut __entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                         = ::std::vec::Vec::new();\n\
                     {pushes}\
                     __s.serialize_value(::serde::Value::Map(__entries))"
                ),
            )
        }
        Item::TupleStruct { name, arity: 1 } => impl_serialize(
            name,
            "__s.serialize_value(::serde::__private::field_value(&self.0))",
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::__private::field_value(&self.{i})"))
                .collect();
            impl_serialize(
                name,
                &format!(
                    "__s.serialize_value(::serde::Value::Seq(vec![{}]))",
                    items.join(", ")
                ),
            )
        }
        Item::UnitStruct { name } => impl_serialize(name, "__s.serialize_unit()"),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => __s.serialize_value(\
                                 ::serde::Value::Str(\"{vn}\".to_string())),\n"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => __s.serialize_value(::serde::Value::Map(vec![\
                                 (\"{vn}\".to_string(), ::serde::__private::field_value(__f0))])),\n"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let vals: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::__private::field_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => __s.serialize_value(::serde::Value::Map(vec![\
                                     (\"{vn}\".to_string(), ::serde::Value::Seq(vec![{}]))])),\n",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let pushes = ser_named_pushes(fields, &|n| n.to_string());
                            format!(
                                "{name}::{vn} {{ {} }} => {{\n\
                                     let mut __entries: ::std::vec::Vec<(::std::string::String, \
                                         ::serde::Value)> = ::std::vec::Vec::new();\n\
                                     {pushes}\
                                     __s.serialize_value(::serde::Value::Map(vec![\
                                         (\"{vn}\".to_string(), ::serde::Value::Map(__entries))]))\n\
                                 }}\n",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            impl_serialize(name, &format!("match self {{\n{arms}}}"))
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: String = fields.iter().map(de_field_init).collect();
            impl_deserialize(
                name,
                &format!(
                    "let __v = __d.take_value()?;\n\
                     let mut __m = ::serde::__private::into_map::<__D::Error>(__v, \"{name}\")?;\n\
                     let _ = &mut __m;\n\
                     ::core::result::Result::Ok({name} {{\n{inits}}})"
                ),
            )
        }
        Item::TupleStruct { name, arity: 1 } => impl_deserialize(
            name,
            &format!(
                "::core::result::Result::Ok({name}(\
                     ::serde::from_value::<_, __D::Error>(__d.take_value()?)?))"
            ),
        ),
        Item::TupleStruct { name, arity } => {
            let takes: Vec<String> = (0..*arity)
                .map(|_| "::serde::from_value::<_, __D::Error>(__it.next().unwrap())?".to_string())
                .collect();
            impl_deserialize(
                name,
                &format!(
                    "let __items = match __d.take_value()? {{\n\
                         ::serde::Value::Seq(__s) => __s,\n\
                         __other => return ::core::result::Result::Err({ERR}::custom(\
                             format!(\"expected sequence for {name}, found {{:?}}\", __other))),\n\
                     }};\n\
                     if __items.len() != {arity} {{\n\
                         return ::core::result::Result::Err({ERR}::custom(\
                             format!(\"expected {arity} elements for {name}, found {{}}\", \
                                 __items.len())));\n\
                     }}\n\
                     let mut __it = __items.into_iter();\n\
                     ::core::result::Result::Ok({name}({}))",
                    takes.join(", ")
                ),
            )
        }
        Item::UnitStruct { name } => impl_deserialize(
            name,
            &format!("__d.take_value()?; ::core::result::Result::Ok({name})"),
        ),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(\
                                 ::serde::from_value::<_, __D::Error>(__inner)?)),\n"
                        )),
                        VariantKind::Tuple(n) => {
                            let takes: Vec<String> = (0..*n)
                                .map(|_| {
                                    "::serde::from_value::<_, __D::Error>(__it.next().unwrap())?"
                                        .to_string()
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __items = match __inner {{\n\
                                         ::serde::Value::Seq(__s) => __s,\n\
                                         __other => return ::core::result::Result::Err(\
                                             {ERR}::custom(format!(\
                                                 \"expected sequence for {name}::{vn}, \
                                                  found {{:?}}\", __other))),\n\
                                     }};\n\
                                     if __items.len() != {n} {{\n\
                                         return ::core::result::Result::Err({ERR}::custom(\
                                             format!(\"expected {n} elements for {name}::{vn}, \
                                                 found {{}}\", __items.len())));\n\
                                     }}\n\
                                     let mut __it = __items.into_iter();\n\
                                     ::core::result::Result::Ok({name}::{vn}({}))\n\
                                 }}\n",
                                takes.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: String = fields.iter().map(de_field_init).collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let mut __m = ::serde::__private::into_map::<__D::Error>(\
                                         __inner, \"{name}::{vn}\")?;\n\
                                     let _ = &mut __m;\n\
                                     ::core::result::Result::Ok({name}::{vn} {{\n{inits}}})\n\
                                 }}\n"
                            ))
                        }
                    }
                })
                .collect();
            impl_deserialize(
                name,
                &format!(
                    "match __d.take_value()? {{\n\
                         ::serde::Value::Str(__tag) => match __tag.as_str() {{\n\
                             {unit_arms}\
                             __other => ::core::result::Result::Err({ERR}::custom(\
                                 format!(\"unknown unit variant `{{}}` of {name}\", __other))),\n\
                         }},\n\
                         ::serde::Value::Map(__entries) => {{\n\
                             if __entries.len() != 1 {{\n\
                                 return ::core::result::Result::Err({ERR}::custom(\
                                     \"expected single-entry map for enum {name}\"));\n\
                             }}\n\
                             let (__tag, __inner) = __entries.into_iter().next().unwrap();\n\
                             let _ = &__inner;\n\
                             match __tag.as_str() {{\n\
                                 {data_arms}\
                                 __other => ::core::result::Result::Err({ERR}::custom(\
                                     format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                             }}\n\
                         }}\n\
                         __other => ::core::result::Result::Err({ERR}::custom(\
                             format!(\"expected string or map for enum {name}, \
                                 found {{:?}}\", __other))),\n\
                     }}"
                ),
            )
        }
    }
}

fn emit(src: String) -> TokenStream {
    src.parse().unwrap_or_else(|e| panic!("generated derive code failed to parse: {e}\n{src}"))
}

/// Derives `serde::Serialize` (vendored Value-based flavor).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(gen_serialize(&parse_item(input)))
}

/// Derives `serde::Deserialize` (vendored Value-based flavor).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(gen_deserialize(&parse_item(input)))
}
