//! Offline vendored subset of `proptest`.
//!
//! Provides the strategy combinators and the `proptest!` test macro this
//! workspace uses, backed by the vendored `rand`. Differences from
//! upstream: no shrinking (a failing case panics with the case number and
//! seed, which is deterministic per test name, so failures reproduce), and
//! `prop_assert*` panic directly instead of threading `Result`.

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::*;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Keeps only values passing `pred`; panics (failing the test)
        /// if 1000 consecutive draws are rejected.
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, whence, pred }
        }

        /// Transforms generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into `f` to build a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Boxes the strategy (trait-object convenience, upstream parity).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter `{}` rejected 1000 consecutive draws", self.whence);
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        T: rand::SampleUniform + PartialOrd + Copy,
        std::ops::Range<T>: rand::SampleRange<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        T: rand::SampleUniform + PartialOrd + Copy,
        std::ops::RangeInclusive<T>: rand::SampleRange<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    macro_rules! impl_strategy_tuple {
        ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_strategy_tuple!(
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    );
}

pub mod arbitrary {
    //! `any::<T>()` — whole-domain strategies per type.

    use super::*;
    use crate::strategy::Strategy;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

    /// Whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Floats from raw bit patterns, so NaN / infinities / subnormals all
    /// occur — tests that need finite values filter explicitly.
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut StdRng) -> Self {
            char::from_u32(rng.random_range(0u32..0xD800)).unwrap_or('\u{fffd}')
        }
    }

    impl Arbitrary for String {
        fn arbitrary(rng: &mut StdRng) -> Self {
            let len = rng.random_range(0usize..24);
            (0..len).map(|_| char::arbitrary(rng)).collect()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::*;
    use crate::strategy::Strategy;

    /// Anything usable as a length specification: a fixed size or a range.
    pub trait SizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// A vector whose length comes from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Runner configuration.

    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Deterministic per-test seed so failures reproduce run-to-run.
#[doc(hidden)]
pub fn __seed_for(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::__seed_for(stringify!($name), __case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                (|| -> () { $body })();
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "prop_assert failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

pub mod prelude {
    //! The usual glob import.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1u32..10, y in -2.0f64..2.0, n in 1usize..=4) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..=4).contains(&n));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(0u32..100, 1..6),
            (a, b) in (0u8..4, Just(7u8)),
            f in any::<f64>().prop_filter("finite", |x| x.is_finite()),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 100));
            prop_assert!(a < 4);
            prop_assert_eq!(b, 7);
            prop_assert!(f.is_finite());
        }

        #[test]
        fn flat_map_builds_dependent_values(
            (len, v) in (1usize..5).prop_flat_map(|n|
                (Just(n), crate::collection::vec(0i64..10, n))),
        ) {
            prop_assert_eq!(v.len(), len);
        }
    }

    #[test]
    fn determinism_same_name_same_values() {
        let mut r1 = crate::__seed_for("t", 3);
        let mut r2 = crate::__seed_for("t", 3);
        let s = 0u64..1000;
        assert_eq!(
            crate::strategy::Strategy::generate(&s, &mut r1),
            crate::strategy::Strategy::generate(&s, &mut r2)
        );
    }
}
