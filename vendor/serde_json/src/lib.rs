//! Offline vendored `serde_json` subset.
//!
//! Renders the vendored `serde::Value` data model as JSON text. Only the
//! printing half (`to_string` / `to_string_pretty`) is provided — the
//! workspace never parses JSON back in; binary round-trips go through the
//! `wire` module instead.

use serde::{Serialize, Value};

/// Error type kept for signature compatibility; printing cannot fail.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&serde::to_value(value), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&serde::to_value(value), &mut out, Some(2), 0);
    Ok(out)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => write_str(s, out),
        Value::Seq(items) => {
            write_block(out, '[', ']', items.len(), indent, level, |out, i, lvl| {
                write_value(&items[i], out, indent, lvl);
            });
        }
        Value::Map(entries) => {
            write_block(out, '{', '}', entries.len(), indent, level, |out, i, lvl| {
                let (k, val) = &entries[i];
                write_str(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, lvl);
            });
        }
    }
}

fn write_block(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    level: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (level + 1)));
        }
        item(out, i, level + 1);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * level));
        }
    }
    out.push(close);
}

/// JSON has no NaN/Infinity; serde_json emits `null` for them.
fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        let s = if f == f.trunc() && f.abs() < 1e15 {
            format!("{f:.1}")
        } else {
            format!("{f}")
        };
        out.push_str(&s);
    } else {
        out.push_str("null");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn containers() {
        assert_eq!(to_string(&vec![1u8, 2, 3]).unwrap(), "[1,2,3]");
        let m = std::collections::BTreeMap::from([("k".to_string(), 1u64)]);
        assert_eq!(to_string(&m).unwrap(), "{\"k\":1}");
        assert_eq!(to_string(&Option::<u8>::None).unwrap(), "null");
        assert_eq!(to_string(&Some(7u8)).unwrap(), "7");
    }

    #[test]
    fn pretty_indents() {
        let m = std::collections::BTreeMap::from([("a".to_string(), vec![1u8, 2])]);
        assert_eq!(to_string_pretty(&m).unwrap(), "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }
}
