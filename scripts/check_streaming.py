#!/usr/bin/env python3
"""CI streaming-execution gate.

Validates the `streaming` scenario out of a BENCH_perf.json produced by
`bench_summary` (schema >= 8): LSH-DDP over a spilled snapshot at least
4x larger than the memory budget must finish with a rho/delta digest
bit-identical to the unbudgeted in-memory run, must actually exercise
the disk spill tier, and must hold its peak heap growth under the
configured multiple of the budget (default 1.25x).

Usage: check_streaming.py <BENCH_perf.json> [max_peak_over_budget]
"""

import json
import sys


def check(path: str, max_ratio: float) -> int:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    schema = doc.get("schema", 0)
    if schema < 8:
        print(f"{path}: schema {schema} < 8 — no streaming scenario; "
              "re-run bench_summary", file=sys.stderr)
        return 1
    s = doc.get("streaming")
    if not isinstance(s, dict):
        print(f"{path}: no streaming scenario in summary", file=sys.stderr)
        return 1

    failures = []
    budget = s.get("budget_bytes", 0)
    dataset = s.get("dataset_bytes", 0)
    if budget <= 0:
        failures.append("budget_bytes must be positive")
    if dataset < 4 * budget:
        failures.append(
            f"dataset {dataset} B is under 4x the {budget} B budget — "
            "the drill is not memory-constrained"
        )
    if not s.get("digests_match"):
        failures.append(
            "budgeted run diverged from the unbudgeted baseline "
            f"(resident {s.get('digest_resident')} != "
            f"budgeted {s.get('digest_budgeted')})"
        )
    if s.get("spill_bytes", 0) <= 0:
        failures.append("no bytes went through the spill tier (spill_bytes == 0)")
    peak = s.get("peak_over_baseline_bytes", 0)
    if peak <= 0:
        failures.append("allocator accounting recorded no heap growth")
    elif budget > 0 and peak > max_ratio * budget:
        failures.append(
            f"peak heap growth {peak} B exceeds {max_ratio:.2f}x the "
            f"{budget} B budget ({peak / budget:.2f}x)"
        )

    for msg in failures:
        print(f"{path}: {msg}", file=sys.stderr)
    if not failures:
        print(
            f"{path}: streaming drill ok — {s['points']} pts x {s['dim']} dims "
            f"({dataset / 1e6:.1f} MB) under a {budget / 1e6:.1f} MB budget: "
            f"digests match, spilled {s['spill_bytes'] / 1e6:.1f} MB, "
            f"stalled {s.get('backpressure_stall_ns', 0) / 1e6:.0f} ms, "
            f"peak +{peak / 1e6:.2f} MB ({peak / budget:.2f}x budget)"
        )
    return 1 if failures else 0


def main() -> int:
    if len(sys.argv) not in (2, 3):
        print(f"usage: {sys.argv[0]} <BENCH_perf.json> [max_peak_over_budget]",
              file=sys.stderr)
        return 2
    ratio = float(sys.argv[2]) if len(sys.argv) == 3 else 1.25
    return check(sys.argv[1], ratio)


if __name__ == "__main__":
    sys.exit(main())
