#!/usr/bin/env python3
"""CI spatial-index kernel gate.

Reads the `indexed_kernels` scenario out of a BENCH_perf.json produced by
`bench_summary` and fails unless the indexed kernels

* produced bit-identical `(rho, delta, upslope)` to the blocked kernels
  (`outputs_match` — pruning must change which distances are evaluated,
  never what comes out),
* actually skipped distance evaluations (`evals_skipped_frac > 0`), and
* ran at least `min_speedup` faster than the blocked kernels
  (default 2x, stated at n_p = 10k, dim = 8).

Usage: check_kernels.py <BENCH_perf.json> [min_speedup]
"""

import json
import sys


def main() -> int:
    if len(sys.argv) not in (2, 3):
        print(f"usage: {sys.argv[0]} <BENCH_perf.json> [min_speedup]",
              file=sys.stderr)
        return 2
    path = sys.argv[1]
    min_speedup = float(sys.argv[2]) if len(sys.argv) == 3 else 2.0
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    scenario = doc.get("indexed_kernels")
    if not isinstance(scenario, dict):
        print(f"{path}: no indexed_kernels scenario (schema {doc.get('schema')})",
              file=sys.stderr)
        return 1
    if not scenario["outputs_match"]:
        print(f"{path}: indexed kernels changed the pipeline output bits",
              file=sys.stderr)
        return 1
    skipped = scenario["evals_skipped_frac"]
    if skipped <= 0:
        print(f"{path}: index skipped no distance evaluations "
              f"({scenario['blocked_evals']} -> {scenario['indexed_evals']})",
              file=sys.stderr)
        return 1
    speedup = scenario["speedup"]
    if speedup < min_speedup:
        print(f"{path}: indexed kernels only {speedup:.2f}x faster at "
              f"n_p={scenario['points']} dim={scenario['dim']}, "
              f"need >= {min_speedup:.1f}x", file=sys.stderr)
        return 1
    print(f"{path}: indexed kernels {speedup:.1f}x faster at "
          f"n_p={scenario['points']} dim={scenario['dim']}, "
          f"{skipped:.1%} of {scenario['blocked_evals']} evals skipped, "
          f"outputs bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
