#!/usr/bin/env python3
"""CI hot-swap gate.

Reads the `hot_swap` scenario out of a BENCH_perf.json produced by
`bench_summary` and fails unless

* at least `min_swaps` model hot-swaps landed while client traffic was
  in flight (default 3),
* zero requests were dropped (every submit got an answer), and
* zero responses were incorrect — every answer was bit-equal to what
  one of the two model generations would have said offline, so no torn
  read or cross-version cache hit slipped through,
* both generations actually answered queries (the swaps were not all
  clustered before or after the traffic).

Usage: check_swap.py <BENCH_perf.json> [min_swaps]
"""

import json
import sys


def main() -> int:
    if len(sys.argv) not in (2, 3):
        print(f"usage: {sys.argv[0]} <BENCH_perf.json> [min_swaps]", file=sys.stderr)
        return 2
    path = sys.argv[1]
    min_swaps = int(sys.argv[2]) if len(sys.argv) == 3 else 3
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    scenario = doc.get("hot_swap")
    if not isinstance(scenario, dict):
        print(f"{path}: no hot_swap scenario (schema {doc.get('schema')})",
              file=sys.stderr)
        return 1
    swaps = scenario["swaps"]
    if swaps < min_swaps:
        print(f"{path}: only {swaps} hot-swaps landed under load, "
              f"need >= {min_swaps}", file=sys.stderr)
        return 1
    if scenario["dropped"] != 0:
        print(f"{path}: {scenario['dropped']} requests dropped across the swaps",
              file=sys.stderr)
        return 1
    if scenario["incorrect"] != 0:
        print(f"{path}: {scenario['incorrect']} responses matched neither "
              f"generation's ground truth", file=sys.stderr)
        return 1
    if scenario["matched_gen_a"] == 0 or scenario["matched_gen_b"] == 0:
        print(f"{path}: one generation never answered "
              f"(A={scenario['matched_gen_a']}, B={scenario['matched_gen_b']}) — "
              f"the swaps did not interleave with traffic", file=sys.stderr)
        return 1
    print(f"{path}: {swaps} hot-swaps under {scenario['queries_total']} queries "
          f"at {scenario['qps']:.0f} qps — 0 dropped, 0 incorrect "
          f"(gen A {scenario['matched_gen_a']} / gen B {scenario['matched_gen_b']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
