#!/usr/bin/env python3
"""CI crash-consistency gate.

Validates the `crash_consistency` scenario out of a BENCH_perf.json
produced by `bench_summary` (schema >= 9): the ALICE-style drill must
fire a power cut at every I/O operation of the durable workflow plus
randomized fault mixes — at least 100 distinct fault points in total —
and every single one must recover to the durability invariants (zero
violations). A compaction killed mid-flight must resume from its
checkpoint bit-identically, and the unarmed fault shim must be a true
passthrough: bit-identical bytes at under the given overhead fraction
(default 5%) versus direct I/O.

Usage: check_crash.py <BENCH_perf.json> [max_shim_overhead]
"""

import json
import sys


def check(path: str, max_overhead: float) -> int:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    schema = doc.get("schema", 0)
    if schema < 9:
        print(f"{path}: schema {schema} < 9 — no crash_consistency scenario; "
              "re-run bench_summary", file=sys.stderr)
        return 1
    c = doc.get("crash_consistency")
    if not isinstance(c, dict):
        print(f"{path}: no crash_consistency scenario in summary",
              file=sys.stderr)
        return 1

    failures = []
    if c.get("io_ops", 0) < 30:
        failures.append(
            f"only {c.get('io_ops', 0)} I/O ops gated through the shim — "
            "the workflow is not exercising the durability tier"
        )
    total = c.get("total_fault_points", 0)
    if total < 100:
        failures.append(
            f"only {total} fault points fired (need >= 100 between the "
            "enumerated cuts and the randomized mixes)"
        )
    if c.get("violation_count", 0) != 0 or c.get("violations"):
        for v in (c.get("violations") or [])[:10]:
            failures.append(f"invariant violation: {v}")
        failures.append(
            f"{c.get('violation_count', 0)} crash/fault points violated "
            "the durability invariants"
        )
    if not c.get("resume_bit_identical"):
        failures.append(
            "killed checkpointed compaction did not resume bit-identically"
            + (f": {c['resume_error']}" if c.get("resume_error") else "")
        )
    if not c.get("shim_bit_identical"):
        failures.append("unarmed shim output differs from direct I/O")
    overhead = c.get("shim_overhead_frac", 1.0)
    if overhead >= max_overhead:
        failures.append(
            f"unarmed shim overhead {overhead * 100:.1f}% exceeds the "
            f"{max_overhead * 100:.0f}% passthrough budget"
        )

    for msg in failures:
        print(f"{path}: {msg}", file=sys.stderr)
    if not failures:
        print(
            f"{path}: crash drill ok — {c['io_ops']} gated I/O ops, "
            f"{c['crash_points_fired']} enumerated cuts + "
            f"{c['random_fault_attempts']} randomized attempts "
            f"({total} fault points, {c.get('vacuous_attempts', 0)} vacuous), "
            f"0 violations, {c.get('retries_absorbed', 0)} retries absorbed, "
            f"{c.get('give_ups', 0)} give-ups, resume bit-identical, "
            f"shim passthrough {overhead * 100:+.1f}%"
        )
    return 1 if failures else 0


def main() -> int:
    if len(sys.argv) not in (2, 3):
        print(f"usage: {sys.argv[0]} <BENCH_perf.json> [max_shim_overhead]",
              file=sys.stderr)
        return 2
    max_overhead = float(sys.argv[2]) if len(sys.argv) == 3 else 0.05
    return check(sys.argv[1], max_overhead)


if __name__ == "__main__":
    sys.exit(main())
