#!/usr/bin/env python3
"""CI plan-elision gate.

Reads the `plan_elision` scenario out of a BENCH_perf.json produced by
`bench_summary` and fails unless co-partitioned shuffle elision

* saved a strictly positive number of shuffle bytes,
* saved at least `min_frac` of the no-elision shuffle volume
  (default 20%, the paper-scale floor for the LSH-DDP pipeline), and
* changed no output bits (`outputs_match`).

Usage: check_elision.py <BENCH_perf.json> [min_frac]
"""

import json
import sys


def main() -> int:
    if len(sys.argv) not in (2, 3):
        print(f"usage: {sys.argv[0]} <BENCH_perf.json> [min_frac]", file=sys.stderr)
        return 2
    path = sys.argv[1]
    min_frac = float(sys.argv[2]) if len(sys.argv) == 3 else 0.20
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    scenario = doc.get("plan_elision")
    if not isinstance(scenario, dict):
        print(f"{path}: no plan_elision scenario (schema {doc.get('schema')})",
              file=sys.stderr)
        return 1
    saved = scenario["shuffle_bytes_saved"]
    frac = scenario["saved_frac"]
    if saved <= 0:
        print(f"{path}: elision saved no shuffle bytes", file=sys.stderr)
        return 1
    if frac < min_frac:
        print(f"{path}: elision saved only {frac:.1%} of shuffle volume, "
              f"need >= {min_frac:.0%}", file=sys.stderr)
        return 1
    if not scenario["outputs_match"]:
        print(f"{path}: elision changed the pipeline output bits", file=sys.stderr)
        return 1
    print(f"{path}: elision saved {saved} B ({frac:.1%} of "
          f"{scenario['shuffle_bytes_off']} B), outputs bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
