#!/usr/bin/env python3
"""CI trace smoke check.

Validates a chrome-tracing document written by `lshddp --trace`:

* the file parses as JSON with a `traceEvents` array of "X" events;
* all four LSH-DDP MapReduce job spans are present;
* the trace reaches task granularity (at least one `task` span).

Usage: check_trace.py <trace.json>
"""

import json
import sys

EXPECTED_JOBS = [
    "lsh/rho-local",
    "lsh/rho-aggregate",
    "lsh/delta-local",
    "lsh/delta-aggregate",
]


def main() -> int:
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <trace.json>", file=sys.stderr)
        return 2
    path = sys.argv[1]
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        print(f"{path}: no traceEvents", file=sys.stderr)
        return 1

    for e in events:
        for key in ("name", "cat", "ph", "ts", "dur", "pid", "tid"):
            if key not in e:
                print(f"{path}: event missing {key!r}: {e}", file=sys.stderr)
                return 1
        if e["ph"] != "X":
            print(f"{path}: non-complete event {e}", file=sys.stderr)
            return 1

    names = {(e["cat"], e["name"]) for e in events}
    missing = [j for j in EXPECTED_JOBS if ("job", j) not in names]
    if missing:
        print(f"{path}: missing job spans {missing}", file=sys.stderr)
        return 1
    tasks = sum(1 for e in events if e["cat"] == "task")
    if tasks == 0:
        print(f"{path}: no task spans — trace stops above task level", file=sys.stderr)
        return 1

    print(f"{path}: OK — {len(events)} spans, {tasks} task attempts, all 4 jobs present")
    return 0


if __name__ == "__main__":
    sys.exit(main())
