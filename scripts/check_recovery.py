#!/usr/bin/env python3
"""CI recovery gate.

Reads the `recovery_overhead` scenario out of a BENCH_perf.json produced
by `bench_summary` and fails unless

* the run under ~10% injected task crashes + stragglers produced outputs
  bit-identical to the clean run (`outputs_match`),
* the chaos actually injected something (`task_retries` > 0), and
* stage checkpointing cost at most `max_frac` over the clean run
  (default 15%).

Usage: check_recovery.py <BENCH_perf.json> [max_frac]
"""

import json
import sys


def main() -> int:
    if len(sys.argv) not in (2, 3):
        print(f"usage: {sys.argv[0]} <BENCH_perf.json> [max_frac]", file=sys.stderr)
        return 2
    path = sys.argv[1]
    max_frac = float(sys.argv[2]) if len(sys.argv) == 3 else 0.15
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    scenario = doc.get("recovery_overhead")
    if not isinstance(scenario, dict):
        print(f"{path}: no recovery_overhead scenario (schema {doc.get('schema')})",
              file=sys.stderr)
        return 1
    if not scenario["outputs_match"]:
        print(f"{path}: chaos injection changed the pipeline output bits",
              file=sys.stderr)
        return 1
    retries = scenario["task_retries"]
    if retries <= 0:
        print(f"{path}: the chaos run retried nothing — injection is broken",
              file=sys.stderr)
        return 1
    frac = scenario["checkpoint_overhead_frac"]
    if frac > max_frac:
        print(f"{path}: checkpointing cost {frac:.1%} over the clean run, "
              f"budget is {max_frac:.0%}", file=sys.stderr)
        return 1
    print(f"{path}: chaos outputs bit-identical across {retries} retries "
          f"({scenario['straggler_delay_ms']:.1f} ms straggler delay absorbed), "
          f"checkpoint overhead {frac:+.1%} (budget {max_frac:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
