#!/usr/bin/env python3
"""CI telemetry-plane gate.

Validates the `telemetry` scenario out of a BENCH_perf.json produced by
`bench_summary` (schema >= 7): under deliberate overload with an
unreachable SLO objective, the burn-rate monitor must flip the server
into degraded mode, degraded mode must shed queued work, and the p99 of
the requests actually served must stay under the protective deadline.
Heap accounting and live scraping must both have produced evidence.

Optionally also lints a saved `/metrics` scrape (second argument, a
.prom file) as Prometheus exposition text: every non-comment line must
parse as `name{labels} value`, every series must be preceded by a TYPE
for its family, and the serve-side SLO gauges must be present.

Usage: check_telemetry.py <BENCH_perf.json> [scrape.prom]
       check_telemetry.py --scrape <scrape.prom>
"""

import json
import re
import sys

METRIC_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))$"
)
LABEL = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def check_summary(path: str) -> int:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    t = doc.get("telemetry")
    if not isinstance(t, dict):
        print(f"{path}: no telemetry scenario (schema {doc.get('schema')}); "
              "re-run bench_summary", file=sys.stderr)
        return 1

    failures = []
    if not t.get("slo_degraded_triggered"):
        failures.append("burn-rate monitor never flipped slo.degraded under overload")
    if t.get("slo_shed", 0) <= 0:
        failures.append("degraded mode shed no requests (slo_shed == 0)")
    if t.get("served", 0) <= 0:
        failures.append("no requests were served during the drill")
    p99, deadline = t.get("served_p99_ms", -1.0), t.get("deadline_ms", 0.0)
    if not (0 <= p99 <= deadline):
        failures.append(
            f"served p99 {p99:.2f} ms breached the {deadline:.0f} ms deadline "
            "the SLO feedback is supposed to protect"
        )
    scrapes, ok = t.get("scrapes", 0), t.get("scrapes_ok", 0)
    if scrapes <= 0 or ok != scrapes:
        failures.append(f"live scraping failed: {ok}/{scrapes} well-formed responses")
    if t.get("batch_peak_bytes", 0) <= 0:
        failures.append("no per-batch heap peak recorded (mem.batch_peak_bytes == 0)")
    if t.get("peak_resident_bytes", 0) <= 0:
        failures.append("allocator accounting recorded no process heap peak")

    for msg in failures:
        print(f"{path}: {msg}", file=sys.stderr)
    if not failures:
        print(
            f"{path}: telemetry drill ok — degraded=true, slo_shed={t['slo_shed']}, "
            f"served={t['served']} at p99 {p99:.2f} ms (deadline {deadline:.0f} ms), "
            f"{ok}/{scrapes} scrapes, batch peak {t['batch_peak_bytes']} B"
        )
    return 1 if failures else 0


def check_scrape(path: str) -> int:
    with open(path, encoding="utf-8") as f:
        text = f.read()
    typed, seen = {}, []
    errors = []
    for i, line in enumerate(text.splitlines(), 1):
        if not line or line.startswith("# HELP"):
            continue
        if line.startswith("# TYPE"):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                errors.append(f"line {i}: malformed TYPE: {line!r}")
            else:
                typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            errors.append(f"line {i}: unknown comment form: {line!r}")
            continue
        m = METRIC_LINE.match(line)
        if not m:
            errors.append(f"line {i}: unparseable sample: {line!r}")
            continue
        name = m.group("name")
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and family not in typed:
            errors.append(f"line {i}: sample {name} has no preceding # TYPE")
        if m.group("labels"):
            body = m.group("labels")[1:-1]
            for pair in filter(None, body.split(",")):
                if not LABEL.match(pair):
                    errors.append(f"line {i}: bad label pair {pair!r}")
        seen.append(name)

    for want in ("serve_slo_degraded", "serve_slo_fast_burn_milli"):
        if want not in seen:
            errors.append(f"missing expected SLO series {want}")

    for msg in errors[:20]:
        print(f"{path}: {msg}", file=sys.stderr)
    if not errors:
        print(f"{path}: scrape ok — {len(seen)} samples, "
              f"{len(typed)} typed families, SLO gauges present")
    return 1 if errors else 0


def main() -> int:
    if len(sys.argv) == 3 and sys.argv[1] == "--scrape":
        return check_scrape(sys.argv[2])
    if len(sys.argv) not in (2, 3):
        print(
            f"usage: {sys.argv[0]} <BENCH_perf.json> [scrape.prom]\n"
            f"       {sys.argv[0]} --scrape <scrape.prom>",
            file=sys.stderr,
        )
        return 2
    rc = check_summary(sys.argv[1])
    if len(sys.argv) == 3:
        rc |= check_scrape(sys.argv[2])
    return rc


if __name__ == "__main__":
    sys.exit(main())
