#!/usr/bin/env python3
"""CI tracing/telemetry overhead gate.

Reads the `tracing_overhead` scenario out of a BENCH_perf.json produced
by `bench_summary` and fails if enabling instrumentation cost more than
the budget:

  * capture on (span recording + executor chunk observer) vs off —
    default budget 5%;
  * full telemetry plane (capture + heap accounting + a live `/metrics`
    scraper) vs off — default budget 12%, looser because the scraper
    deliberately contends with the workload;
  * `outputs_match` must be true: telemetry-on results are bit-identical
    to telemetry-off and every scrape returned well-formed text.

The on-runs upper-bound the cost of the disabled instrumentation, so
this also gates the everything-off overhead.

Usage: check_overhead.py <BENCH_perf.json> [max_frac] [max_telemetry_frac]
"""

import json
import sys


def main() -> int:
    if len(sys.argv) not in (2, 3, 4):
        print(
            f"usage: {sys.argv[0]} <BENCH_perf.json> [max_frac] [max_telemetry_frac]",
            file=sys.stderr,
        )
        return 2
    path = sys.argv[1]
    budget = float(sys.argv[2]) if len(sys.argv) >= 3 else 0.05
    tel_budget = float(sys.argv[3]) if len(sys.argv) == 4 else 0.12
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    scenario = doc.get("tracing_overhead")
    if not isinstance(scenario, dict):
        print(f"{path}: no tracing_overhead scenario (schema {doc.get('schema')})",
              file=sys.stderr)
        return 1
    frac = scenario["overhead_frac"]
    off, on = scenario["tracing_off_s"], scenario["tracing_on_s"]
    failed = False
    if frac > budget:
        print(f"{path}: tracing overhead {frac:+.1%} exceeds {budget:.0%} "
              f"(off {off:.3f}s, on {on:.3f}s)", file=sys.stderr)
        failed = True
    else:
        print(f"{path}: tracing overhead {frac:+.1%} within {budget:.0%} budget "
              f"(off {off:.3f}s, on {on:.3f}s)")

    tel_frac = scenario.get("telemetry_overhead_frac")
    if tel_frac is None:
        print(f"{path}: no telemetry fields (schema {doc.get('schema')}); "
              "re-run bench_summary", file=sys.stderr)
        return 1
    tel_on = scenario["telemetry_on_s"]
    scrapes = scenario.get("scrapes", 0)
    if tel_frac > tel_budget:
        print(f"{path}: full-telemetry overhead {tel_frac:+.1%} exceeds "
              f"{tel_budget:.0%} (off {off:.3f}s, on {tel_on:.3f}s, "
              f"{scrapes} scrapes)", file=sys.stderr)
        failed = True
    else:
        print(f"{path}: full-telemetry overhead {tel_frac:+.1%} within "
              f"{tel_budget:.0%} budget (off {off:.3f}s, on {tel_on:.3f}s, "
              f"{scrapes} scrapes)")
    if not scenario.get("outputs_match", False):
        print(f"{path}: outputs_match=false — telemetry changed pipeline "
              "results or a scrape was malformed", file=sys.stderr)
        failed = True
    else:
        print(f"{path}: telemetry-on outputs bit-identical, all scrapes well-formed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
