#!/usr/bin/env python3
"""CI tracing-overhead gate.

Reads the `tracing_overhead` scenario out of a BENCH_perf.json produced
by `bench_summary` and fails if enabling capture cost more than the
budget (default 5%). The capture-on run upper-bounds the cost of the
disabled instrumentation, so this also gates the tracing-off overhead.

Usage: check_overhead.py <BENCH_perf.json> [max_frac]
"""

import json
import sys


def main() -> int:
    if len(sys.argv) not in (2, 3):
        print(f"usage: {sys.argv[0]} <BENCH_perf.json> [max_frac]", file=sys.stderr)
        return 2
    path = sys.argv[1]
    budget = float(sys.argv[2]) if len(sys.argv) == 3 else 0.05
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    scenario = doc.get("tracing_overhead")
    if not isinstance(scenario, dict):
        print(f"{path}: no tracing_overhead scenario (schema {doc.get('schema')})",
              file=sys.stderr)
        return 1
    frac = scenario["overhead_frac"]
    off, on = scenario["tracing_off_s"], scenario["tracing_on_s"]
    if frac > budget:
        print(f"{path}: tracing overhead {frac:+.1%} exceeds {budget:.0%} "
              f"(off {off:.3f}s, on {on:.3f}s)", file=sys.stderr)
        return 1
    print(f"{path}: tracing overhead {frac:+.1%} within {budget:.0%} budget "
          f"(off {off:.3f}s, on {on:.3f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
