//! Hot-swap-under-sustained-traffic scenario, shared by `serve_loadgen`
//! (human-readable report) and `bench_summary` (the `hot_swap` section of
//! `BENCH_perf.json`, gated in CI by `scripts/check_swap.py`).
//!
//! The scenario exercises the whole model lifecycle at load: fit a base
//! model, derive a successor generation through an [`ingest::IngestSession`]
//! delta batch, then hammer a [`serve::Server`] with closed-loop clients
//! while a publisher thread hot-swaps between the two generations mid-run.
//! Every query's answer is checked against ground truth precomputed under
//! *both* generations offline — a response is correct iff it is exactly
//! the generation-A answer or the generation-B answer (epoch semantics: a
//! micro-batch that resolved its engine just before a swap may still
//! answer on the old generation; anything else is a torn read).
//!
//! The gate: at least `swaps` publications land while traffic is in
//! flight, zero requests are dropped, and zero responses are incorrect.

use ddp::prelude::*;
use ingest::{DeltaOp, IngestConfig, IngestSession};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;
use serve::{Assignment, ClusterModel, QueryEngine, ServeError, Server, ServerConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Measured outcome of one swap-under-load run.
#[derive(Serialize)]
pub struct SwapBench {
    pub description: &'static str,
    /// Worker threads in the server pool.
    pub threads: usize,
    /// Closed-loop client threads offering load.
    pub clients: usize,
    /// Hot-swaps published while clients were mid-run.
    pub swaps: u64,
    /// Total queries issued across all clients.
    pub queries_total: u64,
    /// Requests that never got an answer (timeout / server death).
    pub dropped: u64,
    /// Responses matching neither generation's precomputed answer.
    pub incorrect: u64,
    /// Responses bit-equal to the base generation's answer.
    pub matched_gen_a: u64,
    /// Responses bit-equal to the ingested generation's answer.
    pub matched_gen_b: u64,
    /// Submits refused with `Busy` and retried (sustained-load evidence).
    pub shed_retries: u64,
    /// Sustained throughput over the whole run.
    pub qps: f64,
}

/// Builds the two model generations: a fresh LSH-DDP fit (gen A) and the
/// same model pushed through an ingest batch — a handful of inserts near
/// an existing peak plus one delete — published as gen B. Gen B differs
/// from gen A in point count, densities, and lineage version, which is
/// exactly what a compaction-then-publish cycle swaps into the server.
fn two_generations(seed: u64, n_per: usize) -> (ClusterModel, ClusterModel) {
    let ld = datasets::gaussian_mixture(3, 3, n_per, 60.0, 1.2, seed);
    let ds = &ld.data;
    let dc = dp_core::cutoff::estimate_dc_sampled(ds, 0.02, 100_000, seed);
    let ddp = LshDdp::with_accuracy(0.99, 8, 3, dc, seed).expect("valid params");
    let params = ddp.config().params;
    let report = ddp.run(ds, dc);
    let outcome = CentralizedStep::new(PeakSelection::TopK(3)).run(&report.result);
    let gen_a = ClusterModel::from_run(ds, &report, &outcome, &params, seed);

    let mut session = IngestSession::new(
        &gen_a,
        IngestConfig {
            selection: PeakSelection::TopK(3),
            ..IngestConfig::default()
        },
    );
    let mut ops: Vec<DeltaOp> = (0..4)
        .map(|i| {
            let anchor = gen_a.point((i * 7) % gen_a.len() as u32);
            DeltaOp::Insert(anchor.iter().map(|&x| x + 0.01 * (i + 1) as f64).collect())
        })
        .collect();
    ops.push(DeltaOp::Delete(1));
    session.apply(ops).expect("ingest batch applies");
    (gen_a, session.publish())
}

/// Runs the scenario: `clients` closed-loop threads issue
/// `queries_per_client` skewed queries each against a `threads`-worker
/// server while a publisher thread lands `swaps` hot-swaps spaced evenly
/// through the traffic (each waits for the next slice of completed
/// queries, so every swap is guaranteed to happen *under* load).
pub fn swap_under_load(
    seed: u64,
    n_per: usize,
    threads: usize,
    swaps: u64,
    queries_per_client: usize,
) -> SwapBench {
    let (gen_a, gen_b) = two_generations(seed, n_per);
    let clients = threads * 4;
    let pool_n = 1024usize;

    // Fixed query pool: jittered training points, hot-skewed picks.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let pool: Vec<Vec<f64>> = (0..pool_n)
        .map(|_| {
            let id = rng.random_range(0..gen_a.len()) as u32;
            gen_a
                .point(id)
                .iter()
                .map(|&x| x + rng.random_range(-0.05..0.05) * gen_a.dc())
                .collect()
        })
        .collect();

    // Ground truth under each generation, computed offline. Correctness
    // under swap is "the answer some generation would give", nothing
    // weaker: torn or cross-version cache reads cannot pass this.
    let engine_a = QueryEngine::new(gen_a.clone());
    let engine_b = QueryEngine::new(gen_b.clone());
    let truth_a: Vec<Assignment> = pool.iter().map(|q| engine_a.assign(q)).collect();
    let truth_b: Vec<Assignment> = pool.iter().map(|q| engine_b.assign(q)).collect();

    let server = Server::start(
        QueryEngine::new(gen_a.clone()),
        ServerConfig {
            threads,
            queue_depth: clients,
            max_batch: 32,
            cache_capacity: 4_096,
            // No deadline: a dropped response must mean a real failure,
            // not an aggressive timeout.
            deadline: None,
            ..ServerConfig::default()
        },
    );

    let done = AtomicU64::new(0);
    let dropped = AtomicU64::new(0);
    let incorrect = AtomicU64::new(0);
    let matched_a = AtomicU64::new(0);
    let matched_b = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let swapped = AtomicU64::new(0);
    let total = (clients * queries_per_client) as u64;

    let start = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let client = server.client();
            let (pool, truth_a, truth_b) = (&pool, &truth_a, &truth_b);
            let (done, dropped, incorrect) = (&done, &dropped, &incorrect);
            let (matched_a, matched_b, shed) = (&matched_a, &matched_b, &shed);
            let mut rng = StdRng::seed_from_u64(seed + c as u64);
            s.spawn(move || {
                for _ in 0..queries_per_client {
                    let i = if rng.random_bool(0.8) {
                        rng.random_range(0..pool.len() / 10)
                    } else {
                        rng.random_range(0..pool.len())
                    };
                    loop {
                        match client.try_assign(&pool[i]) {
                            Ok(ans) => {
                                if ans == truth_a[i] {
                                    matched_a.fetch_add(1, Ordering::Relaxed);
                                } else if ans == truth_b[i] {
                                    matched_b.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    incorrect.fetch_add(1, Ordering::Relaxed);
                                }
                                break;
                            }
                            Err(ServeError::Busy) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                                std::thread::yield_now();
                            }
                            Err(_) => {
                                dropped.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // The publisher: each swap waits for the next slice of completed
        // queries, so all of them land strictly inside the traffic window.
        // Generations alternate B, A, B, ... each republication under a
        // fresh lineage version (the version-keyed response cache must
        // never serve generation A's answer labeled as B's).
        let server_ref = &server;
        let (done, swapped) = (&done, &swapped);
        s.spawn(move || {
            for k in 0..swaps {
                let gate = (k + 1) * total / (swaps + 1);
                while done.load(Ordering::Relaxed) < gate {
                    std::thread::yield_now();
                }
                let next = if k % 2 == 0 { &gen_b } else { &gen_a };
                let version = gen_b.version() + k + 1;
                server_ref.swap(QueryEngine::new(next.clone().with_version(version)));
                swapped.fetch_add(1, Ordering::Relaxed);
            }
        });
    });
    let elapsed = start.elapsed().as_secs_f64();
    let stats = server.stats();
    assert_eq!(stats.counters["model_swaps"], swaps);
    server.shutdown();

    SwapBench {
        description: "hot-swap between two model generations under closed-loop load",
        threads,
        clients,
        swaps: swapped.load(Ordering::Relaxed),
        queries_total: total,
        dropped: dropped.load(Ordering::Relaxed),
        incorrect: incorrect.load(Ordering::Relaxed),
        matched_gen_a: matched_a.load(Ordering::Relaxed),
        matched_gen_b: matched_b.load(Ordering::Relaxed),
        shed_retries: shed.load(Ordering::Relaxed),
        qps: total as f64 / elapsed,
    }
}
