//! # lshddp-bench — the experiment harness
//!
//! One runnable binary per table/figure of the paper's evaluation
//! (`cargo run -p lshddp-bench --release --bin <target>`):
//!
//! | target | reproduces |
//! |--------|------------|
//! | `table2_datasets`     | Table II — data set inventory |
//! | `table3_features`     | Table III — algorithm feature matrix |
//! | `fig7_decision_graph` | Figure 7 — Basic-DDP vs LSH-DDP decision graphs on S2 |
//! | `fig8_quality`        | Figure 8 — DP vs hierarchical/K-means/EM/DBSCAN on Aggregation, and Basic-DDP vs LSH-DDP agreement |
//! | `fig9_accuracy`       | Figure 9 — tau1/tau2 vs expected accuracy A |
//! | `fig10_performance`   | Figure 10 — runtime / shuffle / #dist, Basic vs LSH on four data sets |
//! | `table4_eddpc`        | Table IV — LSH-DDP vs EDDPC on BigCross500K |
//! | `fig11_kmeans`        | Figure 11 — K-means per-iteration runtime vs LSH-DDP |
//! | `fig12_parameters`    | Figure 12 — effect of M and pi on runtime and tau2 |
//! | `ec2_scale`           | §VI-D — the 70× Basic-vs-LSH gap on 64 simulated workers |
//!
//! Binaries accept `--scale <f>` (fraction of the paper's instance count;
//! Basic-DDP is O(N²), so default scales keep the exact baseline within
//! minutes), `--seed <u64>`, and `--json <path>` to also write
//! machine-readable rows.

use serde::Serialize;
use std::path::PathBuf;

pub mod swap;

/// Common experiment CLI arguments.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Fraction of the paper's instance counts to generate.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// When set, experiments append JSON rows here.
    pub json: Option<PathBuf>,
}

impl ExpArgs {
    /// Parses `--scale`, `--seed`, `--json` from `std::env::args`,
    /// with the given default scale.
    pub fn parse(default_scale: f64) -> ExpArgs {
        let mut args = ExpArgs {
            scale: default_scale,
            seed: 42,
            json: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => {
                    let v = it.next().expect("--scale needs a value");
                    args.scale = v.parse().expect("--scale must be a float");
                    assert!(
                        args.scale > 0.0 && args.scale <= 1.0,
                        "--scale must be in (0, 1]"
                    );
                }
                "--seed" => {
                    let v = it.next().expect("--seed needs a value");
                    args.seed = v.parse().expect("--seed must be an integer");
                }
                "--json" => {
                    args.json = Some(PathBuf::from(it.next().expect("--json needs a path")));
                }
                other => panic!("unknown flag {other}; supported: --scale --seed --json"),
            }
        }
        args
    }

    /// Appends one JSON line to the `--json` file, if configured.
    pub fn emit_json<T: Serialize>(&self, row: &T) {
        if let Some(path) = &self.json {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .expect("open json output");
            writeln!(
                f,
                "{}",
                serde_json::to_string(row).expect("serializable row")
            )
            .expect("write json row");
        }
    }
}

/// Basic-DDP block size scaled to preserve the paper's blocks-per-dataset
/// ratio: the paper runs block = 500 at full N, so a `scale`-sized analog
/// uses `max(10, 500 * scale)` — keeping copies-per-point (`⌈(n+1)/2⌉`,
/// §III-B) at full-scale values instead of collapsing to one block.
pub fn scaled_block(scale: f64) -> usize {
    ((500.0 * scale).round() as usize).max(10)
}

/// Prints a fixed-width table: header row, separator, then rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (w, c) in widths.iter().zip(cells) {
            out.push_str(&format!("{c:>w$}  ", w = w));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w + 2))
            .collect::<String>()
    );
    for row in rows {
        line(row.clone());
    }
}

/// Human-readable byte count.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1_000_000_000 {
        format!("{:.2} GB", b as f64 / 1e9)
    } else if b >= 1_000_000 {
        format!("{:.2} MB", b as f64 / 1e6)
    } else if b >= 1_000 {
        format!("{:.2} KB", b as f64 / 1e3)
    } else {
        format!("{b} B")
    }
}

/// Human-readable count (millions/billions).
pub fn fmt_count(c: u64) -> String {
    if c >= 1_000_000_000 {
        format!("{:.2} G", c as f64 / 1e9)
    } else if c >= 1_000_000 {
        format!("{:.2} M", c as f64 / 1e6)
    } else if c >= 1_000 {
        format!("{:.1} K", c as f64 / 1e3)
    } else {
        format!("{c}")
    }
}

/// Human-readable seconds (s / min / h).
pub fn fmt_secs(s: f64) -> String {
    if s >= 3600.0 {
        format!("{:.2} h", s / 3600.0)
    } else if s >= 60.0 {
        format!("{:.1} min", s / 60.0)
    } else {
        format!("{s:.2} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatters() {
        assert_eq!(fmt_bytes(10), "10 B");
        assert_eq!(fmt_bytes(2_500), "2.50 KB");
        assert_eq!(fmt_bytes(3_000_000), "3.00 MB");
        assert_eq!(fmt_bytes(4_200_000_000), "4.20 GB");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(12_000), "12.0 K");
        assert_eq!(fmt_count(3_400_000), "3.40 M");
        assert_eq!(fmt_secs(5.0), "5.00 s");
        assert_eq!(fmt_secs(90.0), "1.5 min");
        assert_eq!(fmt_secs(7200.0), "2.00 h");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
