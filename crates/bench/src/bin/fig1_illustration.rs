//! Figure 1 — the illustration of how DP works: point distribution,
//! density landscape, decision graph, and assignment chains.
//!
//! The paper's Figure 1 is a didactic four-panel figure; this binary
//! regenerates its data on a three-hill 2-D example and emits four CSV
//! sections on stdout (redirect and split to plot):
//!
//! * `points` — `id,x,y` (Fig. 1a, the distribution);
//! * `density` — `id,rho` (Fig. 1b, the contour heights);
//! * `decision` — `id,rho,delta,is_peak` (Fig. 1c);
//! * `chains` — `id,upslope,cluster` (Fig. 1d, the assignment chains).

use datasets::generators::gaussian_mixture;
use ddp::prelude::*;
use lshddp_bench::ExpArgs;

fn main() {
    let args = ExpArgs::parse(1.0);
    // Three density hills of different heights (sizes), like Fig. 1's
    // mountains.
    let ld = gaussian_mixture(2, 3, 160, 40.0, 2.0, args.seed);
    let ds = ld.data;
    let dc = dp_core::cutoff::estimate_dc_exact(&ds, 0.02);
    let r = dp_core::compute_exact(&ds, dc);
    let out = CentralizedStep::new(PeakSelection::TopK(3)).run(&r);
    let peak_set: std::collections::HashSet<u32> = out.peaks.iter().copied().collect();

    println!("# Figure 1 data — d_c = {dc:.4}, peaks = {:?}", out.peaks);
    println!("[points]");
    println!("id,x,y");
    for (id, p) in ds.iter() {
        println!("{id},{},{}", p[0], p[1]);
    }
    println!("[density]");
    println!("id,rho");
    for (i, rho) in r.rho.iter().enumerate() {
        println!("{i},{rho}");
    }
    println!("[decision]");
    println!("id,rho,delta,is_peak");
    for i in 0..r.len() {
        println!(
            "{i},{},{},{}",
            r.rho[i],
            r.delta[i],
            u8::from(peak_set.contains(&(i as u32)))
        );
    }
    println!("[chains]");
    println!("id,upslope,cluster");
    for i in 0..r.len() as u32 {
        let u = r.upslope[i as usize];
        let u_str = if u == dp_core::NO_UPSLOPE {
            "-".to_string()
        } else {
            u.to_string()
        };
        println!("{i},{u_str},{}", out.clustering.label(i));
    }
    eprintln!(
        "three hills -> three peaks ({:?}); every chain climbs its own hill",
        out.peaks
    );
}
