//! Figure 11 — MapReduce K-means per-iteration runtime vs LSH-DDP.
//!
//! On the BigCross analog with the 64-worker EC2 cost model, run K-means
//! for 100 Lloyd iterations and LSH-DDP once; plot K-means' cumulative
//! simulated runtime per iteration and find the iteration whose cumulative
//! time matches LSH-DDP's total. The paper reports LSH-DDP ≈ the 24th
//! K-means iteration.

use baselines::MapReduceKMeans;
use datasets::PaperDataset;
use ddp::prelude::*;
use lshddp_bench::{fmt_secs, print_table, ExpArgs};
use mapreduce::ClusterSpec;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    iteration: usize,
    cumulative_sim_s: f64,
}

fn main() {
    // BigCross is 11.6M points; the default 0.2% scale gives ~23K points,
    // enough for the cost model to dominate constants.
    let args = ExpArgs::parse(0.002);
    let ld = PaperDataset::BigCross.generate(args.scale, args.seed);
    let mut ds = ld.data;
    ds.normalize_min_max();
    // Same d_c policy as ec2_scale: 0.2% quantile (see EXPERIMENTS.md on
    // why the 2% rule of thumb is infeasible at BigCross scale).
    let dc = dp_core::cutoff::estimate_dc_sampled(&ds, 0.002, 400_000, args.seed);
    let spec = ClusterSpec::ec2_m1_medium(64);
    let dims_factor = ds.dim() as f64 / 4.0;
    let iterations = 100;
    let k = 64;
    println!(
        "Figure 11 — K-means (k = {k}, {iterations} iterations) vs LSH-DDP on BigCross \
         analog (N = {}), 64 simulated m1.medium workers\n",
        ds.len()
    );

    let lsh = LshDdp::with_accuracy(0.99, 10, 3, dc, args.seed)
        .expect("valid accuracy")
        .run(&ds, dc);
    let lsh_sim = lsh.simulate(&spec, dims_factor);

    let km = MapReduceKMeans::new(k, args.seed).run(&ds, iterations);

    // Cumulative simulated runtime after each iteration; distance counts
    // per iteration come from differencing the cumulative snapshots.
    let mut rows = Vec::new();
    let mut cumulative = 0.0;
    let mut prev_dist = 0u64;
    let mut crossover = None;
    for (i, m) in km.iteration_metrics.iter().enumerate() {
        let snap = m.user.get("distances").copied().unwrap_or(prev_dist);
        let delta = snap.saturating_sub(prev_dist);
        prev_dist = snap;
        cumulative += spec.simulate_job(m, delta, dims_factor);
        args.emit_json(&Point {
            iteration: i + 1,
            cumulative_sim_s: cumulative,
        });
        if crossover.is_none() && cumulative >= lsh_sim {
            crossover = Some(i + 1);
        }
        if (i + 1) % 10 == 0 || i == 0 {
            rows.push(vec![(i + 1).to_string(), fmt_secs(cumulative)]);
        }
    }
    print_table(
        &["k-means iteration", "cumulative simulated runtime"],
        &rows,
    );
    println!("\nLSH-DDP total simulated runtime: {}", fmt_secs(lsh_sim));
    match crossover {
        Some(it) => println!(
            "LSH-DDP's runtime corresponds to K-means iteration {it} \
             (the paper reports ~24 at full scale)."
        ),
        None => println!(
            "K-means' {iterations} iterations stayed below LSH-DDP's runtime at this scale."
        ),
    }
}
