//! Figure 8 — clustering quality on Aggregation.
//!
//! Two halves, matching §VI-B and §VI-C:
//!
//! 1. DP vs hierarchical / K-means / EM / DBSCAN against the 7-cluster
//!    ground truth (the paper reports DP alone recovering all seven);
//! 2. Basic-DDP vs LSH-DDP agreement ("almost the same", differences only
//!    at boundary points).

use baselines::{Dbscan, EmGmm, Hierarchical, KMeans, Linkage};
use datasets::shapes::aggregation_like;
use ddp::prelude::*;
use dp_core::quality::{adjusted_rand_index, normalized_mutual_information, purity};
use lshddp_bench::{print_table, ExpArgs};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    algorithm: String,
    ari: f64,
    nmi: f64,
    purity: f64,
}

fn quality(name: &str, labels: &[u32], truth: &[u32], args: &ExpArgs) -> Vec<String> {
    let row = Row {
        algorithm: name.to_string(),
        ari: adjusted_rand_index(labels, truth),
        nmi: normalized_mutual_information(labels, truth),
        purity: purity(labels, truth),
    };
    args.emit_json(&row);
    vec![
        row.algorithm,
        format!("{:.3}", row.ari),
        format!("{:.3}", row.nmi),
        format!("{:.3}", row.purity),
    ]
}

fn main() {
    let args = ExpArgs::parse(1.0);
    let ld = aggregation_like(args.seed);
    let ds = &ld.data;
    let truth = &ld.labels;
    let k = 7;
    let dc = dp_core::cutoff::estimate_dc_exact(ds, 0.02);
    println!("Figure 8 — clustering quality on Aggregation analog (d_c = {dc:.3})\n");

    let mut rows = Vec::new();

    // Previous algorithms, configured as in §VI-B: k = ground-truth
    // clusters; DBSCAN eps = d_c, min cluster size 1.
    let hier = Hierarchical::new(k, Linkage::Single).fit(ds);
    rows.push(quality("hierarchical", hier.labels(), truth, &args));
    let km = KMeans::new(k, args.seed).fit(ds);
    rows.push(quality("k-means", km.clustering.labels(), truth, &args));
    let em = EmGmm::new(k, args.seed).fit(ds);
    rows.push(quality("EM", em.clustering.labels(), truth, &args));
    let db = Dbscan::new(dc, 1).fit(ds).to_clustering();
    rows.push(quality("DBSCAN", db.labels(), truth, &args));

    // DP itself (sequential = Basic-DDP's result).
    let exact = dp_core::compute_exact(ds, dc);
    let dp_out = CentralizedStep::new(PeakSelection::TopK(k)).run(&exact);
    rows.push(quality(
        "DP (sequential)",
        dp_out.clustering.labels(),
        truth,
        &args,
    ));

    // Distributed: Basic-DDP and LSH-DDP.
    let basic = BasicDdp::new(BasicConfig {
        block_size: 200,
        ..Default::default()
    })
    .run(ds, dc);
    let basic_out = CentralizedStep::new(PeakSelection::TopK(k)).run(&basic.result);
    rows.push(quality(
        "Basic-DDP",
        basic_out.clustering.labels(),
        truth,
        &args,
    ));

    let lsh = LshDdp::with_accuracy(0.99, 10, 3, dc, args.seed)
        .expect("valid accuracy")
        .run(ds, dc);
    let lsh_out = CentralizedStep::new(PeakSelection::TopK(k)).run(&lsh.result);
    rows.push(quality(
        "LSH-DDP",
        lsh_out.clustering.labels(),
        truth,
        &args,
    ));

    print_table(&["algorithm", "ARI", "NMI", "purity"], &rows);

    let agreement = adjusted_rand_index(basic_out.clustering.labels(), lsh_out.clustering.labels());
    let differing = basic_out
        .clustering
        .labels()
        .iter()
        .zip(lsh_out.clustering.labels())
        .filter(|(a, b)| a != b)
        .count();
    println!(
        "\nBasic-DDP vs LSH-DDP agreement: ARI = {agreement:.4} \
         (differences at {differing}/{} points — boundary effects only)",
        ds.len()
    );
}
