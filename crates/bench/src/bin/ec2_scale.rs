//! §VI-D "Clustering Large Data Set on EC2" — the 70× headline.
//!
//! The paper runs BigCross (11.6M × 57) on 64 m1.medium instances:
//! Basic-DDP takes 91.2 hours, LSH-DDP 1.3 hours (70×). Reproducing that
//! on one machine requires extrapolation, done honestly in three steps:
//!
//! 1. run both pipelines at two measured sizes (`--scale` and half of it);
//! 2. fit a power law `counter ∝ N^e` per (algorithm × counter) from the
//!    two measurements — Basic-DDP's distance/shuffle exponents come out
//!    ≈ 2, LSH-DDP's shuffle ≈ 1 and distances between 1 and 2 (partition
//!    populations grow with N at fixed slot width);
//! 3. extrapolate each counter to the full 11.6M points and price the
//!    result with the 64-worker m1.medium cost model. Basic-DDP's
//!    measured block size (10) is rescaled to the paper's 500 (copies per
//!    point scale as `1/block`).

use datasets::PaperDataset;
use ddp::prelude::*;
use lshddp_bench::{fmt_secs, print_table, ExpArgs};
use mapreduce::ClusterSpec;
use serde::Serialize;

/// Aggregate counters of one pipeline run.
struct Measured {
    n: f64,
    dist: f64,
    shuffle: f64,
    records: f64,
    jobs: usize,
}

fn measure(report: &RunReport, n: usize) -> Measured {
    Measured {
        n: n as f64,
        dist: report.distances as f64,
        shuffle: report.shuffle_bytes() as f64,
        records: report
            .jobs
            .iter()
            .map(|j| (j.map_input_records + j.shuffle_records + j.reduce_output_records) as f64)
            .sum(),
        jobs: report.jobs.len(),
    }
}

/// Fits `c = a * N^e` through two measurements and evaluates at `n_full`.
fn extrapolate(big: f64, small: f64, n_big: f64, n_small: f64, n_full: f64) -> (f64, f64) {
    let e = (big / small).ln() / (n_big / n_small).ln();
    (big * (n_full / n_big).powf(e), e)
}

#[derive(Serialize)]
struct Row {
    algorithm: &'static str,
    dist_exponent: f64,
    shuffle_exponent: f64,
    extrapolated_hours: f64,
}

fn main() {
    let args = ExpArgs::parse(0.002);
    let spec = ClusterSpec::ec2_m1_medium(64);
    let n_full = PaperDataset::BigCross.full_size() as f64;
    let measured_block = 10usize;

    let run_at = |scale: f64| -> (Measured, Measured) {
        let ld = PaperDataset::BigCross.generate(scale, args.seed);
        let mut ds = ld.data;
        ds.normalize_min_max();
        // d_c at the 0.2% distance quantile. The 1–2% rule of thumb is
        // stated for small data sets; at 11.6M points a 2% neighborhood
        // is 232K points and a single local all-pairs partition would be
        // infeasible — the paper's own EC2 runtimes imply a much smaller
        // effective d_c (see EXPERIMENTS.md).
        let dc = dp_core::cutoff::estimate_dc_sampled(&ds, 0.002, 400_000, args.seed);
        let basic = BasicDdp::new(BasicConfig {
            block_size: measured_block,
            ..Default::default()
        })
        .run(&ds, dc);
        let lsh = LshDdp::with_accuracy(0.99, 10, 3, dc, args.seed)
            .expect("valid accuracy")
            .run(&ds, dc);
        (measure(&basic, ds.len()), measure(&lsh, ds.len()))
    };

    println!(
        "EC2 extrapolation — BigCross ({} points, 57 dims) on 64 simulated m1.medium \
         workers;\nmeasured at scales {} and {} with power-law fits per counter\n",
        n_full as usize,
        args.scale,
        args.scale / 2.0
    );
    let (basic_big, lsh_big) = run_at(args.scale);
    let (basic_small, lsh_small) = run_at(args.scale / 2.0);

    let dims_factor = 57.0 / 4.0;
    let price = |m_big: &Measured, m_small: &Measured, shuffle_const: f64| -> (f64, f64, f64) {
        let (dist_full, e_dist) = extrapolate(m_big.dist, m_small.dist, m_big.n, m_small.n, n_full);
        let (shuffle_full, e_shuffle) =
            extrapolate(m_big.shuffle, m_small.shuffle, m_big.n, m_small.n, n_full);
        let (records_full, _) =
            extrapolate(m_big.records, m_small.records, m_big.n, m_small.n, n_full);
        let w = spec.workers as f64;
        let secs = dist_full * dims_factor / (spec.distances_per_sec * w)
            + shuffle_full * shuffle_const / (spec.shuffle_bytes_per_sec * w)
            + records_full * shuffle_const * spec.per_record_secs / w
            + m_big.jobs as f64 * spec.job_startup_secs;
        (secs / 3600.0, e_dist, e_shuffle)
    };

    // Basic-DDP was measured with block = 10 but the paper runs block =
    // 500; shuffle copies per point scale as 1/block.
    let basic_shuffle_const = measured_block as f64 / 500.0;
    let (basic_h, basic_ed, basic_es) = price(&basic_big, &basic_small, basic_shuffle_const);
    let (lsh_h, lsh_ed, lsh_es) = price(&lsh_big, &lsh_small, 1.0);

    let mut rows = Vec::new();
    for (alg, h, ed, es) in [
        ("Basic-DDP", basic_h, basic_ed, basic_es),
        ("LSH-DDP", lsh_h, lsh_ed, lsh_es),
    ] {
        args.emit_json(&Row {
            algorithm: alg,
            dist_exponent: ed,
            shuffle_exponent: es,
            extrapolated_hours: h,
        });
        rows.push(vec![
            alg.to_string(),
            format!("{ed:.2}"),
            format!("{es:.2}"),
            fmt_secs(h * 3600.0),
        ]);
    }
    print_table(
        &[
            "algorithm",
            "dist exponent",
            "shuffle exponent",
            "extrapolated runtime",
        ],
        &rows,
    );
    println!(
        "\nSpeedup at full BigCross scale: {:.0}x (paper: 91.2 h vs 1.3 h = 70x).",
        basic_h / lsh_h
    );
    println!(
        "Expected exponents: Basic ~2.0/2.0 (all-pairs work, copies grow with the \
         block count); LSH shuffle ~1.0 (M copies per point, independent of N)."
    );
}
