//! Perf-trajectory summary: times the engine, kernel, and pipeline hot
//! paths at fixed sizes and writes `BENCH_perf.json` at the repo root.
//!
//! Unlike the criterion benches (dev-dependencies, `cargo bench`), this
//! is a plain binary with hand-rolled `Instant` timing so CI can smoke it
//! and the committed JSON gives future sessions a baseline to compare
//! against.
//!
//! The executor comparison pits the persistent work-stealing pool
//! (`vendor/rayon`) against a faithful **spawn-per-call** baseline — the
//! pre-rewrite executor's strategy: fresh OS threads per parallel call,
//! one contiguous slab each, no stealing. Both run the same item-level
//! work at the same granularity, so the ratio isolates scheduler
//! overhead, which is exactly what dominates small-granularity stages
//! (per-task map invocations, per-bucket reducers).
//!
//! Usage: `bench_summary [--smoke] [--out <path>]`.

use ddp::{BasicConfig, BasicDdp, LshDdp, PipelineConfig};
use dp_core::{for_each_pair_d2, Dataset, KernelStrategy};
use lshddp_bench::swap::{swap_under_load, SwapBench};
use mapreduce::{Emitter, FnMapper, FnReducer, JobBuilder, JobConfig};
use rayon::prelude::*;
use serde::Serialize;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct ExecutorBench {
    /// Workload this granularity models.
    models: &'static str,
    calls: usize,
    items_per_call: usize,
    persistent_pool_s: f64,
    spawn_per_call_s: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct WallBench {
    description: &'static str,
    wall_s: f64,
}

#[derive(Serialize)]
struct KernelBench {
    points: usize,
    dim: usize,
    wall_s: f64,
    pairs_per_s: f64,
}

#[derive(Serialize)]
struct IndexedKernelsBench {
    description: &'static str,
    /// Points in the single partition both kernels process (`n_p`).
    points: usize,
    dim: usize,
    blocked_s: f64,
    indexed_s: f64,
    /// `blocked_s / indexed_s`; gated >= 2x by scripts/check_kernels.py.
    speedup: f64,
    blocked_evals: u64,
    indexed_evals: u64,
    /// Fraction of the blocked kernel's distance evaluations the spatial
    /// index pruned away (`1 - indexed/blocked`).
    evals_skipped_frac: f64,
    /// Bit-identical `(rho, delta, upslope)` between the two strategies.
    outputs_match: bool,
}

#[derive(Serialize)]
struct OverheadBench {
    description: &'static str,
    tracing_off_s: f64,
    tracing_on_s: f64,
    /// `on/off - 1`; negative values are timing noise.
    overhead_frac: f64,
    /// Wall with the whole telemetry plane live: span capture, executor
    /// observer, heap accounting, and an HTTP scraper hammering
    /// `/metrics` throughout the run.
    telemetry_on_s: f64,
    /// `telemetry_on/off - 1`; gated with `overhead_frac` by
    /// scripts/check_overhead.py.
    telemetry_overhead_frac: f64,
    /// `/metrics` scrapes served while the telemetry-on runs timed.
    scrapes: u64,
    /// Bit-identical `(rho, delta, upslope)` between the telemetry-off
    /// and fully-instrumented runs.
    outputs_match: bool,
}

#[derive(Serialize)]
struct TelemetryBench {
    description: &'static str,
    /// SLO objective handed to the burn-rate monitor (ms).
    slo_objective_ms: f64,
    /// The monitor flipped the server into degraded mode under overload.
    slo_degraded_triggered: bool,
    /// Requests shed purely by the SLO feedback (subset of timeouts).
    slo_shed: u64,
    /// Requests answered normally during the drill.
    served: u64,
    /// p99 end-to-end latency of *served* requests (ms).
    served_p99_ms: f64,
    /// The deadline the SLO must protect (ms); shedding has to keep
    /// `served_p99_ms` under this.
    deadline_ms: f64,
    /// Worst per-micro-batch peak resident heap during the drill.
    batch_peak_bytes: u64,
    /// Peak resident heap of the whole process so far.
    peak_resident_bytes: u64,
    /// Live `/metrics` scrapes during the drill: attempts and how many
    /// returned 200 with a well-formed exposition body.
    scrapes: u64,
    scrapes_ok: u64,
}

#[derive(Serialize)]
struct ElisionBench {
    description: &'static str,
    elision_on_s: f64,
    elision_off_s: f64,
    shuffle_bytes_on: u64,
    shuffle_bytes_off: u64,
    shuffle_bytes_saved: u64,
    /// Fraction of the no-elision shuffle volume that elision avoided.
    saved_frac: f64,
    /// Bit-identical `(rho, delta, upslope)` between the two modes.
    outputs_match: bool,
}

#[derive(Serialize)]
struct RecoveryBench {
    description: &'static str,
    clean_s: f64,
    /// Wall time with ~10% task crashes plus 10% stragglers injected.
    chaos_s: f64,
    /// Wall time with stage checkpointing on (no faults).
    checkpoint_s: f64,
    /// `checkpoint_s / clean_s - 1`; the cost of materializing every
    /// stage. Negative values are timing noise.
    checkpoint_overhead_frac: f64,
    task_retries: u64,
    straggler_delay_ms: f64,
    /// Bit-identical `(rho, delta, upslope)` between clean and chaos.
    outputs_match: bool,
}

#[derive(Serialize)]
struct StreamingBench {
    description: &'static str,
    points: usize,
    dim: usize,
    /// Raw coordinate volume (`points * dim * 8`); the scenario only
    /// means anything when this is >= 4x the budget.
    dataset_bytes: u64,
    /// The `--mem-budget` handed to the memory governor.
    budget_bytes: u64,
    resident_s: f64,
    budgeted_s: f64,
    /// FNV-1a over `(rho, delta bits, upslope)` of each run.
    digest_resident: u64,
    digest_budgeted: u64,
    /// The budgeted streaming run reproduced the unbudgeted resident run
    /// bit for bit.
    digests_match: bool,
    /// Shuffle bytes the budgeted run pushed to the disk spill tier.
    spill_bytes: u64,
    /// Nanoseconds reduce tasks stalled at the governor's admission gate.
    backpressure_stall_ns: u64,
    /// Process heap right before the budgeted run (the spilled input
    /// snapshot is already on disk at this point).
    baseline_resident_bytes: u64,
    /// Worst per-stage absolute peak heap during the budgeted run.
    peak_resident_bytes: u64,
    /// `peak - baseline`: the budgeted run's own working set, the number
    /// scripts/check_streaming.py holds against the budget.
    peak_over_baseline_bytes: u64,
}

#[derive(Serialize)]
struct CrashConsistencyBench {
    description: &'static str,
    /// I/O ops the counting pass gated — the size of the crash-point space.
    io_ops: u64,
    /// Enumerated power cuts that actually fired (clean + torn).
    crash_points_fired: u64,
    /// Randomized fault-mix attempts where at least one fault was injected.
    random_fault_attempts: u64,
    /// Distinct crash/fault points exercised in total; the
    /// scripts/check_crash.py gate requires >= 100.
    total_fault_points: u64,
    /// Attempts that ran clean (op-order variance or a quiet schedule).
    vacuous_attempts: u64,
    /// Invariant violations across every attempt — the gate requires zero.
    violations: Vec<String>,
    violation_count: usize,
    /// Transient faults absorbed by the shim's bounded retry policy.
    retries_absorbed: u64,
    faults_injected: u64,
    give_ups: u64,
    /// A compaction killed mid-pipeline (under transient storage faults)
    /// resumed from its checkpoint bit-identically to a from-scratch refit.
    resume_bit_identical: bool,
    resume_error: Option<String>,
    /// Same write workload through direct `std::fs` vs the unarmed shim.
    shim_direct_s: f64,
    shim_passthrough_s: f64,
    /// `(passthrough - direct) / direct`, clamped at zero; the gate
    /// requires < 5%.
    shim_overhead_frac: f64,
    /// The two write paths produced byte-identical files.
    shim_bit_identical: bool,
}

#[derive(Serialize)]
struct Summary {
    schema: u32,
    mode: &'static str,
    threads: usize,
    mapreduce_engine: ExecutorBench,
    pipelines: ExecutorBench,
    engine_shuffle_job: WallBench,
    lsh_ddp_pipeline: WallBench,
    kernel_pair_d2: KernelBench,
    indexed_kernels: IndexedKernelsBench,
    plan_elision: ElisionBench,
    recovery_overhead: RecoveryBench,
    hot_swap: SwapBench,
    crash_consistency: CrashConsistencyBench,
    tracing_overhead: OverheadBench,
    telemetry: TelemetryBench,
    streaming: StreamingBench,
}

/// Best-of-3 mean per call, after one warmup call.
fn time_calls<R>(calls: usize, mut f: impl FnMut() -> R) -> f64 {
    black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..calls {
            black_box(f());
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    best / calls as f64
}

/// A few dozen nanoseconds of integer mixing per item: the same order of
/// magnitude as one hash/emit or one low-dimensional distance.
#[inline]
fn item_work(x: u64) -> u64 {
    let mut h = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 31;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^ (h >> 27)
}

/// The pre-rewrite executor, reproduced: one fresh OS thread per worker
/// per call, contiguous slabs, join, no reuse.
fn spawn_per_call_sum(data: &[u64], threads: usize) -> u64 {
    let chunk = data.len().div_ceil(threads.max(1));
    std::thread::scope(|s| {
        let handles: Vec<_> = data
            .chunks(chunk)
            .map(|slab| s.spawn(move || slab.iter().map(|&x| item_work(x)).sum::<u64>()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

fn executor_bench(
    models: &'static str,
    calls: usize,
    items_per_call: usize,
    threads: usize,
) -> ExecutorBench {
    let data: Vec<u64> = (0..items_per_call as u64).collect();
    let pool = time_calls(calls, || {
        data.par_iter().map(|&x| item_work(x)).sum::<u64>()
    });
    let spawn = time_calls(calls, || spawn_per_call_sum(&data, threads));
    ExecutorBench {
        models,
        calls,
        items_per_call,
        persistent_pool_s: pool,
        spawn_per_call_s: spawn,
        speedup: spawn / pool,
    }
}

fn engine_shuffle_job(records: usize) -> WallBench {
    let input: Vec<(u32, u32)> = (0..records as u32)
        .map(|i| (i, i.wrapping_mul(2654435761)))
        .collect();
    let wall = time_calls(3, || {
        let m = FnMapper::new(|k: u32, v: u32, out: &mut Emitter<u32, u64>| {
            out.emit(k % 256, v as u64);
        });
        let r = FnReducer::new(|k: &u32, vs: Vec<u64>, out: &mut Emitter<u32, u64>| {
            out.emit(*k, vs.into_iter().sum());
        });
        let (out, _) = JobBuilder::new("bench", m, r)
            .config(JobConfig::uniform(8))
            .run(input.clone());
        out
    });
    WallBench {
        description: "modulo-key sum job, 256 groups, 8 map/reduce tasks",
        wall_s: wall,
    }
}

/// `d_c` matched to the blob geometry below.
const BLOB_DC: f64 = 0.8;

fn blob_dataset(n_per_blob: usize) -> Dataset {
    let mut ds = Dataset::new(2);
    for (cx, cy) in [(0.0, 0.0), (10.0, 2.0), (4.0, 9.0)] {
        for i in 0..n_per_blob as u64 {
            let jx = ((i.wrapping_mul(2654435761) >> 8) % 2000) as f64 / 1000.0 - 1.0;
            let jy = ((i.wrapping_mul(40503) >> 4) % 2000) as f64 / 1000.0 - 1.0;
            ds.push(&[cx + jx, cy + jy]);
        }
    }
    ds
}

fn blob_lsh() -> LshDdp {
    blob_lsh_with(false)
}

fn blob_lsh_with(disable_elision: bool) -> LshDdp {
    blob_lsh_cfg(PipelineConfig {
        map_tasks: 8,
        reduce_tasks: 8,
        fault: None,
        fault_stage: None,
        chaos: None,
        disable_elision,
        checkpoints: false,
        kernel: Default::default(),
        mem_budget: None,
    })
}

fn blob_lsh_cfg(pipeline: PipelineConfig) -> LshDdp {
    let base = LshDdp::with_accuracy(0.99, 10, 3, BLOB_DC, 42).expect("valid params");
    LshDdp::new(ddp::LshDdpConfig {
        pipeline,
        ..base.config().clone()
    })
}

fn lsh_ddp_pipeline(n_per_blob: usize) -> WallBench {
    let ds = blob_dataset(n_per_blob);
    let lsh = blob_lsh();
    let wall = time_calls(3, || lsh.run(&ds, BLOB_DC));
    WallBench {
        description: "four-job LSH-DDP pipeline, 3 blobs, 8 map/reduce tasks",
        wall_s: wall,
    }
}

/// The LSH-DDP pipeline with co-partitioned shuffle elision on (the
/// default: the delta-local stage reuses the rho-local stage's shuffled
/// partitions) vs forced off, with bit-identity of the outputs checked.
fn plan_elision(n_per_blob: usize) -> ElisionBench {
    let ds = blob_dataset(n_per_blob);
    let on = blob_lsh_with(false);
    let off = blob_lsh_with(true);
    let elision_on_s = time_calls(3, || on.run(&ds, BLOB_DC));
    let elision_off_s = time_calls(3, || off.run(&ds, BLOB_DC));
    let r_on = on.run(&ds, BLOB_DC);
    let r_off = off.run(&ds, BLOB_DC);
    let outputs_match = r_on.result.rho == r_off.result.rho
        && r_on.result.upslope == r_off.result.upslope
        && r_on
            .result
            .delta
            .iter()
            .zip(&r_off.result.delta)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    let saved = r_on.shuffle_bytes_saved();
    ElisionBench {
        description: "lsh_ddp_pipeline workload, co-partitioned shuffle elision on vs off",
        elision_on_s,
        elision_off_s,
        shuffle_bytes_on: r_on.shuffle_bytes(),
        shuffle_bytes_off: r_off.shuffle_bytes(),
        shuffle_bytes_saved: saved,
        saved_frac: saved as f64 / r_off.shuffle_bytes().max(1) as f64,
        outputs_match,
    }
}

/// The recovery-path costs on the LSH-DDP pipeline: a clean run, a run
/// under ~10% injected task crashes plus 10% stragglers (retries must be
/// invisible in the outputs), and a run with stage checkpointing on (the
/// materialization tax a resumable job pays up front).
fn recovery_overhead(n_per_blob: usize) -> RecoveryBench {
    use mapreduce::{ChaosPlan, Phase};
    let ds = blob_dataset(n_per_blob);
    let base = blob_lsh_with(false).config().pipeline;

    let mut chaos = ChaosPlan::new(100, 42).with_stragglers(100, 2.0, 1);
    // Make the schedule survivable: a doomed task would kill the bench.
    while !(0..64).all(|t| {
        [Phase::Map, Phase::Reduce]
            .into_iter()
            .all(|p| chaos.task_wastage(p, t).is_some())
    }) {
        chaos.fault.max_attempts += 1;
    }

    let clean = blob_lsh_cfg(base);
    let chaotic = blob_lsh_cfg(PipelineConfig {
        chaos: Some(chaos),
        ..base
    });
    let ckpt = blob_lsh_cfg(PipelineConfig {
        checkpoints: true,
        ..base
    });

    let clean_s = time_calls(3, || clean.run(&ds, BLOB_DC));
    let chaos_s = time_calls(3, || chaotic.run(&ds, BLOB_DC));
    let checkpoint_s = time_calls(3, || ckpt.run(&ds, BLOB_DC));

    let r_clean = clean.run(&ds, BLOB_DC);
    let r_chaos = chaotic.run(&ds, BLOB_DC);
    let outputs_match = r_clean.result.rho == r_chaos.result.rho
        && r_clean.result.upslope == r_chaos.result.upslope
        && r_clean
            .result
            .delta
            .iter()
            .zip(&r_chaos.result.delta)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    RecoveryBench {
        description: "lsh_ddp_pipeline workload: clean vs 10% chaos vs stage checkpointing",
        clean_s,
        chaos_s,
        checkpoint_s,
        checkpoint_overhead_frac: checkpoint_s / clean_s - 1.0,
        task_retries: r_chaos.jobs.iter().map(|j| j.task_retries).sum(),
        straggler_delay_ms: r_chaos
            .jobs
            .iter()
            .map(|j| j.straggler_delay_ns)
            .sum::<u64>() as f64
            / 1e6,
        outputs_match,
    }
}

/// One raw HTTP GET against the exposition listener; `Some(body)` only
/// for a 200 response.
fn http_get(addr: std::net::SocketAddr, path: &str) -> Option<String> {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).ok()?;
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n"
    )
    .ok()?;
    let mut buf = String::new();
    s.read_to_string(&mut buf).ok()?;
    let (head, body) = buf.split_once("\r\n\r\n")?;
    head.starts_with("HTTP/1.1 200").then(|| body.to_string())
}

/// A background scraper hammering `/metrics` until told to stop;
/// returns `(attempts, well-formed 200 responses)` on join.
struct Scraper {
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: std::thread::JoinHandle<(u64, u64)>,
}

impl Scraper {
    fn start(addr: std::net::SocketAddr) -> Scraper {
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = std::sync::Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let (mut tries, mut ok) = (0u64, 0u64);
            while !flag.load(Ordering::Relaxed) {
                tries += 1;
                if http_get(addr, "/metrics").is_some_and(|b| b.contains("_up{source=")) {
                    ok += 1;
                }
                // Prometheus-ish cadence scaled down for bench runtimes;
                // faster than this and the scraper's render CPU contends
                // measurably with the pipeline it is observing.
                std::thread::sleep(Duration::from_millis(50));
            }
            (tries, ok)
        });
        Scraper { stop, handle }
    }

    fn finish(self) -> (u64, u64) {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().expect("scraper thread")
    }
}

/// The full LSH-DDP pipeline with span capture off, then on (capture +
/// executor chunk observer — everything `--trace` enables), then with
/// the whole telemetry plane live (heap accounting + an active
/// `/metrics` scraper on top — everything `--metrics-addr` enables).
/// The on-runs are a strict upper bound on the cost of the
/// always-compiled-in instrumentation while disabled, so gating the
/// overhead fractions also gates the telemetry-off cost. Must run late:
/// the chunk observer and heap accounting, once on, stay on for the
/// life of the process.
fn tracing_overhead(n_per_blob: usize) -> OverheadBench {
    let ds = blob_dataset(n_per_blob);
    let lsh = blob_lsh();
    let r_off = lsh.run(&ds, BLOB_DC);
    let off = time_calls(3, || lsh.run(&ds, BLOB_DC));
    obsv::enable_capture();
    obsv::install_executor_metrics(obsv::global());
    // The ring buffers drop-oldest at fixed cost, so letting them wrap
    // across calls measures steady-state recording, not allocation.
    let on = time_calls(3, || lsh.run(&ds, BLOB_DC));

    // Full plane: allocator accounting plus a live scraper. One-way
    // enables — nothing timed after this point runs unaccounted.
    obsv::alloc::enable_accounting();
    let exposer = obsv::Exposition::new()
        .source("lshddp", obsv::RegistryRef::Static(obsv::global()))
        .collector(|| obsv::snapshot_pool_stats(obsv::global()))
        .serve("127.0.0.1:0")
        .expect("bind exposition listener");
    let scraper = Scraper::start(exposer.addr());
    let telemetry_on = time_calls(3, || lsh.run(&ds, BLOB_DC));
    let r_tel = lsh.run(&ds, BLOB_DC);
    let (scrapes, scrapes_ok) = scraper.finish();
    drop(exposer);
    obsv::disable_capture();
    obsv::clear_events();

    let outputs_match = scrapes == scrapes_ok
        && r_off.result.rho == r_tel.result.rho
        && r_off.result.upslope == r_tel.result.upslope
        && r_off
            .result
            .delta
            .iter()
            .zip(&r_tel.result.delta)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    OverheadBench {
        description: "lsh_ddp_pipeline workload: capture off vs on vs full telemetry plane",
        tracing_off_s: off,
        tracing_on_s: on,
        overhead_frac: on / off - 1.0,
        telemetry_on_s: telemetry_on,
        telemetry_overhead_frac: telemetry_on / off - 1.0,
        scrapes: scrapes_ok,
        outputs_match,
    }
}

/// The SLO drill: a deliberately overloaded single-worker server with an
/// unreachable latency objective, scraped live over HTTP while the
/// burn-rate monitor degrades it. Checks the feedback loop end to end —
/// burn gauges flip `slo.degraded`, degraded mode sheds queued work
/// (`slo_shed`), and the p99 of the requests actually *served* stays
/// under the protective deadline. Gated by scripts/check_telemetry.py.
fn telemetry_drill(n_per_blob: usize, queries: usize) -> TelemetryBench {
    use serve::{ClusterModel, Server, ServerConfig};
    let ds = blob_dataset(n_per_blob);
    let lsh = blob_lsh();
    let report = lsh.run(&ds, BLOB_DC);
    let outcome = ddp::CentralizedStep::new(ddp::PeakSelection::Auto).run(&report.result);
    let model = ClusterModel::from_run(&ds, &report, &outcome, &blob_lsh().config().params, 42);

    // 1 µs objective: every in-process request breaches, so the windows
    // saturate deterministically. The deadline is what the SLO protects.
    let slo_objective_ms = 0.001;
    let deadline_ms = 250.0;
    let server = Server::start(
        serve::QueryEngine::new(model),
        ServerConfig {
            threads: 1,
            queue_depth: 64,
            max_batch: 8,
            cache_capacity: 0,
            deadline: Some(Duration::from_millis(deadline_ms as u64)),
            slo: Some(obsv::SloConfig {
                objective_ns: (slo_objective_ms * 1e6) as u64,
                target: 0.9,
                fast_window: Duration::from_millis(20),
                slow_window: Duration::from_millis(100),
                burn_threshold: 1.0,
                tick: Duration::from_millis(5),
            }),
            ..ServerConfig::default()
        },
    );
    let exposer = obsv::Exposition::new()
        .source("lshddp", obsv::RegistryRef::Static(obsv::global()))
        .source("serve", obsv::RegistryRef::Shared(server.registry_arc()))
        .collector(|| obsv::snapshot_pool_stats(obsv::global()))
        .serve("127.0.0.1:0")
        .expect("bind exposition listener");
    let scraper = Scraper::start(exposer.addr());

    let q = {
        let engine = server.store().current();
        engine.model().point(0).to_vec()
    };
    let mut degraded_seen = false;
    let give_up = Instant::now() + Duration::from_secs(30);
    let clients = 4;
    let done = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..clients {
            let client = server.client();
            let (q, done) = (&q, &done);
            s.spawn(move || {
                for _ in 0..queries {
                    // Timeouts are the expected answer while degraded;
                    // only a wall-clock blowout ends a client early.
                    if client.assign(q).is_err() && Instant::now() > give_up {
                        break;
                    }
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Poll the degraded flag from the drill thread while clients run.
        while Instant::now() < give_up && done.load(Ordering::Relaxed) < clients {
            if server.slo_degraded() {
                degraded_seen = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    });
    degraded_seen |= server.slo_degraded();

    let snap = server.registry().snapshot();
    let stats = server.stats();
    let (scrapes, scrapes_ok) = scraper.finish();
    drop(exposer);
    server.shutdown();

    TelemetryBench {
        description: "overloaded 1-worker serve drill: SLO burn-rate feedback + live scrape",
        slo_objective_ms,
        slo_degraded_triggered: degraded_seen || snap.counters["slo_shed"] > 0,
        slo_shed: snap.counters["slo_shed"],
        served: stats.queries,
        served_p99_ms: stats.p99_latency_us / 1e3,
        deadline_ms,
        batch_peak_bytes: snap.gauges["mem.batch_peak_bytes"].max(0) as u64,
        peak_resident_bytes: obsv::alloc::peak_bytes(),
        scrapes,
        scrapes_ok,
    }
}

fn kernel_pair_d2(points: usize, dim: usize) -> KernelBench {
    let flat: Vec<f64> = (0..points * dim)
        .map(|i| ((i as u64).wrapping_mul(48271) % 1000) as f64 / 500.0)
        .collect();
    let wall = time_calls(3, || {
        let mut acc = 0.0f64;
        for_each_pair_d2(&flat, dim, |_, _, d2| acc += d2);
        acc
    });
    let pairs = (points * (points - 1) / 2) as f64;
    KernelBench {
        points,
        dim,
        wall_s: wall,
        pairs_per_s: pairs / wall,
    }
}

/// Point `i` of blob `b` in the clustered layout, written into `p` — the
/// shared generator behind [`clustered_dataset`] and the streaming
/// scenario's batched spill writer, so both produce bit-identical
/// coordinates for a given `(b, i)`.
fn clustered_point(b: u64, i: u64, p: &mut [f64]) {
    for (d, slot) in p.iter_mut().enumerate() {
        let hc = b
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((d as u64).wrapping_mul(0x517c_c1b7_2722_0a95))
            >> 17;
        let center = (hc % 1000) as f64 / 10.0;
        let hj = i
            .wrapping_mul(2654435761)
            .wrapping_add((d as u64).wrapping_mul(40503))
            >> 7;
        *slot = center + (hj % 2000) as f64 / 1000.0 - 1.0;
    }
}

/// Clustered blobs: the regime the spatial index targets (small `d_c`
/// neighborhoods inside well-separated clusters).
fn clustered_dataset(n: usize, dim: usize) -> Dataset {
    let mut ds = Dataset::new(dim);
    let mut p = vec![0.0; dim];
    for i in 0..n as u64 {
        clustered_point(i % 20, i, &mut p);
        ds.push(&p);
    }
    ds
}

/// Blocked vs spatial-index local DP kernels on one partition of
/// `points` points: the same rho/delta reduce work `basic_ddp` does per
/// block, with `block_size = points` so both strategies process a single
/// partition of size `n_p = points`. Gated by scripts/check_kernels.py
/// (outputs bit-identical, speedup >= 2x).
fn indexed_kernels(points: usize, dim: usize) -> IndexedKernelsBench {
    let ds = clustered_dataset(points, dim);
    let dc = 2.0;
    let runner = |kernel| {
        BasicDdp::new(BasicConfig {
            block_size: points,
            pipeline: PipelineConfig {
                kernel,
                ..PipelineConfig::default()
            },
        })
    };
    let blocked = runner(KernelStrategy::Blocked);
    let indexed = runner(KernelStrategy::Indexed);
    let blocked_s = time_calls(1, || blocked.run(&ds, dc));
    let indexed_s = time_calls(1, || indexed.run(&ds, dc));
    let r_blocked = blocked.run(&ds, dc);
    let r_indexed = indexed.run(&ds, dc);
    let outputs_match = r_blocked.result.rho == r_indexed.result.rho
        && r_blocked.result.upslope == r_indexed.result.upslope
        && r_blocked
            .result
            .delta
            .iter()
            .zip(&r_indexed.result.delta)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    IndexedKernelsBench {
        description: "single-partition basic_ddp rho+delta, blocked vs kd-tree kernels",
        points,
        dim,
        blocked_s,
        indexed_s,
        speedup: blocked_s / indexed_s,
        blocked_evals: r_blocked.distances,
        indexed_evals: r_indexed.distances,
        evals_skipped_frac: 1.0 - r_indexed.distances as f64 / r_blocked.distances.max(1) as f64,
        outputs_match,
    }
}

/// Order-sensitive FNV-1a over the full `(rho, delta bits, upslope)`
/// triple: any single bit of divergence between two runs flips it.
fn digest_result(r: &dp_core::DpResult) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for &v in &r.rho {
        eat(u64::from(v));
    }
    for &d in &r.delta {
        eat(d.to_bits());
    }
    for &u in &r.upslope {
        eat(u64::from(u));
    }
    h
}

/// Bounded-memory streaming: the LSH-DDP pipeline over a dataset several
/// times larger than the governor's budget, fed from a spilled input
/// snapshot (the coordinates are never resident as one `Vec`), checked
/// bit-identical against a conventional unbudgeted in-memory run. Must
/// run after heap accounting is on (the tracing scenario flips it) so
/// per-stage peaks are real. Gated by scripts/check_streaming.py.
fn streaming_budget(points: usize, dim: usize, budget: u64) -> StreamingBench {
    use dp_core::PointId;
    use mapreduce::{Snapshot, SpilledRows};

    let dc = 2.0;
    // Many small blobs so LSH partitions (and therefore reduce buckets)
    // are each a modest fraction of the budget — the regime where
    // admission can overlap work instead of serializing oversized
    // buckets. Blobs are *contiguous* index ranges (not round-robin):
    // each map task's points then share a blob, its output lands in a
    // handful of partitions, and the per-(task, bucket) spill frame
    // metadata stays negligible instead of scaling with
    // `map_tasks x reduce_tasks`.
    let n_blobs = 128u64;
    let per_blob = (points as u64).div_ceil(n_blobs);
    let stream_blob = move |i: u64| i / per_blob;
    let dataset_bytes = (points * dim * std::mem::size_of::<f64>()) as u64;
    // Wide slots relative to the blob jitter keep whole blobs together:
    // partitions of ~n/20 points, each a meaningful fraction of the
    // budget, so admission and retention both feel real pressure.
    let mk = |mem_budget: Option<u64>| {
        LshDdp::new(ddp::LshDdpConfig {
            params: lsh::LshParams {
                m: 3,
                pi: 4,
                w: 50.0,
            },
            seed: 42,
            pipeline: PipelineConfig {
                map_tasks: 128,
                reduce_tasks: 256,
                mem_budget,
                ..PipelineConfig::default()
            },
            partition_cap: None,
            rho_aggregation: Default::default(),
        })
    };

    // Ground truth: the conventional resident run, reduced to a digest so
    // nothing of it stays on the heap for the budgeted run to inherit.
    let ds = {
        let mut ds = Dataset::new(dim);
        let mut p = vec![0.0; dim];
        for i in 0..points as u64 {
            clustered_point(stream_blob(i), i, &mut p);
            ds.push(&p);
        }
        ds
    };
    let resident = mk(None);
    let t0 = Instant::now();
    let r_resident = resident.run(&ds, dc);
    let resident_s = t0.elapsed().as_secs_f64();
    let digest_resident = digest_result(&r_resident.result);
    drop(r_resident);
    drop(ds);

    // Stream the same points straight to the spill tier in batches
    // matching the map-task chunk (points / map_tasks): a map task then
    // decodes exactly its own frame, never a neighbor's, so the map
    // phase's transient decode cost is one task's input, not one
    // oversized frame per thread.
    let batch = points / 128;
    let rows = SpilledRows::from_batches(
        "bench-streaming",
        (0..points).step_by(batch).map(|lo| {
            let hi = (lo + batch).min(points);
            (lo..hi)
                .map(|i| {
                    let mut p = vec![0.0; dim];
                    clustered_point(stream_blob(i as u64), i as u64, &mut p);
                    (i as PointId, p)
                })
                .collect::<Vec<_>>()
        }),
    )
    .expect("write spilled input snapshot");
    let snap = Snapshot::from_spilled(rows);

    let baseline = obsv::alloc::current_bytes();
    let budgeted = mk(Some(budget));
    let t1 = Instant::now();
    let r_budgeted = budgeted.run_spilled(&snap, dim, dc);
    let budgeted_s = t1.elapsed().as_secs_f64();
    let digest_budgeted = digest_result(&r_budgeted.result);
    let peak = r_budgeted.peak_resident_bytes();
    if std::env::var_os("LSHDDP_STREAM_DEBUG").is_some() {
        for j in &r_budgeted.jobs {
            eprintln!(
                "  [stream] {}: peak={} spill={} stall_ms={:.1} shuffle={}",
                j.name,
                j.peak_resident_bytes,
                j.spill_bytes,
                j.backpressure_stall_ns as f64 / 1e6,
                j.shuffle_bytes
            );
        }
    }

    StreamingBench {
        description: "LSH-DDP over a 4x-budget dataset: spilled input + memory governor \
                      vs unbudgeted resident run",
        points,
        dim,
        dataset_bytes,
        budget_bytes: budget,
        resident_s,
        budgeted_s,
        digest_resident,
        digest_budgeted,
        digests_match: digest_resident == digest_budgeted,
        spill_bytes: r_budgeted.spill_bytes(),
        backpressure_stall_ns: r_budgeted.backpressure_stall_ns(),
        baseline_resident_bytes: baseline,
        peak_resident_bytes: peak,
        peak_over_baseline_bytes: peak.saturating_sub(baseline),
    }
}

/// One write workload (many small appends, one fsync) through direct
/// `std::fs` and through an unarmed [`mapreduce::io_shim::FaultFs`]:
/// the shim must be bit-identical and nearly free when no plan is armed.
fn shim_passthrough(root: &std::path::Path) -> (f64, f64, bool) {
    use std::io::Write;

    let buf = vec![0xA5u8; 256];
    let writes_per_slice = 2_048;
    let slices = 16;
    let rounds = 5;
    let direct_path = root.join("direct.bin");
    let shim_path = root.join("shim.bin");

    // The honest per-op shim cost is one relaxed load and a branch, so
    // the measurement has to beat scheduler noise, not the shim. Timing
    // alternates direct/shim slices of identical work and keeps the min
    // per path over every slice: a preempted slice inflates one sample,
    // never the floor.
    let mut direct_s = f64::INFINITY;
    let mut shim_s = f64::INFINITY;
    let mut identical = true;
    for _ in 0..rounds {
        std::fs::remove_file(&direct_path).ok();
        std::fs::remove_file(&shim_path).ok();
        let mut direct = std::fs::File::create(&direct_path).unwrap();
        let fs = mapreduce::io_shim::FaultFs::real();
        let mut shim = fs.create(&shim_path).unwrap();
        for _ in 0..slices {
            let start = Instant::now();
            for _ in 0..writes_per_slice {
                direct.write_all(&buf).unwrap();
            }
            direct_s = direct_s.min(start.elapsed().as_secs_f64());
            let start = Instant::now();
            for _ in 0..writes_per_slice {
                shim.write_all(&buf).unwrap();
            }
            shim_s = shim_s.min(start.elapsed().as_secs_f64());
        }
        direct.sync_data().unwrap();
        shim.sync_data().unwrap();
        identical &= std::fs::read(&direct_path).unwrap() == std::fs::read(&shim_path).unwrap();
    }
    std::fs::remove_file(&direct_path).ok();
    std::fs::remove_file(&shim_path).ok();
    (direct_s, shim_s, identical)
}

/// The crash-consistency drill (see `ingest::drill`): enumerate a power
/// cut at every I/O op of the durable workflow, add randomized fault
/// mixes and the checkpoint-resume kill, and report invariant violations
/// (the scripts/check_crash.py gate requires zero) plus the unarmed
/// shim's passthrough overhead.
fn crash_consistency(smoke: bool) -> CrashConsistencyBench {
    use ingest::drill;

    let root = std::env::temp_dir().join(format!("bench-crash-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&root).unwrap();

    let base = drill::fit_base_model(&drill::drill_dataset(20, 41), 41);
    let max_runs = if smoke { 240 } else { 400 };
    let enumerated = drill::enumerate_crash_points(&root, &base, max_runs);
    let seeds = if smoke { 0..16 } else { 0..32 };
    let randomized = drill::random_fault_drill(&root, &base, seeds);
    let resume = drill::checkpoint_resume_drill(&base);
    let (shim_direct_s, shim_passthrough_s, shim_bit_identical) = shim_passthrough(&root);
    std::fs::remove_dir_all(&root).ok();

    let mut violations = enumerated.violations;
    violations.extend(randomized.violations);
    CrashConsistencyBench {
        description: "power cut at every io op of save/ingest/compact/save/retire, \
                      plus randomized EIO/ENOSPC/cut mixes and a checkpointed kill",
        io_ops: enumerated.io_ops,
        crash_points_fired: enumerated.crash_attempts,
        random_fault_attempts: randomized.fault_attempts,
        total_fault_points: enumerated.crash_attempts + randomized.fault_attempts,
        vacuous_attempts: enumerated.vacuous + randomized.vacuous,
        violation_count: violations.len(),
        violations,
        retries_absorbed: enumerated.retries + randomized.retries,
        faults_injected: enumerated.injected + randomized.injected,
        give_ups: enumerated.give_ups + randomized.give_ups,
        resume_bit_identical: resume.is_ok(),
        resume_error: resume.err(),
        shim_direct_s,
        shim_passthrough_s,
        shim_overhead_frac: ((shim_passthrough_s - shim_direct_s) / shim_direct_s).max(0.0),
        shim_bit_identical,
    }
}

fn main() {
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(it.next().expect("--out needs a path")),
            other => panic!("unknown flag {other}; supported: --smoke --out"),
        }
    }
    // The pool sizes itself once from LSHDDP_THREADS; the comparison
    // needs real worker threads even on small CI machines.
    if std::env::var_os("LSHDDP_THREADS").is_none() {
        std::env::set_var("LSHDDP_THREADS", "4");
    }
    let threads = rayon::current_num_threads();

    let (calls, engine_records, blob_n, kernel_n, swap_queries) = if smoke {
        (50, 20_000, 300, 500, 400)
    } else {
        (400, 100_000, 1_500, 10_000, 2_000)
    };
    // The kernel gate (check_kernels.py) is stated at n_p = 10k, so the
    // indexed-vs-blocked comparison runs at full size even in smoke mode.
    let indexed_n = 10_000;
    // The streaming gate (check_streaming.py) is stated at a fixed size —
    // 8 MiB of coordinates against a 2 MiB budget — so like the kernel
    // comparison it runs at full size even in smoke mode (the budgeted
    // run is sub-second).
    let (stream_n, stream_budget) = (16_384, 2u64 * 1024 * 1024);

    eprintln!("bench_summary: threads={threads} smoke={smoke}");
    let summary = Summary {
        schema: 9,
        mode: if smoke { "smoke" } else { "full" },
        threads,
        // The engine's map phase: one parallel call per job over a
        // handful of map tasks, each task light.
        mapreduce_engine: executor_bench(
            "map phase: 8 tasks/job, light tasks",
            calls,
            512,
            threads,
        ),
        // Pipeline reducers: many small per-bucket calls (LSH partitions
        // are numerous and skewed, so granularity is even finer).
        pipelines: executor_bench(
            "per-bucket reduce: many tiny calls",
            calls * 2,
            128,
            threads,
        ),
        engine_shuffle_job: engine_shuffle_job(engine_records),
        lsh_ddp_pipeline: lsh_ddp_pipeline(blob_n),
        kernel_pair_d2: kernel_pair_d2(kernel_n, 8),
        indexed_kernels: indexed_kernels(indexed_n, 8),
        plan_elision: plan_elision(blob_n),
        recovery_overhead: recovery_overhead(blob_n),
        // Serving correctness across model hot-swaps under load; gated
        // by scripts/check_swap.py (>= 3 swaps, 0 dropped, 0 incorrect).
        hot_swap: swap_under_load(42, if smoke { 120 } else { 400 }, 4, 4, swap_queries),
        // Storage-fault drills: power cut at every I/O op plus random
        // fault mixes; gated by scripts/check_crash.py (>= 100 fault
        // points, 0 violations, shim passthrough < 5% overhead).
        crash_consistency: crash_consistency(smoke),
        // The last three scenarios flip or require process-lifetime
        // switches (chunk observer, heap accounting) and must stay last,
        // in this order: tracing_overhead times its telemetry-off
        // baseline first, and streaming needs accounting already on for
        // its per-stage peaks.
        tracing_overhead: tracing_overhead(blob_n),
        telemetry: telemetry_drill(blob_n, if smoke { 400 } else { 1_500 }),
        streaming: streaming_budget(stream_n, 64, stream_budget),
    };

    for (name, b) in [
        ("mapreduce_engine", &summary.mapreduce_engine),
        ("pipelines", &summary.pipelines),
    ] {
        eprintln!(
            "{name}: pool {:.2e}s/call vs spawn-per-call {:.2e}s/call -> {:.1}x",
            b.persistent_pool_s, b.spawn_per_call_s, b.speedup
        );
    }
    eprintln!(
        "engine job {:.3}s, lsh-ddp pipeline {:.3}s, kernel {:.2e} pairs/s",
        summary.engine_shuffle_job.wall_s,
        summary.lsh_ddp_pipeline.wall_s,
        summary.kernel_pair_d2.pairs_per_s
    );
    eprintln!(
        "indexed kernels: blocked {:.3}s vs indexed {:.3}s ({:.1}x), \
         evals {} -> {} ({:.1}% skipped), outputs_match={}",
        summary.indexed_kernels.blocked_s,
        summary.indexed_kernels.indexed_s,
        summary.indexed_kernels.speedup,
        summary.indexed_kernels.blocked_evals,
        summary.indexed_kernels.indexed_evals,
        summary.indexed_kernels.evals_skipped_frac * 100.0,
        summary.indexed_kernels.outputs_match
    );
    eprintln!(
        "elision: on {:.3}s off {:.3}s, shuffle {} B vs {} B (saved {} B = {:.1}%), outputs_match={}",
        summary.plan_elision.elision_on_s,
        summary.plan_elision.elision_off_s,
        summary.plan_elision.shuffle_bytes_on,
        summary.plan_elision.shuffle_bytes_off,
        summary.plan_elision.shuffle_bytes_saved,
        summary.plan_elision.saved_frac * 100.0,
        summary.plan_elision.outputs_match
    );
    eprintln!(
        "recovery: clean {:.3}s chaos {:.3}s ({} retries, {:.1} ms straggler delay), \
         checkpointing {:.3}s ({:+.1}%), outputs_match={}",
        summary.recovery_overhead.clean_s,
        summary.recovery_overhead.chaos_s,
        summary.recovery_overhead.task_retries,
        summary.recovery_overhead.straggler_delay_ms,
        summary.recovery_overhead.checkpoint_s,
        summary.recovery_overhead.checkpoint_overhead_frac * 100.0,
        summary.recovery_overhead.outputs_match
    );
    eprintln!(
        "hot swap: {} swaps over {} queries at {:.0} qps — {} dropped, {} incorrect \
         (gen A {} / gen B {}, {} busy-retries)",
        summary.hot_swap.swaps,
        summary.hot_swap.queries_total,
        summary.hot_swap.qps,
        summary.hot_swap.dropped,
        summary.hot_swap.incorrect,
        summary.hot_swap.matched_gen_a,
        summary.hot_swap.matched_gen_b,
        summary.hot_swap.shed_retries
    );
    eprintln!(
        "crash drill: {} io ops, {} cuts + {} random attempts ({} vacuous), \
         {} violations, {} retries / {} give-ups, resume_identical={}, \
         shim passthrough {:+.1}% identical={}",
        summary.crash_consistency.io_ops,
        summary.crash_consistency.crash_points_fired,
        summary.crash_consistency.random_fault_attempts,
        summary.crash_consistency.vacuous_attempts,
        summary.crash_consistency.violation_count,
        summary.crash_consistency.retries_absorbed,
        summary.crash_consistency.give_ups,
        summary.crash_consistency.resume_bit_identical,
        summary.crash_consistency.shim_overhead_frac * 100.0,
        summary.crash_consistency.shim_bit_identical
    );
    eprintln!(
        "tracing: off {:.3}s on {:.3}s ({:+.1}%), full telemetry {:.3}s ({:+.1}%, \
         {} live scrapes), outputs_match={}",
        summary.tracing_overhead.tracing_off_s,
        summary.tracing_overhead.tracing_on_s,
        summary.tracing_overhead.overhead_frac * 100.0,
        summary.tracing_overhead.telemetry_on_s,
        summary.tracing_overhead.telemetry_overhead_frac * 100.0,
        summary.tracing_overhead.scrapes,
        summary.tracing_overhead.outputs_match
    );
    eprintln!(
        "telemetry drill: degraded={} slo_shed={} served={} p99 {:.2} ms (deadline {} ms), \
         batch peak {} B, scrapes {}/{} ok",
        summary.telemetry.slo_degraded_triggered,
        summary.telemetry.slo_shed,
        summary.telemetry.served,
        summary.telemetry.served_p99_ms,
        summary.telemetry.deadline_ms,
        summary.telemetry.batch_peak_bytes,
        summary.telemetry.scrapes_ok,
        summary.telemetry.scrapes
    );

    eprintln!(
        "streaming: resident {:.3}s vs budgeted {:.3}s, digests_match={}, \
         spilled {} B, stalled {:.1} ms, peak {} B over baseline {} B (budget {} B)",
        summary.streaming.resident_s,
        summary.streaming.budgeted_s,
        summary.streaming.digests_match,
        summary.streaming.spill_bytes,
        summary.streaming.backpressure_stall_ns as f64 / 1e6,
        summary.streaming.peak_over_baseline_bytes,
        summary.streaming.baseline_resident_bytes,
        summary.streaming.budget_bytes
    );

    let path =
        out.unwrap_or_else(|| format!("{}/../../BENCH_perf.json", env!("CARGO_MANIFEST_DIR")));
    let json = serde_json::to_string_pretty(&summary).expect("serializable summary");
    std::fs::write(&path, json + "\n").expect("write BENCH_perf.json");
    eprintln!("wrote {path}");
}
