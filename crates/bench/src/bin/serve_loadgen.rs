//! Closed-loop load generator for the serving layer.
//!
//! Fits a `ClusterModel` over a synthetic mixture once, then sweeps the
//! server over thread counts and cache sizes. Each configuration runs `C`
//! closed-loop client threads (a client blocks on every `assign` round
//! trip, so offered load self-throttles to service capacity — classic
//! closed-loop benchmarking) over a skewed query pool: a minority of hot
//! queries repeat, which is what gives a non-zero cache hit rate at
//! realistic quantization.
//!
//! Reported per configuration: sustained throughput, mean micro-batch
//! size (the batching win appears as soon as clients outnumber workers),
//! cache hit rate, p50/p99 end-to-end latency, and the two load-shedding
//! counters — `shed` (submits refused with `Busy` at a deliberately tight
//! queue) and `timeouts` (requests that outwaited the per-request
//! deadline and were answered with `Timeout` instead of being served).
//!
//! A final scenario hammers the server while hot-swapping between two
//! model generations (base fit vs ingested successor) and checks every
//! response against both generations' precomputed ground truth: across
//! the swaps, zero requests may be dropped and zero answers may match
//! neither generation. CI gates the same run via `scripts/check_swap.py`.
//!
//! ```text
//! cargo run --release -p lshddp-bench --bin serve_loadgen [-- --scale f --seed n]
//! ```

use ddp::prelude::*;
use lshddp_bench::{print_table, ExpArgs};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serve::{ClusterModel, QueryEngine, ServeError, Server, ServerConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const QUERIES_PER_CLIENT: usize = 4_000;
const POOL: usize = 4_096;
const HOT_FRACTION: f64 = 0.10; // hottest 10% of the pool ...
const HOT_WEIGHT: f64 = 0.80; // ... serve 80% of the picks

fn main() {
    // Scale 1.0 = 12,000 training points; --scale shrinks the fit.
    let args = ExpArgs::parse(1.0);
    let n_per = ((3_000.0 * args.scale) as usize).max(200);
    let ld = datasets::gaussian_mixture(4, 4, n_per, 120.0, 2.0, args.seed);
    let ds = &ld.data;
    let dc = dp_core::cutoff::estimate_dc_sampled(ds, 0.02, 100_000, args.seed);

    let ddp = LshDdp::with_accuracy(0.99, 10, 3, dc, args.seed).expect("valid params");
    let params = ddp.config().params;
    let report = ddp.run(ds, dc);
    let outcome = CentralizedStep::new(PeakSelection::TopK(4)).run(&report.result);
    let model = ClusterModel::from_run(ds, &report, &outcome, &params, args.seed);
    println!(
        "serve loadgen — model: {} points x {} dims, {} clusters, d_c = {dc:.4}",
        model.len(),
        model.dim(),
        model.n_clusters()
    );

    // A fixed query pool: training points plus small jitter, so queries
    // exercise the LSH path rather than the trivial self-match.
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x5eed);
    let pool: Vec<Vec<f64>> = (0..POOL)
        .map(|_| {
            let id = rng.random_range(0..model.len()) as u32;
            model
                .point(id)
                .iter()
                .map(|&x| x + rng.random_range(-0.05..0.05) * dc)
                .collect()
        })
        .collect();

    let mut rows = Vec::new();
    for &threads in &[1usize, 2, 4, 8] {
        for &cache in &[0usize, 16_384] {
            let clients = threads * 4;
            let engine = QueryEngine::new(model.clone());
            let server = Server::start(
                engine,
                ServerConfig {
                    threads,
                    // Tight queue + generous deadline: shedding is visible
                    // under load, timeouts only under real pathology.
                    queue_depth: clients.div_ceil(2),
                    max_batch: 32,
                    cache_capacity: cache,
                    deadline: Some(Duration::from_millis(250)),
                    ..ServerConfig::default()
                },
            );

            let shed = AtomicU64::new(0);
            let start = Instant::now();
            std::thread::scope(|s| {
                for c in 0..clients {
                    let client = server.client();
                    let pool = &pool;
                    let shed = &shed;
                    let mut rng = StdRng::seed_from_u64(args.seed + c as u64);
                    s.spawn(move || {
                        let hot = ((POOL as f64 * HOT_FRACTION) as usize).max(1);
                        for _ in 0..QUERIES_PER_CLIENT {
                            let i = if rng.random_bool(HOT_WEIGHT) {
                                rng.random_range(0..hot)
                            } else {
                                rng.random_range(0..POOL)
                            };
                            // Open-loop submit with retry: a full queue is
                            // counted as shed and retried; a timed-out
                            // request is simply lost (the server already
                            // counted it).
                            loop {
                                match client.try_assign(&pool[i]) {
                                    Ok(_) | Err(ServeError::Timeout) => break,
                                    Err(ServeError::Busy) => {
                                        shed.fetch_add(1, Ordering::Relaxed);
                                        std::thread::yield_now();
                                    }
                                    Err(e) => panic!("server died: {e}"),
                                }
                            }
                        }
                    });
                }
            });
            let elapsed = start.elapsed().as_secs_f64();
            let stats = server.stats();
            server.shutdown();

            let total = (clients * QUERIES_PER_CLIENT) as f64;
            rows.push(vec![
                threads.to_string(),
                clients.to_string(),
                cache.to_string(),
                format!("{:.0}", total / elapsed),
                format!("{:.2}", stats.mean_batch_size),
                format!("{:.1}%", stats.cache_hit_rate * 100.0),
                format!("{:.0}", stats.p50_latency_us),
                format!("{:.0}", stats.p99_latency_us),
                shed.load(Ordering::Relaxed).to_string(),
                stats.timed_out.to_string(),
            ]);
        }
    }

    print_table(
        &[
            "threads",
            "clients",
            "cache",
            "qps",
            "mean batch",
            "hit rate",
            "p50 µs",
            "p99 µs",
            "shed",
            "timeouts",
        ],
        &rows,
    );

    // Swap-under-sustained-traffic: 5 hot-swaps spaced through the run,
    // every answer checked against both generations' ground truth.
    let swap = lshddp_bench::swap::swap_under_load(
        args.seed,
        ((800.0 * args.scale) as usize).max(100),
        4,
        5,
        QUERIES_PER_CLIENT / 2,
    );
    println!();
    println!(
        "hot-swap under load — {} clients on {} workers, {} swaps mid-traffic",
        swap.clients, swap.threads, swap.swaps
    );
    println!(
        "  {} queries at {:.0} qps: {} dropped, {} incorrect \
         ({} answered by gen A, {} by gen B, {} busy-retries)",
        swap.queries_total,
        swap.qps,
        swap.dropped,
        swap.incorrect,
        swap.matched_gen_a,
        swap.matched_gen_b,
        swap.shed_retries
    );
    assert_eq!(swap.dropped, 0, "hot-swap dropped requests");
    assert_eq!(swap.incorrect, 0, "hot-swap served a torn answer");

    // SLO burn-rate drill: one worker, an unreachable 1 µs objective, so
    // every request breaches and both burn windows saturate. The monitor
    // must flip the server into degraded mode, degraded shedding must
    // kick in (`slo shed`), and the p99 of requests actually served must
    // stay under the 250 ms deadline the SLO protects.
    let objective_ms = 0.001;
    let deadline = Duration::from_millis(250);
    let server = Server::start(
        QueryEngine::new(model.clone()),
        ServerConfig {
            threads: 1,
            queue_depth: 64,
            max_batch: 32,
            cache_capacity: 0,
            deadline: Some(deadline),
            slo: Some(obsv::SloConfig {
                objective_ns: (objective_ms * 1e6) as u64,
                target: 0.9,
                fast_window: Duration::from_millis(20),
                slow_window: Duration::from_millis(100),
                burn_threshold: 1.0,
                tick: Duration::from_millis(5),
            }),
            ..ServerConfig::default()
        },
    );
    let mut degraded = false;
    let give_up = Instant::now() + Duration::from_secs(30);
    let done = AtomicU64::new(0);
    let drill_clients = 4u64;
    std::thread::scope(|s| {
        for c in 0..drill_clients {
            let client = server.client();
            let (pool, done) = (&pool, &done);
            s.spawn(move || {
                for i in 0..QUERIES_PER_CLIENT / 4 {
                    // Timeouts are the expected answer while degraded;
                    // only a wall-clock blowout ends a client early.
                    let q = &pool[(c as usize + i * 7) % POOL];
                    if client.assign(q).is_err() && Instant::now() > give_up {
                        break;
                    }
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        while Instant::now() < give_up && done.load(Ordering::Relaxed) < drill_clients {
            if server.slo_degraded() {
                degraded = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    });
    degraded |= server.slo_degraded();
    let snap = server.registry().snapshot();
    let stats = server.stats();
    server.shutdown();

    println!();
    println!("SLO burn-rate drill — 1 worker, {objective_ms} ms objective (unreachable)");
    print_table(
        &[
            "objective ms",
            "degraded",
            "slo shed",
            "timeouts",
            "served",
            "p99 ms",
            "fast burn",
            "slow burn",
        ],
        &[vec![
            format!("{objective_ms}"),
            degraded.to_string(),
            snap.counters["slo_shed"].to_string(),
            stats.timed_out.to_string(),
            stats.queries.to_string(),
            format!("{:.2}", stats.p99_latency_us / 1e3),
            format!("{:.1}", snap.gauges["slo.fast_burn_milli"] as f64 / 1e3),
            format!("{:.1}", snap.gauges["slo.slow_burn_milli"] as f64 / 1e3),
        ]],
    );
    assert!(
        degraded || snap.counters["slo_shed"] > 0,
        "burn-rate monitor never degraded the overloaded server"
    );
    assert!(
        stats.p99_latency_us / 1e3 <= deadline.as_millis() as f64,
        "SLO shedding failed to keep served p99 under the deadline"
    );
}
