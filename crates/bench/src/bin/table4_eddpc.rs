//! Table IV — LSH-DDP vs EDDPC on BigCross500K.
//!
//! The paper reports (at 500K points, 5-node cluster): LSH-DDP needs less
//! runtime and much less shuffled data than EDDPC, but *more* distance
//! computations — the LSH partitions overlap points into all-pairs local
//! work, while EDDPC's triangle-inequality filters prune harder. The
//! trade buys LSH-DDP its 2× runtime edge because shuffle dominates.
//! Also reproduced: lowering the accuracy target speeds LSH-DDP further.

use datasets::PaperDataset;
use ddp::prelude::*;
use lshddp_bench::{fmt_bytes, fmt_count, fmt_secs, print_table, ExpArgs};
use mapreduce::ClusterSpec;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    algorithm: String,
    wall_s: f64,
    sim_s: f64,
    shuffle_bytes: u64,
    distances: u64,
    tau2_vs_exact: f64,
}

fn main() {
    let args = ExpArgs::parse(0.02);
    let ld = PaperDataset::BigCross500k.generate(args.scale, args.seed);
    let mut ds = ld.data;
    ds.normalize_min_max();
    let dc = dp_core::cutoff::estimate_dc_sampled(&ds, 0.02, 200_000, args.seed);
    let spec = ClusterSpec {
        job_startup_secs: 0.0,
        ..ClusterSpec::local_cluster()
    };
    let dims_factor = ds.dim() as f64 / 4.0;
    println!(
        "Table IV — LSH-DDP vs EDDPC on BigCross500K analog (N = {}, d_c = {dc:.4})\n",
        ds.len()
    );

    let exact = dp_core::compute_exact(&ds, dc);

    let mut rows = Vec::new();
    let mut emit = |name: String, report: &RunReport| {
        let row = Row {
            algorithm: name.clone(),
            wall_s: report.wall.as_secs_f64(),
            sim_s: report.simulate(&spec, dims_factor),
            shuffle_bytes: report.shuffle_bytes(),
            distances: report.distances,
            tau2_vs_exact: dp_core::quality::tau2(&exact.rho, &report.result.rho),
        };
        args.emit_json(&row);
        rows.push(vec![
            row.algorithm,
            fmt_secs(row.wall_s),
            fmt_secs(row.sim_s),
            fmt_bytes(row.shuffle_bytes),
            fmt_count(row.distances),
            format!("{:.4}", row.tau2_vs_exact),
        ]);
    };

    // EDDPC's published configuration uses thousands of Voronoi cells at
    // 500K points (N/25 here): small cells mean little local all-pairs
    // work but heavy boundary replication — exactly the trade Table IV
    // reports against LSH-DDP.
    let eddpc = Eddpc::new(EddpcConfig {
        n_pivots: (ds.len() / 25).max(8),
        seed: args.seed,
        pipeline: Default::default(),
    })
    .run(&ds, dc);
    emit("EDDPC (exact)".into(), &eddpc);

    for a in [0.99, 0.90] {
        let lsh = LshDdp::with_accuracy(a, 10, 3, dc, args.seed)
            .expect("valid accuracy")
            .run(&ds, dc);
        emit(format!("LSH-DDP (A={a})"), &lsh);
    }

    print_table(
        &[
            "algorithm",
            "wall",
            "sim (5-node)",
            "shuffled",
            "# dist",
            "tau2 vs exact",
        ],
        &rows,
    );
    println!(
        "\nShape to check (paper Table IV): LSH-DDP shuffles far less than EDDPC \
         and runs faster, despite computing MORE distances; A=0.90 is faster still."
    );
}
