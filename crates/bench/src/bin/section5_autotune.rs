//! §V in action — the parameter optimization problem (Eq. 9), solved
//! empirically over the recommended grid, then validated by running the
//! winning and losing configurations for real.

use datasets::PaperDataset;
use ddp::prelude::*;
use lshddp_bench::{fmt_bytes, fmt_count, fmt_secs, print_table, ExpArgs};
use mapreduce::ClusterSpec;

fn main() {
    let args = ExpArgs::parse(0.01);
    let ld = PaperDataset::BigCross500k.generate(args.scale, args.seed);
    let mut ds = ld.data;
    ds.normalize_min_max();
    let dc = dp_core::cutoff::estimate_dc_sampled(&ds, 0.02, 200_000, args.seed);
    let spec = ClusterSpec::local_cluster();
    println!(
        "Section V — cost-based (M, pi, w) selection at A = 0.99 on BigCross500K analog \
         (N = {}, d_c = {dc:.4})\n",
        ds.len()
    );

    let report = autotune(&ds, dc, 0.99, &spec, &RECOMMENDED_GRID, 1000, args.seed)
        .expect("valid tuning domain");

    let mut rows = Vec::new();
    for c in &report.candidates {
        let is_best = c.params == report.best.params;
        rows.push(vec![
            format!("{}{}", if is_best { "-> " } else { "   " }, c.params.m),
            c.params.pi.to_string(),
            format!("{:.3}", c.params.w),
            fmt_count(c.predicted_distances),
            fmt_bytes(c.predicted_shuffle_bytes),
            fmt_secs(c.predicted_cost_secs),
        ]);
    }
    print_table(
        &[
            "M",
            "pi",
            "w (Thm 1)",
            "predicted #dist",
            "predicted shuffle",
            "predicted cost",
        ],
        &rows,
    );

    // Validate: run the best and the worst candidate for real.
    let worst = report
        .candidates
        .iter()
        .max_by(|a, b| {
            a.predicted_cost_secs
                .partial_cmp(&b.predicted_cost_secs)
                .unwrap()
        })
        .expect("non-empty grid");
    println!("\nvalidation runs (measured):");
    for (tag, cand) in [("best", &report.best), ("worst", worst)] {
        let run = LshDdp::new(ddp::lsh_ddp::LshDdpConfig {
            params: cand.params,
            seed: args.seed,
            pipeline: Default::default(),
            partition_cap: None,
            rho_aggregation: Default::default(),
        })
        .run(&ds, dc);
        println!(
            "  {tag:<5} M={:<2} pi={:<2}: measured {} dists, {} shuffled, sim {}",
            cand.params.m,
            cand.params.pi,
            fmt_count(run.distances),
            fmt_bytes(run.shuffle_bytes()),
            fmt_secs(run.simulate(&spec, ds.dim() as f64 / 4.0)),
        );
    }
}
