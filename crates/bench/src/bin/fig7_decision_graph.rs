//! Figure 7 — decision graphs of Basic-DDP vs LSH-DDP on S2.
//!
//! Reproduces the experiment of §VI-C: run both pipelines on the S2 analog
//! (5,000 × 2) with `A = 0.99, M = 10, pi = 3`, print both decision
//! graphs' peak regions, and verify the paper's observations:
//!
//! * the same number of peaks is selected on both graphs;
//! * LSH-DDP's `rho` values roughly match Basic-DDP's;
//! * some LSH-DDP peaks sit at the top of the chart (rectified infinite
//!   `delta` — wrongly assumed absolute peaks), which makes them *easier*
//!   to spot, not harder.

use datasets::paper::s2_like;
use ddp::prelude::*;
use dp_core::decision::DecisionGraph;
use lshddp_bench::{print_table, ExpArgs};
use serde::Serialize;

#[derive(Serialize)]
struct Summary {
    algorithm: &'static str,
    peaks: usize,
    rectified: usize,
    max_rho: u32,
}

fn main() {
    let args = ExpArgs::parse(1.0);
    let n = (5000.0 * args.scale).round() as usize;
    let ld = s2_like(n, args.seed);
    let mut ds = ld.data;
    ds.normalize_min_max();
    let dc = dp_core::cutoff::estimate_dc_sampled(&ds, 0.02, 200_000, args.seed);
    println!("Figure 7 — decision graphs on S2 analog (N = {n}, d_c = {dc:.4})\n");

    let basic = BasicDdp::new(BasicConfig::default()).run(&ds, dc);
    let lsh = LshDdp::with_accuracy(0.99, 10, 3, dc, args.seed)
        .expect("valid accuracy")
        .run(&ds, dc);

    // The paper's user draws a rectangle (rho > 14 && delta > 40 on its
    // axes) that selects the 15 S-set centers. We emulate that manual
    // selection with the oracle-k rectangle: delta_min halfway between
    // the 15th and 16th largest delta of the exact graph, rho_min at the
    // 25th percentile of rho (excluding the low-density fringe). The SAME
    // rectangle is then applied to both graphs — the paper's comparison.
    let basic_graph = DecisionGraph::from_result(&basic.result);
    let k_expected = 15.min(ds.len());
    let mut deltas: Vec<f64> = basic_graph.points().iter().map(|p| p.delta).collect();
    deltas.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    let delta_min = if deltas.len() > k_expected {
        (deltas[k_expected - 1] + deltas[k_expected]) / 2.0
    } else {
        0.0
    };
    let mut rhos: Vec<u32> = basic_graph.points().iter().map(|p| p.rho).collect();
    rhos.sort_unstable();
    let rho_min = rhos[rhos.len() / 4];

    let basic_peaks = dp_core::decision::select_by_threshold(&basic.result, rho_min, delta_min);
    let lsh_peaks = dp_core::decision::select_by_threshold(&lsh.result, rho_min, delta_min);
    let lsh_graph = DecisionGraph::from_result(&lsh.result);

    let rows: Vec<Vec<String>> = [
        ("Basic-DDP", &basic_graph, &basic_peaks),
        ("LSH-DDP", &lsh_graph, &lsh_peaks),
    ]
    .iter()
    .map(|(name, graph, peaks)| {
        let rectified = graph.points().iter().filter(|p| p.rectified).count();
        let max_rho = graph.points().iter().map(|p| p.rho).max().unwrap_or(0);
        args.emit_json(&Summary {
            algorithm: name,
            peaks: peaks.len(),
            rectified,
            max_rho,
        });
        vec![
            name.to_string(),
            peaks.len().to_string(),
            rectified.to_string(),
            max_rho.to_string(),
        ]
    })
    .collect();

    print_table(
        &[
            "algorithm",
            "# peaks selected",
            "# rectified deltas",
            "max rho",
        ],
        &rows,
    );

    // Clustering agreement between the two (paper: "almost the same").
    let k = k_expected.max(basic_peaks.len()).max(1);
    let basic_out = CentralizedStep::new(PeakSelection::TopK(k)).run(&basic.result);
    let lsh_out = CentralizedStep::new(PeakSelection::TopK(k)).run(&lsh.result);
    let ari = dp_core::quality::adjusted_rand_index(
        basic_out.clustering.labels(),
        lsh_out.clustering.labels(),
    );
    println!("\nCluster agreement Basic vs LSH (ARI at k = {k}): {ari:.4}");
    println!(
        "tau1 = {:.4}, tau2 = {:.4}",
        dp_core::quality::tau1(&basic.result.rho, &lsh.result.rho),
        dp_core::quality::tau2(&basic.result.rho, &lsh.result.rho)
    );

    // CSV decision graphs for re-plotting (stdout is the paper's figure
    // source; redirect to files to plot).
    println!("\n--- basic decision graph head (id,rho,delta,rectified) ---");
    for line in basic_graph.to_csv().lines().take(6) {
        println!("{line}");
    }
    println!("--- lsh decision graph head ---");
    for line in lsh_graph.to_csv().lines().take(6) {
        println!("{line}");
    }
}
