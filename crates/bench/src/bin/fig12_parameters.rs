//! Figure 12 — the effect of `M` (layouts) and `pi` (functions per group)
//! on runtime (a) and accuracy tau2 (b), at fixed target `A = 0.99`.
//!
//! The paper's observations to reproduce:
//! * at `pi = 3`, runtime grows with `M` (more copies shuffled);
//! * at large `pi` (20), small `M` suffers skew (few huge partitions) and
//!   the runtime trend flattens or reverses;
//! * `tau2` is poor for `M < 5` and stable ≈ 0.99 for `M >= 5–10`.

use datasets::PaperDataset;
use ddp::prelude::*;
use lshddp_bench::{fmt_count, fmt_secs, print_table, ExpArgs};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    m: usize,
    pi: usize,
    w: f64,
    wall_s: f64,
    distances: u64,
    shuffle_bytes: u64,
    tau2: f64,
}

fn main() {
    let args = ExpArgs::parse(0.01);
    let ld = PaperDataset::BigCross500k.generate(args.scale, args.seed);
    let mut ds = ld.data;
    ds.normalize_min_max();
    let dc = dp_core::cutoff::estimate_dc_sampled(&ds, 0.02, 200_000, args.seed);
    println!(
        "Figure 12 — effect of M and pi at A = 0.99 on BigCross500K analog (N = {})\n",
        ds.len()
    );

    let exact = dp_core::compute_exact(&ds, dc);

    // Reducers hold at most 2000 points in memory (see LshDdpConfig::
    // partition_cap): for M < 5 the Theorem-1 width inflates partitions
    // past the cap, so chunked processing degrades tau2 — the paper's
    // Figure 12(b) behaviour.
    let cap = 2000;
    let mut rows = Vec::new();
    for pi in [3usize, 10, 20] {
        for m in [1usize, 2, 5, 10, 20, 30] {
            let params = lsh::LshParams::for_accuracy(0.99, m, pi, dc).expect("valid accuracy");
            let w = params.w;
            let lsh = LshDdp::new(ddp::lsh_ddp::LshDdpConfig {
                params,
                seed: args.seed,
                pipeline: Default::default(),
                partition_cap: Some(cap),
                rho_aggregation: Default::default(),
            });
            let report = lsh.run(&ds, dc);
            let row = Row {
                m,
                pi,
                w,
                wall_s: report.wall.as_secs_f64(),
                distances: report.distances,
                shuffle_bytes: report.shuffle_bytes(),
                tau2: dp_core::quality::tau2(&exact.rho, &report.result.rho),
            };
            args.emit_json(&row);
            rows.push(vec![
                m.to_string(),
                pi.to_string(),
                format!("{w:.3}"),
                fmt_secs(row.wall_s),
                fmt_count(row.distances),
                lshddp_bench::fmt_bytes(row.shuffle_bytes),
                format!("{:.4}", row.tau2),
            ]);
        }
    }
    print_table(
        &["M", "pi", "w", "wall", "# dist", "shuffled", "tau2"],
        &rows,
    );
    println!(
        "\nShape to check: cost grows with M at pi = 3; tau2 is degraded for M < 5 \
         and stable near 0.99 for M >= 10 (the paper recommends M in [10,20], \
         pi in [3,10])."
    );
}
