//! Table III — key features of the clustering algorithms.
//!
//! The paper's Table III is qualitative; here each claim that *can* be
//! checked against our implementations is checked at runtime (determinism,
//! arbitrary-shape handling), and the rest is printed as documented.

use baselines::{Dbscan, EmGmm, Hierarchical, KMeans, Linkage};
use datasets::shapes;
use ddp::prelude::*;
use dp_core::quality::adjusted_rand_index;
use lshddp_bench::{print_table, ExpArgs};

/// Does the algorithm recover two interleaved spirals? (the
/// arbitrary-shape probe behind the "cluster shape assumption" column)
fn spiral_score(fit: impl Fn(&dp_core::Dataset) -> Vec<u32>) -> f64 {
    let ld = shapes::spirals(2, 150, 0.02, 7);
    let labels = fit(&ld.data);
    adjusted_rand_index(&labels, &ld.labels)
}

fn dp_fit(ds: &dp_core::Dataset) -> Vec<u32> {
    let dc = dp_core::cutoff::estimate_dc_exact(ds, 0.02);
    let r = dp_core::compute_exact(ds, dc);
    let out = CentralizedStep::new(PeakSelection::TopK(2)).run(&r);
    out.clustering.labels().to_vec()
}

fn main() {
    let args = ExpArgs::parse(1.0);
    println!("Table III — key features of various clustering algorithms\n");

    // Determinism probes: run twice, compare.
    let ld = shapes::aggregation_like(args.seed);
    let det = |fit: &dyn Fn() -> Vec<u32>| -> &'static str {
        if fit() == fit() {
            "deterministic (verified)"
        } else {
            "non-deterministic"
        }
    };
    let dp_det = det(&|| dp_fit(&ld.data));
    let km_det = det(&|| KMeans::new(7, 1).fit(&ld.data).clustering.labels().to_vec());

    // Shape probes.
    let dp_shape = spiral_score(dp_fit);
    let km_shape = spiral_score(|ds| KMeans::new(2, 1).fit(ds).clustering.labels().to_vec());
    let em_shape = spiral_score(|ds| EmGmm::new(2, 1).fit(ds).clustering.labels().to_vec());
    let hi_shape = spiral_score(|ds| {
        Hierarchical::new(2, Linkage::Single)
            .fit(ds)
            .labels()
            .to_vec()
    });
    let db_shape = spiral_score(|ds| {
        let dc = dp_core::cutoff::estimate_dc_exact(ds, 0.02);
        Dbscan::new(dc, 2).fit(ds).to_clustering().labels().to_vec()
    });

    let shape = |ari: f64| {
        if ari > 0.9 {
            format!("arbitrary shapes OK (spiral ARI {ari:.2})")
        } else {
            format!("shape-biased (spiral ARI {ari:.2})")
        }
    };

    let rows = vec![
        vec![
            "hierarchical".into(),
            "no".into(),
            shape(hi_shape),
            "no".into(),
            "O(n^3)".into(),
            "no".into(),
            "no".into(),
        ],
        vec![
            "k-means".into(),
            "yes".into(),
            shape(km_shape),
            "yes".into(),
            "O(n*k*I)".into(),
            "yes".into(),
            km_det.into(),
        ],
        vec![
            "EM".into(),
            "yes".into(),
            shape(em_shape),
            "yes".into(),
            "O(n*k*I)".into(),
            "yes".into(),
            "no".into(),
        ],
        vec![
            "DBSCAN".into(),
            "no".into(),
            shape(db_shape),
            "no".into(),
            "O(n^2)".into(),
            "no".into(),
            "no".into(),
        ],
        vec![
            "DP".into(),
            "no".into(),
            shape(dp_shape),
            "no".into(),
            "O(n^2)".into(),
            "yes".into(),
            dp_det.into(),
        ],
    ];
    print_table(
        &[
            "algorithm",
            "iterative",
            "cluster shape",
            "needs k",
            "complexity",
            "parallel",
            "interactivity/determinism",
        ],
        &rows,
    );

    println!(
        "\nDP recovers interleaved spirals (ARI {dp_shape:.2}) where centroid methods \
         (k-means {km_shape:.2}, EM {em_shape:.2}) fail — Table III's shape column."
    );
}
