//! Figure 10 — Basic-DDP vs LSH-DDP on four data sets:
//! (a) runtime, (b) shuffled data, (c) distance computations.
//!
//! Data sets: Facial, KDD, 3Dspatial, BigCross500K analogs (Table II),
//! scaled by `--scale` so the O(N²) exact baseline stays tractable.
//! LSH-DDP runs at the paper's `A = 0.99, M = 10, pi = 3`; Basic-DDP's
//! block size is 500.
//!
//! Expected shape (paper §VI-D): LSH-DDP wins on every axis, and the
//! speedup grows with the data set size (1.7–24× runtime, 5–87× shuffle,
//! 1.7–6.1× distances at full scale).

use datasets::PaperDataset;
use ddp::prelude::*;
use lshddp_bench::{fmt_bytes, fmt_count, fmt_secs, print_table, scaled_block, ExpArgs};
use mapreduce::ClusterSpec;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    n: usize,
    dims: usize,
    basic_wall_s: f64,
    lsh_wall_s: f64,
    basic_sim_s: f64,
    lsh_sim_s: f64,
    speedup_sim: f64,
    basic_shuffle: u64,
    lsh_shuffle: u64,
    shuffle_saving: f64,
    basic_dist: u64,
    lsh_dist: u64,
    dist_saving: f64,
}

fn main() {
    let args = ExpArgs::parse(0.02);
    // Job-startup cost is excluded from the simulated column: at analog
    // scales the 4 x 15 s Hadoop job overhead would mask the work terms
    // the figure is about (at the paper's full N it is negligible).
    let spec = ClusterSpec {
        job_startup_secs: 0.0,
        ..ClusterSpec::local_cluster()
    };
    println!(
        "Figure 10 — Basic-DDP vs LSH-DDP (A=0.99, M=10, pi=3; block=500; scale {})\n",
        args.scale
    );

    let sets = [
        PaperDataset::Facial,
        PaperDataset::Kdd,
        PaperDataset::Spatial3d,
        PaperDataset::BigCross500k,
    ];

    let mut rows = Vec::new();
    for d in sets {
        let ld = d.generate(args.scale, args.seed);
        let mut ds = ld.data;
        ds.normalize_min_max();
        let dc = dp_core::cutoff::estimate_dc_sampled(&ds, 0.02, 200_000, args.seed);
        let dims_factor = ds.dim() as f64 / 4.0;

        let basic = BasicDdp::new(BasicConfig {
            block_size: scaled_block(args.scale),
            ..Default::default()
        })
        .run(&ds, dc);
        let lsh = LshDdp::with_accuracy(0.99, 10, 3, dc, args.seed)
            .expect("valid accuracy")
            .run(&ds, dc);

        let row = Row {
            dataset: d.name(),
            n: ds.len(),
            dims: ds.dim(),
            basic_wall_s: basic.wall.as_secs_f64(),
            lsh_wall_s: lsh.wall.as_secs_f64(),
            basic_sim_s: basic.simulate(&spec, dims_factor),
            lsh_sim_s: lsh.simulate(&spec, dims_factor),
            speedup_sim: basic.simulate(&spec, dims_factor) / lsh.simulate(&spec, dims_factor),
            basic_shuffle: basic.shuffle_bytes(),
            lsh_shuffle: lsh.shuffle_bytes(),
            shuffle_saving: basic.shuffle_bytes() as f64 / lsh.shuffle_bytes().max(1) as f64,
            basic_dist: basic.distances,
            lsh_dist: lsh.distances,
            dist_saving: basic.distances as f64 / lsh.distances.max(1) as f64,
        };
        args.emit_json(&row);
        rows.push(vec![
            row.dataset.to_string(),
            row.n.to_string(),
            fmt_secs(row.basic_wall_s),
            fmt_secs(row.lsh_wall_s),
            fmt_secs(row.basic_sim_s),
            fmt_secs(row.lsh_sim_s),
            format!("{:.1}x", row.speedup_sim),
            fmt_bytes(row.basic_shuffle),
            fmt_bytes(row.lsh_shuffle),
            format!("{:.1}x", row.shuffle_saving),
            fmt_count(row.basic_dist),
            fmt_count(row.lsh_dist),
            format!("{:.1}x", row.dist_saving),
        ]);
    }
    print_table(
        &[
            "data set",
            "N",
            "basic wall",
            "lsh wall",
            "basic sim(5-node)",
            "lsh sim",
            "speedup",
            "basic shuffle",
            "lsh shuffle",
            "saving",
            "basic #dist",
            "lsh #dist",
            "saving",
        ],
        &rows,
    );
    println!(
        "\nShape to check against the paper: LSH-DDP wins every column, and every \
         saving grows with N (quadratic vs ~linear growth)."
    );
}
