//! Figure 9 — approximation accuracy (tau1, tau2) vs expected accuracy A.
//!
//! On the BigCross500K analog, sweep the user-facing accuracy target
//! `A ∈ {0.5 … 0.99}` with `M = 10, pi = 3` (the paper's setting), derive
//! `w` from Theorem 1, run LSH-DDP, and measure `tau1` (fraction of
//! exactly recovered densities) and `tau2` (1 − mean normalized error)
//! against Basic-DDP's exact densities. The paper's observation: the
//! measured `tau1` hugs the diagonal (the analysis is predictive) and both
//! metrics approach 1 as `A → 1`.

use datasets::PaperDataset;
use ddp::prelude::*;
use dp_core::quality::{tau1, tau2};
use lshddp_bench::{print_table, ExpArgs};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    expected_accuracy: f64,
    tau1: f64,
    tau2: f64,
    distances: u64,
}

fn main() {
    // Default scale 2%: 10,000 points of the 500K set — the exact
    // baseline runs once, the sweep runs seven LSH-DDP configurations.
    let args = ExpArgs::parse(0.02);
    let ld = PaperDataset::BigCross500k.generate(args.scale, args.seed);
    let mut ds = ld.data;
    ds.normalize_min_max();
    let dc = dp_core::cutoff::estimate_dc_sampled(&ds, 0.02, 200_000, args.seed);
    println!(
        "Figure 9 — tau1/tau2 vs expected accuracy A on BigCross500K analog \
         (N = {}, d_c = {dc:.4}, M = 10, pi = 3)\n",
        ds.len()
    );

    let exact = dp_core::compute_exact(&ds, dc);

    let mut rows = Vec::new();
    for a in [0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99] {
        let report = LshDdp::with_accuracy(a, 10, 3, dc, args.seed)
            .expect("valid accuracy")
            .run(&ds, dc);
        let row = Row {
            expected_accuracy: a,
            tau1: tau1(&exact.rho, &report.result.rho),
            tau2: tau2(&exact.rho, &report.result.rho),
            distances: report.distances,
        };
        args.emit_json(&row);
        rows.push(vec![
            format!("{a:.2}"),
            format!("{:.4}", row.tau1),
            format!("{:.4}", row.tau2),
            lshddp_bench::fmt_count(row.distances),
        ]);
    }
    print_table(
        &[
            "A (expected)",
            "tau1 (measured)",
            "tau2 (measured)",
            "# dist",
        ],
        &rows,
    );
    println!(
        "\nPaper's claims to check: tau1 tracks the diagonal (measured ≈ expected), \
         both metrics rise toward 1 as A -> 1, and cost (# dist) rises with A."
    );
}
