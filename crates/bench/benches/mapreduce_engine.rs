//! Engine benchmarks: shuffle/grouping throughput and the combiner
//! ablation (the design choice DESIGN.md calls out — map-side combining
//! trades CPU for shuffle volume).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mapreduce::{Combiner, Emitter, JobBuilder, JobConfig, Mapper, Reducer};
use std::hint::black_box;

struct ModMapper {
    buckets: u32,
}
impl Mapper for ModMapper {
    type InKey = u32;
    type InValue = u32;
    type OutKey = u32;
    type OutValue = u64;
    fn map(&self, k: u32, v: u32, out: &mut Emitter<u32, u64>) {
        out.emit(k % self.buckets, v as u64);
    }
}

struct SumReducer;
impl Reducer for SumReducer {
    type InKey = u32;
    type InValue = u64;
    type OutKey = u32;
    type OutValue = u64;
    fn reduce(&self, k: &u32, vs: Vec<u64>, out: &mut Emitter<u32, u64>) {
        out.emit(*k, vs.into_iter().sum());
    }
}

struct SumCombiner;
impl Combiner for SumCombiner {
    type Key = u32;
    type Value = u64;
    fn combine(&self, _k: &u32, vs: Vec<u64>) -> Vec<u64> {
        vec![vs.into_iter().sum()]
    }
}

fn input(n: usize) -> Vec<(u32, u32)> {
    (0..n as u32)
        .map(|i| (i, i.wrapping_mul(2654435761)))
        .collect()
}

fn bench_shuffle(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_shuffle");
    g.sample_size(20);
    for n in [10_000usize, 100_000] {
        let data = input(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("sum_no_combiner", n), &data, |b, data| {
            b.iter(|| {
                let (out, _) = JobBuilder::new("bench", ModMapper { buckets: 256 }, SumReducer)
                    .config(JobConfig::uniform(4))
                    .run(data.clone());
                black_box(out)
            })
        });
        g.bench_with_input(
            BenchmarkId::new("sum_with_combiner", n),
            &data,
            |b, data| {
                b.iter(|| {
                    let (out, _) = JobBuilder::new("bench", ModMapper { buckets: 256 }, SumReducer)
                        .combiner(SumCombiner)
                        .config(JobConfig::uniform(4))
                        .run(data.clone());
                    black_box(out)
                })
            },
        );
    }
    g.finish();
}

fn bench_task_counts(c: &mut Criterion) {
    let data = input(100_000);
    let mut g = c.benchmark_group("engine_parallelism");
    g.sample_size(20);
    g.throughput(Throughput::Elements(100_000));
    for tasks in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(tasks), &data, |b, data| {
            b.iter(|| {
                let (out, _) = JobBuilder::new("bench", ModMapper { buckets: 4096 }, SumReducer)
                    .config(JobConfig::uniform(tasks))
                    .run(data.clone());
                black_box(out)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_shuffle, bench_task_counts);
criterion_main!(benches);
