//! End-to-end pipeline benchmarks: sequential DP vs Basic-DDP vs LSH-DDP
//! vs EDDPC at growing N — the Criterion companion to Figure 10's
//! runtime panel (who wins and how the gap scales).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datasets::generators::blob_grid;
use ddp::prelude::*;
use std::hint::black_box;

fn bench_pipelines(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipelines");
    g.sample_size(10);
    for n_per in [10usize, 40] {
        // 5×5 grid of blobs; N = 25 * n_per.
        let ld = blob_grid(5, 5, n_per, 25.0, 0.6, 7);
        let ds = ld.data;
        let n = ds.len();
        let dc = 0.8;
        g.throughput(Throughput::Elements(n as u64));

        g.bench_with_input(BenchmarkId::new("sequential", n), &ds, |b, ds| {
            b.iter(|| black_box(dp_core::compute_exact(ds, dc)))
        });
        g.bench_with_input(BenchmarkId::new("sequential_fast", n), &ds, |b, ds| {
            // The paper's §II-A triangle-inequality + sorted-rho variant.
            b.iter(|| black_box(dp_core::compute_exact_fast(ds, dc, 8)))
        });
        g.bench_with_input(BenchmarkId::new("basic_ddp", n), &ds, |b, ds| {
            let pipe = BasicDdp::new(BasicConfig {
                block_size: 100,
                ..Default::default()
            });
            b.iter(|| black_box(pipe.run(ds, dc)))
        });
        g.bench_with_input(BenchmarkId::new("lsh_ddp_a99", n), &ds, |b, ds| {
            let pipe = LshDdp::with_accuracy(0.99, 10, 3, dc, 42).unwrap();
            b.iter(|| black_box(pipe.run(ds, dc)))
        });
        g.bench_with_input(BenchmarkId::new("eddpc", n), &ds, |b, ds| {
            let pipe = Eddpc::new(EddpcConfig::for_size(n, 42));
            b.iter(|| black_box(pipe.run(ds, dc)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
