//! Micro-benchmarks of the LSH machinery: single hashes, group
//! signatures, M-layout signatures, and the closed-form width solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lsh::{LshParams, MultiLsh};
use std::hint::black_box;

fn point(dim: usize) -> Vec<f64> {
    (0..dim).map(|d| (d % 13) as f64 * 0.21).collect()
}

fn bench_signatures(c: &mut Criterion) {
    let mut g = c.benchmark_group("signatures");
    for dim in [2usize, 57, 300] {
        let params = LshParams {
            m: 10,
            pi: 3,
            w: 1.0,
        };
        let multi = MultiLsh::new(dim, &params, 42);
        let p = point(dim);
        g.throughput(Throughput::Elements(10 * 3));
        g.bench_with_input(BenchmarkId::new("m10_pi3", dim), &p, |b, p| {
            b.iter(|| black_box(multi.signatures(p)))
        });
    }
    for (m, pi) in [(5usize, 3usize), (10, 10), (20, 20)] {
        let params = LshParams { m, pi, w: 1.0 };
        let multi = MultiLsh::new(57, &params, 42);
        let p = point(57);
        g.throughput(Throughput::Elements((m * pi) as u64));
        g.bench_with_input(
            BenchmarkId::new("dim57", format!("m{m}_pi{pi}")),
            &p,
            |b, p| b.iter(|| black_box(multi.signatures(p))),
        );
    }
    g.finish();
}

fn bench_solver(c: &mut Criterion) {
    c.bench_function("solve_width", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for a in [0.5, 0.9, 0.99, 0.999] {
                acc += lsh::tuning::solve_width(black_box(a), 10, 3, 0.05).unwrap();
            }
            black_box(acc)
        })
    });
    c.bench_function("p_delta_curve", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..100 {
                acc += lsh::prob::p_delta(i as f64 * 0.1, 2.0);
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_signatures, bench_solver);
criterion_main!(benches);
