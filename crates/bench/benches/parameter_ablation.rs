//! Ablation of LSH-DDP's design parameters (Criterion companion to
//! Figure 12): layouts `M`, group size `pi`, and the accuracy target's
//! effect on the slot width and therefore on local-partition work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::generators::blob_grid;
use ddp::prelude::*;
use std::hint::black_box;

fn bench_m_sweep(c: &mut Criterion) {
    let ld = blob_grid(5, 5, 20, 25.0, 0.6, 7);
    let ds = ld.data;
    let dc = 0.8;
    let mut g = c.benchmark_group("ablation_M");
    g.sample_size(10);
    for m in [1usize, 5, 10, 20] {
        g.bench_with_input(BenchmarkId::from_parameter(m), &ds, |b, ds| {
            let pipe = LshDdp::with_accuracy(0.99, m, 3, dc, 42).unwrap();
            b.iter(|| black_box(pipe.run(ds, dc)))
        });
    }
    g.finish();
}

fn bench_pi_sweep(c: &mut Criterion) {
    let ld = blob_grid(5, 5, 20, 25.0, 0.6, 7);
    let ds = ld.data;
    let dc = 0.8;
    let mut g = c.benchmark_group("ablation_pi");
    g.sample_size(10);
    for pi in [1usize, 3, 10, 20] {
        g.bench_with_input(BenchmarkId::from_parameter(pi), &ds, |b, ds| {
            let pipe = LshDdp::with_accuracy(0.99, 10, pi, dc, 42).unwrap();
            b.iter(|| black_box(pipe.run(ds, dc)))
        });
    }
    g.finish();
}

fn bench_accuracy_sweep(c: &mut Criterion) {
    let ld = blob_grid(5, 5, 20, 25.0, 0.6, 7);
    let ds = ld.data;
    let dc = 0.8;
    let mut g = c.benchmark_group("ablation_accuracy");
    g.sample_size(10);
    for a in [50usize, 90, 99] {
        g.bench_with_input(BenchmarkId::from_parameter(a), &ds, |b, ds| {
            let pipe = LshDdp::with_accuracy(a as f64 / 100.0, 10, 3, dc, 42).unwrap();
            b.iter(|| black_box(pipe.run(ds, dc)))
        });
    }
    g.finish();
}

fn bench_rho_aggregation(c: &mut Criterion) {
    use ddp::lsh_ddp::{LshDdpConfig, RhoAggregation};
    let ld = blob_grid(5, 5, 20, 25.0, 0.6, 7);
    let ds = ld.data;
    let dc = 0.8;
    let mut g = c.benchmark_group("ablation_rho_aggregation");
    g.sample_size(10);
    for (name, agg) in [("max", RhoAggregation::Max), ("mean", RhoAggregation::Mean)] {
        g.bench_with_input(
            criterion::BenchmarkId::from_parameter(name),
            &ds,
            |b, ds| {
                let pipe = LshDdp::new(LshDdpConfig {
                    params: lsh::LshParams::for_accuracy(0.99, 10, 3, dc).unwrap(),
                    seed: 42,
                    pipeline: Default::default(),
                    partition_cap: None,
                    rho_aggregation: agg,
                });
                b.iter(|| black_box(pipe.run(ds, dc)))
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_m_sweep,
    bench_pi_sweep,
    bench_accuracy_sweep,
    bench_rho_aggregation
);
criterion_main!(benches);
