//! Micro-benchmarks of the distance kernels that dominate every pipeline
//! (the paper's cost model counts these as the computational cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn gen_points(dim: usize, n: usize) -> Vec<Vec<f64>> {
    // Deterministic pseudo-data; values don't matter for throughput.
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|d| ((i * 31 + d * 17) % 97) as f64 * 0.013)
                .collect()
        })
        .collect()
}

fn bench_euclidean(c: &mut Criterion) {
    let mut g = c.benchmark_group("euclidean");
    // The paper's dimensionalities: 2 (S2), 4 (3Dspatial), 57 (BigCross),
    // 74 (KDD), 300 (Facial).
    for dim in [2usize, 4, 57, 74, 300] {
        let pts = gen_points(dim, 64);
        g.throughput(Throughput::Elements((64 * 64) as u64));
        g.bench_with_input(BenchmarkId::new("full", dim), &pts, |b, pts| {
            b.iter(|| {
                let mut acc = 0.0;
                for a in pts {
                    for q in pts {
                        acc += dp_core::distance::euclidean(a, q);
                    }
                }
                black_box(acc)
            })
        });
        g.bench_with_input(
            BenchmarkId::new("squared_threshold", dim),
            &pts,
            |b, pts| {
                b.iter(|| {
                    let mut count = 0u32;
                    for a in pts {
                        for q in pts {
                            if dp_core::DistanceKind::Euclidean.within(a, q, 0.5) {
                                count += 1;
                            }
                        }
                    }
                    black_box(count)
                })
            },
        );
    }
    g.finish();
}

fn bench_tracker_overhead(c: &mut Criterion) {
    let pts = gen_points(57, 64);
    let tracker = dp_core::DistanceTracker::new();
    let mut g = c.benchmark_group("tracker_overhead");
    g.throughput(Throughput::Elements((64 * 64) as u64));
    g.bench_function("untracked", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for a in &pts {
                for q in &pts {
                    acc += dp_core::distance::euclidean(a, q);
                }
            }
            black_box(acc)
        })
    });
    g.bench_function("tracked", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for a in &pts {
                for q in &pts {
                    acc += tracker.distance(a, q);
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_euclidean, bench_tracker_overhead);
criterion_main!(benches);
