//! Golden-shape validation of the chrome-tracing exporter: capture a
//! known span tree, export it, parse it back with `obsv::json`, and
//! check the document against what `chrome://tracing` / Perfetto expect.
//!
//! Lives in its own integration-test binary because it toggles the
//! process-global capture flag.

use obsv::export::{chrome_trace, jsonl, write_trace};
use obsv::json::{parse, Json};
use obsv::{clear_events, disable_capture, drain_events, enable_capture, span};

fn captured_tree() -> Vec<obsv::SpanEvent> {
    enable_capture();
    clear_events();
    span!("pipeline", "lsh-ddp" => {
        span!("job", "lsh/rho-local" => {
            let _m = span!("phase", "map:lsh/rho-local");
            drop(_m);
            let _r = span!("phase", "reduce:lsh/rho-local");
        });
        span!("job", "lsh/delta-local" => {});
    });
    disable_capture();
    drain_events()
}

#[test]
fn exported_trace_is_valid_chrome_json() {
    let events = captured_tree();
    assert_eq!(events.len(), 5);

    let text = chrome_trace(&events);
    let doc = parse(&text).expect("exporter output must be valid JSON");

    // Top-level shape.
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let trace_events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert_eq!(trace_events.len(), events.len());

    // Every event is a complete ("X") event with the required fields, in
    // microseconds, and matches the captured span it came from.
    for (obj, ev) in trace_events.iter().zip(&events) {
        assert_eq!(obj.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(
            obj.get("name").and_then(Json::as_str),
            Some(ev.name.as_str())
        );
        assert_eq!(obj.get("cat").and_then(Json::as_str), Some(ev.cat));
        assert_eq!(obj.get("pid").and_then(Json::as_num), Some(1.0));
        assert_eq!(obj.get("tid").and_then(Json::as_num), Some(ev.tid as f64));
        let ts = obj.get("ts").and_then(Json::as_num).unwrap();
        let dur = obj.get("dur").and_then(Json::as_num).unwrap();
        assert!((ts - ev.start_ns as f64 / 1_000.0).abs() < 1e-6);
        assert!((dur - ev.dur_ns as f64 / 1_000.0).abs() < 1e-6);
        let args = obj.get("args").expect("args object");
        assert_eq!(args.get("id").and_then(Json::as_num), Some(ev.id as f64));
        assert_eq!(
            args.get("parent").and_then(Json::as_num),
            Some(ev.parent as f64)
        );
    }

    // The captured tree has the expected parent structure.
    let find = |name: &str| events.iter().find(|e| e.name == name).unwrap();
    let root = find("lsh-ddp");
    assert_eq!(root.parent, 0);
    for job in ["lsh/rho-local", "lsh/delta-local"] {
        assert_eq!(find(job).parent, root.id, "{job} under the pipeline");
    }
    for phase in ["map:lsh/rho-local", "reduce:lsh/rho-local"] {
        assert_eq!(
            find(phase).parent,
            find("lsh/rho-local").id,
            "{phase} under its job"
        );
    }
}

#[test]
fn jsonl_lines_parse_individually() {
    let events = captured_tree();
    let text = jsonl(&events);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), events.len());
    for (line, ev) in lines.iter().zip(&events) {
        let obj = parse(line).expect("each JSONL line is a document");
        assert_eq!(obj.get("seq").and_then(Json::as_num), Some(ev.seq as f64));
        assert_eq!(
            obj.get("start_ns").and_then(Json::as_num),
            Some(ev.start_ns as f64)
        );
        assert_eq!(
            obj.get("name").and_then(Json::as_str),
            Some(ev.name.as_str())
        );
    }
}

#[test]
fn write_trace_picks_format_by_extension() {
    let events = captured_tree();
    let dir = std::env::temp_dir();
    let chrome_path = dir.join("obsv_test_trace.json");
    let jsonl_path = dir.join("obsv_test_trace.jsonl");

    write_trace(chrome_path.to_str().unwrap(), &events).unwrap();
    write_trace(jsonl_path.to_str().unwrap(), &events).unwrap();

    let chrome = std::fs::read_to_string(&chrome_path).unwrap();
    assert!(parse(&chrome).unwrap().get("traceEvents").is_some());

    let lines = std::fs::read_to_string(&jsonl_path).unwrap();
    assert_eq!(lines.lines().count(), events.len());

    let _ = std::fs::remove_file(chrome_path);
    let _ = std::fs::remove_file(jsonl_path);
}
