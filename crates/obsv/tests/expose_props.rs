//! Property tests for the live exposition formats: `/metrics` must be
//! valid Prometheus text (legal names, escaped help/labels, cumulative
//! monotone histogram buckets ending in a `+Inf` that equals `_count`)
//! and `/metrics.json` must round-trip through the crate's own strict
//! JSON parser — for arbitrary metric names, prefixes, and values.

use obsv::expose::{metrics_json, prometheus_text};
use obsv::Registry;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn is_valid_metric_name(s: &str) -> bool {
    let mut ch = s.chars();
    match ch.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    ch.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// One parsed sample line: name, labels, value.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Parses a non-comment exposition line, asserting well-formedness
/// (label quoting and escaping included) along the way.
fn parse_sample(line: &str) -> Sample {
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0;
    let mut name = String::new();
    while i < chars.len() && chars[i] != '{' && chars[i] != ' ' {
        name.push(chars[i]);
        i += 1;
    }
    assert!(is_valid_metric_name(&name), "bad metric name in {line:?}");
    let mut labels = Vec::new();
    if i < chars.len() && chars[i] == '{' {
        i += 1;
        while chars[i] != '}' {
            let mut key = String::new();
            while chars[i] != '=' {
                key.push(chars[i]);
                i += 1;
            }
            assert!(is_valid_metric_name(&key), "bad label name in {line:?}");
            i += 1; // '='
            assert_eq!(chars[i], '"', "label value must be quoted: {line:?}");
            i += 1;
            let mut val = String::new();
            loop {
                match chars[i] {
                    '"' => break,
                    '\n' => panic!("raw newline in label value: {line:?}"),
                    '\\' => {
                        i += 1;
                        match chars[i] {
                            'n' => val.push('\n'),
                            c @ ('\\' | '"') => val.push(c),
                            c => panic!("invalid label escape \\{c} in {line:?}"),
                        }
                    }
                    c => val.push(c),
                }
                i += 1;
            }
            i += 1; // closing quote
            labels.push((key, val));
            if chars[i] == ',' {
                i += 1;
            }
        }
        i += 1; // '}'
    }
    let rest: String = chars[i..].iter().collect();
    let value = rest
        .trim()
        .parse::<f64>()
        .unwrap_or_else(|_| panic!("bad sample value in {line:?}"));
    Sample {
        name,
        labels,
        value,
    }
}

/// Validates a whole Prometheus text document and returns the samples.
fn validate_prometheus(text: &str) -> Vec<Sample> {
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut toks = rest.splitn(3, ' ');
            let kind = toks.next().unwrap_or("");
            assert!(
                kind == "HELP" || kind == "TYPE",
                "unknown comment kind in {line:?}"
            );
            let name = toks.next().unwrap_or("");
            assert!(is_valid_metric_name(name), "bad name in {line:?}");
            let tail = toks.next().unwrap_or("");
            if kind == "TYPE" {
                assert!(
                    ["counter", "gauge", "histogram"].contains(&tail),
                    "bad type in {line:?}"
                );
            } else {
                // HELP escaping: a backslash may only precede '\' or 'n'.
                let tcs: Vec<char> = tail.chars().collect();
                let mut j = 0;
                while j < tcs.len() {
                    if tcs[j] == '\\' {
                        assert!(
                            matches!(tcs.get(j + 1), Some('\\' | 'n')),
                            "invalid help escape in {line:?}"
                        );
                        j += 1;
                    }
                    j += 1;
                }
            }
            continue;
        }
        assert!(!line.starts_with('#'), "malformed comment {line:?}");
        samples.push(parse_sample(line));
    }

    // Histogram invariants: per series, le ascends, cumulative counts
    // never decrease, and the +Inf bucket equals _count.
    let mut buckets: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    for s in &samples {
        let le_label = s.labels.iter().find(|(k, _)| k == "le");
        // An arbitrary *counter* may legitimately be named `..._bucket`;
        // only le-labelled series are histogram buckets.
        if let (Some(base), Some((_, le))) = (s.name.strip_suffix("_bucket"), le_label) {
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse::<f64>().expect("numeric le")
            };
            buckets
                .entry(base.to_string())
                .or_default()
                .push((le, s.value));
        } else if let Some(base) = s.name.strip_suffix("_count") {
            counts.insert(base.to_string(), s.value);
        }
    }
    for (base, series) in &buckets {
        for w in series.windows(2) {
            assert!(w[0].0 < w[1].0, "{base}: le must ascend");
            assert!(
                w[0].1 <= w[1].1,
                "{base}: cumulative counts must not decrease"
            );
        }
        let (last_le, last_count) = *series.last().unwrap();
        assert_eq!(last_le, f64::INFINITY, "{base}: series must end at +Inf");
        assert_eq!(
            Some(&last_count),
            counts.get(base),
            "{base}: +Inf bucket must equal _count"
        );
    }
    samples
}

fn tiny_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<char>(), 0..10).prop_map(String::from_iter)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prometheus_text_is_valid_for_arbitrary_instruments(
        prefix in tiny_string(),
        counters in proptest::collection::vec((tiny_string(), any::<u32>()), 0..6),
        gauges in proptest::collection::vec((tiny_string(), any::<i32>()), 0..6),
        hists in proptest::collection::vec(
            (tiny_string(), proptest::collection::vec(any::<u64>(), 0..20)),
            0..4
        ),
    ) {
        let reg = Registry::new();
        for (name, v) in &counters {
            reg.counter(name).inc(u64::from(*v));
        }
        for (name, v) in &gauges {
            reg.gauge(name).set(i64::from(*v));
        }
        for (name, vals) in &hists {
            let h = reg.histogram(name);
            for &v in vals {
                h.record(v);
            }
        }
        let text = prometheus_text(&[(prefix.as_str(), &reg)]);
        let samples = validate_prometheus(&text);
        // The identity series must carry the original prefix, unmangled,
        // through label escaping.
        let up = samples
            .iter()
            .find(|s| s.name.ends_with("_up"))
            .expect("identity series present");
        prop_assert_eq!(&up.labels[0].1, &prefix);
    }

    #[test]
    fn metrics_json_round_trips_through_strict_parser(
        prefix in tiny_string(),
        counters in proptest::collection::vec((tiny_string(), any::<u32>()), 0..6),
        gauges in proptest::collection::vec((tiny_string(), any::<i32>()), 0..6),
        hist_vals in proptest::collection::vec(0u64..1_000_000, 0..20),
        hist_name in tiny_string(),
    ) {
        let reg = Registry::new();
        // Duplicate generated names accumulate in the registry; build the
        // expected view the same way.
        let mut want_counters: BTreeMap<&str, u64> = BTreeMap::new();
        for (name, v) in &counters {
            reg.counter(name).inc(u64::from(*v));
            *want_counters.entry(name).or_default() += u64::from(*v);
        }
        let mut want_gauges: BTreeMap<&str, i64> = BTreeMap::new();
        for (name, v) in &gauges {
            reg.gauge(name).set(i64::from(*v));
            want_gauges.insert(name, i64::from(*v));
        }
        let h = reg.histogram(&hist_name);
        for &v in &hist_vals {
            h.record(v);
        }

        let doc = metrics_json(&[(prefix.as_str(), &reg)]);
        let parsed = obsv::json::parse(&doc).expect("strict JSON must parse");
        let src = parsed
            .get("sources")
            .and_then(|s| s.get(&prefix))
            .expect("prefix key survives escaping");
        for (name, v) in &want_counters {
            let got = src
                .get("counters")
                .and_then(|c| c.get(name))
                .and_then(|n| n.as_num());
            prop_assert_eq!(got, Some(*v as f64), "counter {}", name);
        }
        for (name, v) in &want_gauges {
            let got = src
                .get("gauges")
                .and_then(|c| c.get(name))
                .and_then(|n| n.as_num());
            prop_assert_eq!(got, Some(*v as f64), "gauge {}", name);
        }
        let hist = src
            .get("histograms")
            .and_then(|hs| hs.get(&hist_name))
            .expect("histogram key");
        prop_assert_eq!(
            hist.get("count").and_then(|n| n.as_num()),
            Some(hist_vals.len() as f64)
        );
        prop_assert_eq!(
            hist.get("sum").and_then(|n| n.as_num()),
            Some(hist_vals.iter().sum::<u64>() as f64)
        );
    }
}
