//! Property tests for the log-linear histogram: quantiles reconstructed
//! from bucket counts must bracket the exact sorted percentiles within
//! the advertised `1/SUB_BUCKETS` relative error, for arbitrary value
//! streams.

use obsv::metrics::SUB_BUCKETS;
use obsv::Histogram;
use proptest::prelude::*;

/// Exact order statistic matching the histogram's rank convention:
/// smallest element whose rank reaches `ceil(q * n)`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn check_quantiles(values: Vec<u64>) {
    let h = Histogram::new();
    for &v in &values {
        h.record(v);
    }
    let mut sorted = values;
    sorted.sort_unstable();
    for q in [0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0] {
        let exact = exact_quantile(&sorted, q);
        let est = h.quantile(q);
        assert!(
            est >= exact,
            "q={q}: estimate {est} below exact {exact} (n={})",
            sorted.len()
        );
        // Bucket width at v is at most v / SUB_BUCKETS, so the bucket's
        // upper bound overshoots by at most that (+1 for the -1 edge).
        let bound = exact.saturating_add(exact / SUB_BUCKETS).saturating_add(1);
        assert!(
            est <= bound,
            "q={q}: estimate {est} above bound {bound} for exact {exact}"
        );
    }
    assert_eq!(h.count(), sorted.len() as u64);
    assert_eq!(h.summary().max, *sorted.last().unwrap());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn quantiles_bracket_exact_percentiles_small(
        values in proptest::collection::vec(0u64..10_000, 1..400)
    ) {
        check_quantiles(values);
    }

    #[test]
    fn quantiles_bracket_exact_percentiles_full_range(
        values in proptest::collection::vec(any::<u64>(), 1..200)
    ) {
        check_quantiles(values);
    }

    #[test]
    fn sum_and_count_are_exact(values in proptest::collection::vec(0u64..1_000_000, 0..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, values.len() as u64);
        assert_eq!(s.sum, values.iter().sum::<u64>());
    }
}

#[test]
fn concurrent_recording_loses_nothing() {
    let h = std::sync::Arc::new(Histogram::new());
    std::thread::scope(|s| {
        for t in 0..8 {
            let h = h.clone();
            s.spawn(move || {
                for i in 0..10_000u64 {
                    h.record(t * 10_000 + i);
                }
            });
        }
    });
    let sum: u64 = (0..80_000u64).sum();
    let s = h.summary();
    assert_eq!(s.count, 80_000);
    assert_eq!(s.sum, sum);
    assert_eq!(s.max, 79_999);
}
