//! Heap-accounting integration tests. These run in their own process
//! (integration-test binary) because enabling accounting is one-way and
//! process-global.

use obsv::alloc;
use std::sync::Mutex;

/// Serializes the tests: both measure global allocator totals and would
/// see each other's churn if the harness ran them on parallel threads.
static SERIAL: Mutex<()> = Mutex::new(());

#[test]
fn accounting_tracks_scoped_peaks() {
    let _lock = SERIAL.lock().unwrap();
    if !alloc::accounting_enabled() {
        assert_eq!(alloc::current_bytes(), 0, "disabled accounting stays at 0");
        let inert = alloc::scope();
        assert_eq!(inert.peak(), 0);
        drop(inert);
    }

    alloc::enable_accounting();
    assert!(alloc::accounting_enabled());

    const BIG: usize = 32 << 20; // far above the 1 MiB publish slack
    let outer = alloc::scope();
    let baseline = alloc::current_bytes();
    {
        let inner = alloc::scope();
        let buf = vec![7u8; BIG];
        let live = alloc::current_bytes();
        assert!(
            live >= BIG as u64,
            "a live {BIG}-byte buffer must be visible in the total (got {live})"
        );
        assert!(inner.peak() >= BIG as u64, "inner scope sees the peak");
        drop(buf);
        // The scope's recorded peak survives the free.
        assert!(inner.peak() >= BIG as u64);
    }
    // Freeing the buffer brings the live total back near the baseline.
    let after = alloc::current_bytes();
    assert!(
        after < baseline + BIG as u64,
        "freed buffer must leave the live total (baseline {baseline}, after {after})"
    );
    // The outer scope's peak covers the inner scope's burst.
    assert!(outer.peak() >= BIG as u64);
    assert!(alloc::peak_bytes() >= BIG as u64);

    // Gauges publish only while enabled.
    let reg = obsv::Registry::new();
    alloc::publish_gauges(&reg);
    let snap = reg.snapshot();
    assert!(snap.gauges["mem.peak_bytes"] >= BIG as i64);
    assert!(snap.gauges.contains_key("mem.current_bytes"));
}

#[test]
fn realloc_and_zeroed_paths_balance() {
    let _lock = SERIAL.lock().unwrap();
    alloc::enable_accounting();
    let before = alloc::current_bytes() as i64;
    {
        let mut v: Vec<u64> = Vec::with_capacity(1024);
        for i in 0..1_000_000u64 {
            v.push(i); // grows through realloc repeatedly
        }
        let z = vec![0u8; 4 << 20]; // alloc_zeroed path
        assert!(alloc::current_bytes() as i64 >= before + (4 << 20));
        drop(z);
    }
    let after = alloc::current_bytes() as i64;
    // Everything allocated in the block was freed; the counters must
    // return to (near) the starting point rather than drifting by the
    // reallocation churn (~8 MB of growth steps).
    assert!(
        (after - before).abs() < (1 << 20),
        "leak-free block must roughly balance: before {before}, after {after}"
    );
}
