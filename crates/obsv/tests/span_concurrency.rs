//! Span nesting and ordering under concurrent threads.
//!
//! This test toggles the process-global capture flag, so it lives in its
//! own integration-test binary (one process) rather than alongside the
//! crate's unit tests.

use std::collections::HashMap;

use obsv::{
    clear_events, current_span, disable_capture, drain_events, enable_capture, with_parent,
    SpanCtx, SpanEvent, SpanGuard,
};

fn by_name(events: &[SpanEvent]) -> HashMap<&str, &SpanEvent> {
    events.iter().map(|e| (e.name.as_str(), e)).collect()
}

/// `child` must start and end inside `parent`'s interval and link to it.
fn assert_nested(child: &SpanEvent, parent: &SpanEvent) {
    assert_eq!(
        child.parent, parent.id,
        "{} must be a child of {}",
        child.name, parent.name
    );
    assert!(
        child.start_ns >= parent.start_ns,
        "{} starts before {}",
        child.name,
        parent.name
    );
    assert!(
        child.start_ns + child.dur_ns <= parent.start_ns + parent.dur_ns,
        "{} ends after {}",
        child.name,
        parent.name
    );
}

#[test]
fn concurrent_spans_nest_and_order() {
    enable_capture();
    clear_events();

    // A root span on the main thread with two levels of nesting, plus
    // eight worker threads whose spans are re-parented under a phase via
    // the current_span / with_parent handoff.
    const WORKERS: usize = 8;
    const SPANS_PER_WORKER: usize = 50;
    {
        let root = SpanGuard::enter("pipeline", || "root".into());
        let phase = SpanGuard::enter("phase", || "fanout".into());
        assert_ne!(phase.ctx(), SpanCtx::NONE);
        assert_eq!(current_span(), phase.ctx());

        let ctx = current_span();
        std::thread::scope(|s| {
            for w in 0..WORKERS {
                s.spawn(move || {
                    with_parent(ctx, || {
                        for i in 0..SPANS_PER_WORKER {
                            let t = SpanGuard::enter("task", || format!("task-{w}-{i}"));
                            let _inner = SpanGuard::enter("task", || format!("inner-{w}-{i}"));
                            drop(_inner);
                            drop(t);
                        }
                    });
                    // The worker's stack must be fully restored.
                    assert_eq!(current_span(), SpanCtx::NONE);
                });
            }
        });

        drop(phase);
        // Popping the phase restores the root as current.
        assert_eq!(current_span(), root.ctx());
        drop(root);
        assert_eq!(current_span(), SpanCtx::NONE);
    }

    disable_capture();
    let events = drain_events();
    let expected = 2 + WORKERS * SPANS_PER_WORKER * 2;
    assert_eq!(events.len(), expected, "every span closed exactly once");

    // Ids are unique; seqs are unique; events come back sorted by start.
    let mut ids: Vec<u64> = events.iter().map(|e| e.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), expected);
    let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), expected);
    assert!(
        events.windows(2).all(|w| w[0].start_ns <= w[1].start_ns),
        "drain_events must sort by start time"
    );

    let named = by_name(&events);
    let root = named["root"];
    let phase = named["fanout"];
    assert_eq!(root.parent, 0, "root has no parent");
    assert_nested(phase, root);

    // Every task parents on the phase (cross-thread), every inner span on
    // its own task (same-thread nesting), with interval containment.
    let by_id: HashMap<u64, &SpanEvent> = events.iter().map(|e| (e.id, e)).collect();
    let mut tasks = 0;
    let mut inners = 0;
    for ev in &events {
        if let Some(rest) = ev.name.strip_prefix("task-") {
            tasks += 1;
            assert_nested(ev, phase);
            assert_ne!(ev.tid, root.tid, "task-{rest} ran on a worker thread");
        } else if ev.name.starts_with("inner-") {
            inners += 1;
            let parent = by_id[&ev.parent];
            assert!(parent.name.starts_with("task-"));
            assert_nested(ev, parent);
            assert_eq!(
                ev.name["inner-".len()..],
                parent.name["task-".len()..],
                "inner span must nest under its own task"
            );
            // Same-thread nesting closes child-before-parent.
            assert!(ev.seq < parent.seq, "child closes before its parent");
        }
    }
    assert_eq!(tasks, WORKERS * SPANS_PER_WORKER);
    assert_eq!(inners, WORKERS * SPANS_PER_WORKER);
}
