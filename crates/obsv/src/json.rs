//! A minimal recursive-descent JSON parser.
//!
//! The workspace's vendored `serde_json` is serialize-only (nothing in
//! the batch pipelines ever parses JSON back in), but the observability
//! layer must *validate its own output* — the chrome-trace golden tests
//! and trace smoke checks parse the exporter's documents with this
//! module. It accepts strict RFC 8259 JSON; numbers come back as `f64`,
//! which is exact for every integer the exporters emit below 2^53.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key-ordered).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (rejecting trailing garbage).
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u', "expected \\u after high surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control char in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // at char boundaries is safe).
                    let s = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(s)
                        .map_err(|_| self.err("invalid utf-8"))?
                        .chars()
                        .next()
                        .expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: "0" or [1-9][0-9]*.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].get("b").unwrap(),
            &Json::Str("c".into())
        );
        assert_eq!(v.get("d").unwrap(), &Json::Obj(BTreeMap::new()));
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(parse(r#""\u00e9""#).unwrap(), Json::Str("é".into()));
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Json::Str("😀".into()));
        assert_eq!(parse("\"π\"").unwrap(), Json::Str("π".into()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "01",
            "1.",
            "\"\\x\"",
            "nul",
            "1 2",
            "\"\\ud800\"",
            "[1,]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn round_trips_exporter_output() {
        // The escaping in export.rs must produce exactly what this parser
        // reads back.
        let ev = crate::tracer::SpanEvent {
            seq: 1,
            id: 2,
            parent: 0,
            tid: 3,
            cat: "job",
            name: "weird \"name\"\twith\nstuff\\".into(),
            start_ns: 1_500,
            dur_ns: 2_750,
        };
        let doc = parse(&crate::export::chrome_trace(std::slice::from_ref(&ev))).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("name").unwrap().as_str().unwrap(), ev.name);
        assert_eq!(events[0].get("ts").unwrap().as_num().unwrap(), 1.5);
        assert_eq!(events[0].get("dur").unwrap().as_num().unwrap(), 2.75);
    }
}
