//! Live metrics exposition over a tiny hand-rolled HTTP listener.
//!
//! An [`Exposition`] holds named registry sources (the `&'static`
//! process-global registry, per-server `Arc` registries) plus an
//! optional pre-scrape collector (e.g.
//! [`snapshot_pool_stats`](crate::snapshot_pool_stats)), and serves:
//!
//! * `GET /metrics` — Prometheus text format 0.0.4, with raw histogram
//!   buckets (`_bucket{le="..."}` series are cumulative and monotone by
//!   construction; the `+Inf` bucket always equals `_count`);
//! * `GET /metrics.json` — the same instruments as strict JSON, emitted
//!   by hand like every other document in this crate and parseable by
//!   [`crate::json`];
//! * `GET /healthz` — liveness probe;
//! * `GET /spans` — the recent span tree as indented text.
//!
//! The listener is deliberately minimal: blocking accept loop on one
//! background thread, one request per connection, `Connection: close`.
//! A scraper every few seconds costs nothing measurable; this is not a
//! general web server and does not try to be one.

use crate::metrics::Registry;
use crate::tracer::{drain_events, SpanEvent};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Most lines `/spans` will render before truncating.
const SPANS_MAX_LINES: usize = 4000;

/// A registry reference an exposition can hold: the process-global
/// registry is `&'static`, per-server registries are shared `Arc`s.
#[derive(Clone)]
pub enum RegistryRef {
    /// A process-lifetime registry (e.g. [`crate::global`]).
    Static(&'static Registry),
    /// A shared, reference-counted registry (e.g. a serve instance's).
    Shared(Arc<Registry>),
}

impl RegistryRef {
    fn get(&self) -> &Registry {
        match self {
            RegistryRef::Static(r) => r,
            RegistryRef::Shared(r) => r,
        }
    }
}

type Collector = Box<dyn Fn() + Send + Sync>;

/// Named registry sources plus an optional pre-scrape collector; build
/// one, then [`Exposition::serve`] it on a background thread.
#[derive(Default)]
pub struct Exposition {
    sources: Vec<(String, RegistryRef)>,
    collector: Option<Collector>,
}

impl Exposition {
    /// An exposition with no sources.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a registry under `prefix` (sanitized into the metric names).
    pub fn source(mut self, prefix: &str, reg: RegistryRef) -> Self {
        self.sources.push((prefix.to_string(), reg));
        self
    }

    /// Installs a hook run before each `/metrics` or `/metrics.json`
    /// render — the place to copy pull-style stats (pool counters, …)
    /// into the source registries.
    pub fn collector(mut self, f: impl Fn() + Send + Sync + 'static) -> Self {
        self.collector = Some(Box::new(f));
        self
    }

    fn collect(&self) {
        // Allocator gauges are always refreshed (no-op while accounting
        // is off); custom collectors stack on top.
        crate::alloc::publish_gauges(crate::metrics::global());
        if let Some(c) = &self.collector {
            c();
        }
    }

    /// Renders the Prometheus text document for the current sources.
    pub fn prometheus(&self) -> String {
        let srcs: Vec<(&str, &Registry)> = self
            .sources
            .iter()
            .map(|(p, r)| (p.as_str(), r.get()))
            .collect();
        prometheus_text(&srcs)
    }

    /// Renders the JSON document for the current sources.
    pub fn json(&self) -> String {
        let srcs: Vec<(&str, &Registry)> = self
            .sources
            .iter()
            .map(|(p, r)| (p.as_str(), r.get()))
            .collect();
        metrics_json(&srcs)
    }

    fn respond(&self, path: &str) -> Option<(&'static str, String)> {
        match path {
            "/metrics" => {
                self.collect();
                Some(("text/plain; version=0.0.4", self.prometheus()))
            }
            "/metrics.json" => {
                self.collect();
                Some(("application/json", self.json()))
            }
            "/healthz" => Some(("text/plain", "ok\n".to_string())),
            "/spans" => Some(("text/plain", spans_text(&drain_events()))),
            _ => None,
        }
    }

    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves the endpoints on a
    /// background thread until the returned handle shuts down or drops.
    pub fn serve(self, addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("obsv-expose".into())
            .spawn(move || accept_loop(listener, self, stop2))?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }
}

/// Handle to a running exposition listener; shuts down on drop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the listener thread (idempotent).
    pub fn shutdown(&mut self) {
        if let Some(h) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, exp: Exposition, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            return;
        }
        if let Ok(stream) = conn {
            let _ = handle_conn(stream, &exp);
        }
    }
}

fn handle_conn(mut stream: TcpStream, exp: &Exposition) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 1024];
    let mut req = Vec::new();
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        req.extend_from_slice(&buf[..n]);
        if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > 8192 {
            break;
        }
    }
    let text = String::from_utf8_lossy(&req);
    let mut parts = text.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, ctype, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".to_string(),
        )
    } else {
        match exp.respond(path) {
            Some((ct, b)) => ("200 OK", ct, b),
            None => ("404 Not Found", "text/plain", "not found\n".to_string()),
        }
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

// ---------------------------------------------------------------------------
// Prometheus text rendering
// ---------------------------------------------------------------------------

/// Rewrites `s` into a legal Prometheus metric-name fragment: characters
/// outside `[a-zA-Z0-9_:]` become `_`, a leading digit is prefixed, and
/// the empty string becomes `_`.
pub fn sanitize_metric_name(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 1);
    for c in s.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    } else if out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

/// Escapes a `# HELP` text: backslash and newline.
pub fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, double quote, and newline.
pub fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Claims a unique family name for `raw` under `prefix`: sanitization
/// can collapse distinct registry names ("a.b" and "a_b") onto one
/// Prometheus name, which would interleave duplicate series, so
/// collisions get a numeric suffix.
fn unique_family(used: &mut std::collections::HashSet<String>, prefix: &str, raw: &str) -> String {
    let base = format!("{prefix}_{}", sanitize_metric_name(raw));
    let mut name = base.clone();
    let mut k = 2;
    while !used.insert(name.clone()) {
        name = format!("{base}_{k}");
        k += 1;
    }
    name
}

/// Renders `(prefix, registry)` sources as one Prometheus text document.
/// Exposed (rather than buried in the listener) so tests can property-
/// check the grammar directly.
pub fn prometheus_text(sources: &[(&str, &Registry)]) -> String {
    let mut out = String::new();
    for (prefix, reg) in sources {
        let p = sanitize_metric_name(prefix);
        let mut used = std::collections::HashSet::new();
        used.insert(format!("{p}_up"));
        // Identity series carrying the original (escaped) source name.
        let _ = writeln!(
            out,
            "# HELP {p}_up source {} is exported",
            escape_help(prefix)
        );
        let _ = writeln!(out, "# TYPE {p}_up gauge");
        let _ = writeln!(out, "{p}_up{{source=\"{}\"}} 1", escape_label(prefix));
        let snap = reg.snapshot();
        for (name, v) in &snap.counters {
            let n = unique_family(&mut used, &p, name);
            let _ = writeln!(out, "# HELP {n} counter {}", escape_help(name));
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, v) in &snap.gauges {
            let n = unique_family(&mut used, &p, name);
            let _ = writeln!(out, "# HELP {n} gauge {}", escape_help(name));
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, h) in reg.histogram_handles() {
            let n = unique_family(&mut used, &p, &name);
            let _ = writeln!(out, "# HELP {n} histogram {}", escape_help(&name));
            let _ = writeln!(out, "# TYPE {n} histogram");
            // One pass supplies buckets *and* the total, so `+Inf` always
            // equals `_count` even while writers race the render.
            let cum = h.cumulative_buckets();
            let total = cum.last().map_or(0, |&(_, c)| c);
            for (hi, c) in &cum {
                if *hi != u64::MAX {
                    let _ = writeln!(out, "{n}_bucket{{le=\"{hi}\"}} {c}");
                }
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {total}");
            let _ = writeln!(out, "{n}_sum {}", h.sum());
            let _ = writeln!(out, "{n}_count {total}");
        }
    }
    out
}

/// Renders `(prefix, registry)` sources as one strict-JSON document
/// (validated round-trip through [`crate::json`] in tests).
pub fn metrics_json(sources: &[(&str, &Registry)]) -> String {
    let mut out = String::from("{\"sources\":{");
    for (i, (prefix, reg)) in sources.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        crate::export::escape_into(&mut out, prefix);
        out.push_str("\":{\"counters\":{");
        let snap = reg.snapshot();
        for (j, (name, v)) in snap.counters.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('"');
            crate::export::escape_into(&mut out, name);
            let _ = write!(out, "\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (j, (name, v)) in snap.gauges.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('"');
            crate::export::escape_into(&mut out, name);
            let _ = write!(out, "\":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (j, (name, s)) in snap.histograms.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('"');
            crate::export::escape_into(&mut out, name);
            let _ = write!(
                out,
                "\":{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                s.count, s.sum, s.mean, s.p50, s.p95, s.p99, s.max
            );
        }
        out.push_str("}}");
    }
    out.push_str("}}");
    out
}

// ---------------------------------------------------------------------------
// Span tree rendering
// ---------------------------------------------------------------------------

/// Renders buffered span events as an indented tree, most-recent state
/// first by start time, truncated at [`SPANS_MAX_LINES`] lines.
pub fn spans_text(events: &[SpanEvent]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} spans buffered", events.len());
    let idx: HashMap<u64, usize> = events.iter().enumerate().map(|(i, e)| (e.id, i)).collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); events.len()];
    let mut roots = Vec::new();
    for (i, e) in events.iter().enumerate() {
        match idx.get(&e.parent) {
            Some(&p) if e.parent != 0 && e.parent != e.id => children[p].push(i),
            _ => roots.push(i),
        }
    }
    let mut lines = 0usize;
    // Depth-first, explicit stack; children were pushed in start order.
    let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 0)).collect();
    while let Some((i, depth)) = stack.pop() {
        if lines >= SPANS_MAX_LINES {
            let _ = writeln!(out, "... truncated at {SPANS_MAX_LINES} lines");
            break;
        }
        let e = &events[i];
        let _ = writeln!(
            out,
            "{:indent$}{} [{}] {:.3}ms @t{}",
            "",
            e.name,
            e.cat,
            e.dur_ns as f64 / 1e6,
            e.tid,
            indent = depth * 2
        );
        lines += 1;
        for &c in children[i].iter().rev() {
            stack.push((c, depth + 1));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizer_produces_legal_names() {
        assert_eq!(
            sanitize_metric_name("pool.worker_0.chunks"),
            "pool_worker_0_chunks"
        );
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(sanitize_metric_name("a:b_c1"), "a:b_c1");
    }

    #[test]
    fn escapes() {
        assert_eq!(escape_help("a\\b\nc"), "a\\\\b\\nc");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn prometheus_text_histogram_invariants() {
        let r = Registry::new();
        r.counter("reqs.total").inc(7);
        r.gauge("depth").set(-3);
        let h = r.histogram("lat.ns");
        for v in [1u64, 5, 5, 900, 1_000_000] {
            h.record(v);
        }
        let text = prometheus_text(&[("serve", &r)]);
        assert!(text.contains("serve_reqs_total 7"));
        assert!(text.contains("serve_depth -3"));
        assert!(text.contains("serve_lat_ns_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("serve_lat_ns_count 5"));
        assert!(text.contains("serve_lat_ns_sum 1000911"));
        // every bucket line's le and count ascend
        let mut last: Option<(u64, u64)> = None;
        for line in text
            .lines()
            .filter(|l| l.contains("_bucket{le=\"") && !l.contains("+Inf"))
        {
            let le: u64 = line
                .split("le=\"")
                .nth(1)
                .unwrap()
                .split('"')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            let c: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            if let Some((ple, pc)) = last {
                assert!(le > ple && c >= pc);
            }
            last = Some((le, c));
        }
        assert!(last.is_some());
    }

    #[test]
    fn metrics_json_parses_strictly() {
        let r = Registry::new();
        r.counter("a\"quoted\"").inc(1);
        r.histogram("h").record(12);
        let doc = metrics_json(&[("x\\y", &r)]);
        let v = crate::json::parse(&doc).expect("strict json");
        let h = v
            .get("sources")
            .and_then(|s| s.get("x\\y"))
            .and_then(|s| s.get("histograms"))
            .and_then(|s| s.get("h"))
            .expect("histogram present");
        assert_eq!(h.get("count").and_then(|n| n.as_num()), Some(1.0));
    }

    #[test]
    fn spans_tree_indents_children() {
        let ev = |id, parent, name: &str, start| SpanEvent {
            seq: id,
            id,
            parent,
            tid: 0,
            cat: "t",
            name: name.into(),
            start_ns: start,
            dur_ns: 10,
        };
        let text = spans_text(&[
            ev(1, 0, "root", 0),
            ev(2, 1, "kid", 1),
            ev(3, 99, "orphan", 2),
        ]);
        assert!(text.contains("root [t]"));
        assert!(text.contains("  kid [t]"));
        assert!(text.contains("orphan [t]"), "missing parents become roots");
    }

    #[test]
    fn http_listener_serves_all_endpoints() {
        let exp = Exposition::new().source("t", RegistryRef::Static(crate::metrics::global()));
        crate::metrics::global().counter("expose.test.hits").inc(3);
        let mut srv = exp.serve("127.0.0.1:0").expect("bind");
        let get = |path: &str| -> String {
            let mut s = TcpStream::connect(srv.addr()).unwrap();
            write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut body = String::new();
            s.read_to_string(&mut body).unwrap();
            body
        };
        assert!(get("/healthz").contains("200 OK"));
        let m = get("/metrics");
        assert!(m.contains("200 OK") && m.contains("t_expose_test_hits 3"));
        let j = get("/metrics.json");
        let json_body = j.split("\r\n\r\n").nth(1).unwrap();
        assert!(crate::json::parse(json_body).is_ok());
        assert!(get("/spans").contains("spans buffered"));
        assert!(get("/nope").contains("404"));
        srv.shutdown();
    }
}
