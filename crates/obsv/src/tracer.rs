//! Hierarchical spans over a lock-sharded in-memory ring buffer.
//!
//! A span is a named interval on one thread with a parent link; together
//! they form the trace tree of a run (pipeline → job → phase → task).
//! Capture is off by default and costs **one atomic load per span** while
//! disabled: [`SpanGuard::enter`] checks the flag before touching the
//! clock, the name closure, or any shared state.
//!
//! Parent propagation is thread-local. Work handed to pool threads does
//! not inherit the submitting thread's span stack automatically; the
//! submitter captures [`current_span`] and the task closure re-installs
//! it with [`with_parent`], so task spans nest under the phase that
//! spawned them even though they run elsewhere.
//!
//! Completed spans are recorded at *close* time as one event carrying
//! `(start, duration)` — the chrome-tracing "X" (complete) shape — into
//! one of [`SHARDS`] ring buffers selected by thread, so concurrent
//! closers contend only rarely. Each ring overwrites its oldest events
//! when full; a trace of a long run keeps the most recent
//! `SHARDS * RING_CAP` spans.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Number of independent ring buffers (and the fan-out of close-time
/// contention).
const SHARDS: usize = 16;
/// Events kept per shard before the oldest are overwritten.
const RING_CAP: usize = 8192;

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Close-order sequence number (monotone across threads).
    pub seq: u64,
    /// Unique span id (> 0).
    pub id: u64,
    /// Parent span id; 0 for roots.
    pub parent: u64,
    /// Small dense id of the recording thread.
    pub tid: u64,
    /// Span category: `"pipeline"`, `"job"`, `"phase"`, `"task"`, ….
    pub cat: &'static str,
    /// Human-readable span name.
    pub name: String,
    /// Start time, nanoseconds since the capture epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// A parent handle capturable on one thread and installable on another
/// (see [`with_parent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanCtx(u64);

impl SpanCtx {
    /// The "no parent" context.
    pub const NONE: SpanCtx = SpanCtx(0);

    /// The raw span id, for transport through layers that cannot carry a
    /// `SpanCtx` (the executor's opaque chunk tags). 0 means "no parent".
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a context from a [`SpanCtx::raw`] value.
    pub fn from_raw(v: u64) -> SpanCtx {
        SpanCtx(v)
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

struct Ring {
    buf: Vec<SpanEvent>,
    /// Next write position once `buf` has reached `RING_CAP`.
    head: usize,
}

impl Ring {
    const fn new() -> Self {
        Ring {
            buf: Vec::new(),
            head: 0,
        }
    }

    fn push(&mut self, ev: SpanEvent) {
        if self.buf.len() < RING_CAP {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % RING_CAP;
        }
    }
}

static RINGS: [Mutex<Ring>; SHARDS] = [const { Mutex::new(Ring::new()) }; SHARDS];

thread_local! {
    /// Id of the innermost open span on this thread (0 = none).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    /// Small dense thread id, assigned on first span close.
    static TID: Cell<u64> = const { Cell::new(u64::MAX) };
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn thread_id() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != u64::MAX {
            return v;
        }
        let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

/// Whether span capture is currently on.
#[inline]
pub fn capture_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span capture on (idempotent). Pins the epoch on first call.
pub fn enable_capture() {
    epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns span capture off. Already-open spans on other threads record on
/// close only if capture is re-enabled before they finish.
pub fn disable_capture() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Discards all buffered events.
pub fn clear_events() {
    for ring in &RINGS {
        let mut r = ring.lock().unwrap();
        r.buf.clear();
        r.head = 0;
    }
}

/// Snapshots every buffered event, ordered by `(start_ns, seq)`.
pub fn drain_events() -> Vec<SpanEvent> {
    let mut out = Vec::new();
    for ring in &RINGS {
        out.extend(ring.lock().unwrap().buf.iter().cloned());
    }
    out.sort_by_key(|e| (e.start_ns, e.seq));
    out
}

/// The innermost open span of the calling thread, as a transferable
/// parent handle.
#[inline]
pub fn current_span() -> SpanCtx {
    if !capture_enabled() {
        return SpanCtx::NONE;
    }
    SpanCtx(CURRENT.with(Cell::get))
}

/// Runs `f` with `ctx` installed as the thread's current span, restoring
/// the previous one afterwards. This is how spans cross thread-pool
/// boundaries: capture [`current_span`] before submitting, wrap the task
/// body in `with_parent`.
pub fn with_parent<R>(ctx: SpanCtx, f: impl FnOnce() -> R) -> R {
    if !capture_enabled() {
        return f();
    }
    let prev = CURRENT.with(|c| c.replace(ctx.0));
    // Restore on unwind too, so a panicking task doesn't corrupt the
    // worker thread's span stack for the next job.
    struct Restore(u64);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// RAII guard for one open span; records the event and restores the
/// parent when dropped (including on unwind, so panicking spans still
/// close).
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

struct OpenSpan {
    id: u64,
    parent: u64,
    cat: &'static str,
    name: String,
    start: Instant,
}

impl SpanGuard {
    /// Opens a span. When capture is disabled this is a single atomic
    /// load; `name` is never invoked.
    #[inline]
    pub fn enter(cat: &'static str, name: impl FnOnce() -> String) -> SpanGuard {
        if !capture_enabled() {
            return SpanGuard { open: None };
        }
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let parent = CURRENT.with(|c| c.replace(id));
        SpanGuard {
            open: Some(OpenSpan {
                id,
                parent,
                cat,
                name: name(),
                start: Instant::now(),
            }),
        }
    }

    /// The guard's context, for parenting work on other threads.
    pub fn ctx(&self) -> SpanCtx {
        self.open.as_ref().map_or(SpanCtx::NONE, |o| SpanCtx(o.id))
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else { return };
        let dur = open.start.elapsed();
        CURRENT.with(|c| c.set(open.parent));
        record(open, dur);
    }
}

fn record(open: OpenSpan, dur: Duration) {
    let tid = thread_id();
    let ev = SpanEvent {
        seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
        id: open.id,
        parent: open.parent,
        tid,
        cat: open.cat,
        name: open.name,
        start_ns: open.start.duration_since(epoch()).as_nanos() as u64,
        dur_ns: dur.as_nanos() as u64,
    };
    RINGS[tid as usize % SHARDS].lock().unwrap().push(ev);
}

/// Records an externally-timed span that closed "now": the start is
/// back-dated by `dur_ns` and the event is parented under `parent`
/// directly, bypassing the thread-local stack. Used by the executor's
/// chunk observer, which measures chunk run time itself and learns its
/// logical parent from the submit-time tag. No-op (and `name` is never
/// invoked) while capture is off.
pub fn record_external(
    cat: &'static str,
    name: impl FnOnce() -> String,
    parent: SpanCtx,
    dur_ns: u64,
) {
    if !capture_enabled() {
        return;
    }
    let now_ns = epoch().elapsed().as_nanos() as u64;
    let tid = thread_id();
    let ev = SpanEvent {
        seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
        id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
        parent: parent.0,
        tid,
        cat,
        name: name(),
        start_ns: now_ns.saturating_sub(dur_ns),
        dur_ns,
    };
    RINGS[tid as usize % SHARDS].lock().unwrap().push(ev);
}

/// Times `f` unconditionally and records a span for it when capture is
/// on, returning the result and the measured duration.
///
/// This is the bridge between tracing and always-on metrics: phase
/// durations (e.g. the mapreduce engine's `map_time`) are *derived from
/// the span layer's measurement* instead of a second clock, but remain
/// available with capture off. Costs two clock reads when disabled.
pub fn timed_span<R>(
    cat: &'static str,
    name: impl FnOnce() -> String,
    f: impl FnOnce() -> R,
) -> (R, Duration) {
    if !capture_enabled() {
        let start = Instant::now();
        let r = f();
        return (r, start.elapsed());
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT.with(|c| c.replace(id));
    let open = OpenSpan {
        id,
        parent,
        cat,
        name: name(),
        start: Instant::now(),
    };
    // Close the span even if `f` unwinds.
    struct Closer(Option<OpenSpan>);
    impl Drop for Closer {
        fn drop(&mut self) {
            if let Some(open) = self.0.take() {
                let dur = open.start.elapsed();
                CURRENT.with(|c| c.set(open.parent));
                record(open, dur);
            }
        }
    }
    let mut closer = Closer(Some(open));
    let r = f();
    let open = closer.0.take().expect("span still open");
    let dur = open.start.elapsed();
    CURRENT.with(|c| c.set(open.parent));
    record(open, dur);
    (r, dur)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Capture-toggling tests live in the crate's integration-test
    // binaries (one process each); in-process unit tests here only cover
    // state that is safe under the disabled default.

    #[test]
    fn disabled_guard_is_inert() {
        assert!(!capture_enabled());
        let g = SpanGuard::enter("test", || unreachable!("name must stay lazy"));
        assert_eq!(g.ctx(), SpanCtx::NONE);
        assert_eq!(current_span(), SpanCtx::NONE);
    }

    #[test]
    fn disabled_timed_span_still_times() {
        let ((), d) = timed_span(
            "test",
            || unreachable!("name must stay lazy"),
            || std::thread::sleep(Duration::from_millis(2)),
        );
        assert!(d >= Duration::from_millis(2));
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut r = Ring::new();
        for i in 0..(RING_CAP + 10) as u64 {
            r.push(SpanEvent {
                seq: i,
                id: i + 1,
                parent: 0,
                tid: 0,
                cat: "t",
                name: String::new(),
                start_ns: i,
                dur_ns: 1,
            });
        }
        assert_eq!(r.buf.len(), RING_CAP);
        let min_seq = r.buf.iter().map(|e| e.seq).min().unwrap();
        assert_eq!(min_seq, 10, "the 10 oldest events were overwritten");
    }
}
