//! # obsv — end-to-end tracing and metrics for the LSH-DDP workspace
//!
//! Hand-rolled (vendor-style, like every dependency in this repo), three
//! pieces:
//!
//! 1. **Spans** ([`tracer`]) — hierarchical `(pipeline → job → phase →
//!    task)` intervals recorded into a lock-sharded in-memory ring
//!    buffer. Capture is globally toggled; while off, opening a span
//!    costs one atomic load and nothing else.
//! 2. **Metrics** ([`metrics`]) — a registry of named counters, gauges,
//!    and log-linear-bucket histograms exposing p50/p95/p99/max with a
//!    bounded 1/16 relative error.
//! 3. **Exporters** ([`export`]) — a `chrome://tracing`-compatible
//!    `trace.json` timeline, a JSONL event log, and a human text report;
//!    plus a [`json`] parser so tests (and smoke checks) can validate
//!    the emitted documents.
//! 4. **Live telemetry** — heap accounting via an instrumenting global
//!    allocator ([`alloc`]), an HTTP exposition endpoint serving
//!    Prometheus text and strict JSON ([`expose`]), multi-window SLO
//!    burn-rate monitoring ([`slo`]), and folded-stack stage profiles
//!    ([`profile`]).
//!
//! ## Usage
//!
//! ```
//! // A leaf span via the macro (guard form):
//! {
//!     let _s = obsv::span!("job", "wordcount");
//!     // ... work ...
//! }
//!
//! // Block form:
//! let out = obsv::span!("phase", "map" => {
//!     21 * 2
//! });
//! assert_eq!(out, 42);
//!
//! // Phase timing that also feeds always-on metrics:
//! let (result, dur) = obsv::timed_span("phase", || "reduce".into(), || 7);
//! assert_eq!(result, 7);
//! assert!(dur.as_nanos() < 1_000_000_000);
//!
//! // Metrics:
//! let reg = obsv::Registry::new();
//! reg.counter("hits").inc(1);
//! reg.histogram("latency_ns").record(1234);
//! assert_eq!(reg.snapshot().counters["hits"], 1);
//! ```
//!
//! Spans crossing the thread pool: capture [`current_span`] on the
//! submitting thread and wrap the task body in [`with_parent`] — see the
//! mapreduce engine's task spans for the pattern.

pub mod alloc;
pub mod export;
pub mod expose;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod slo;
pub mod tracer;

mod executor;

pub use executor::{install_executor_metrics, snapshot_pool_stats};
pub use expose::{Exposition, MetricsServer, RegistryRef};
pub use metrics::{global, Counter, Gauge, Histogram, HistogramSummary, Registry};
pub use slo::{SloConfig, SloMonitor, SloVerdict};
pub use tracer::{
    capture_enabled, clear_events, current_span, disable_capture, drain_events, enable_capture,
    record_external, timed_span, with_parent, SpanCtx, SpanEvent, SpanGuard,
};

/// Opens a span in category `$cat` named `$name`.
///
/// Guard form — `let _g = span!("job", name);` — keeps the span open
/// until `_g` drops. Block form — `span!("job", name => { ... })` —
/// scopes it around the block and yields the block's value. The name
/// expression is evaluated lazily, only when capture is enabled.
#[macro_export]
macro_rules! span {
    ($cat:expr, $name:expr => $body:block) => {{
        let _obsv_span_guard = $crate::tracer::SpanGuard::enter($cat, || ($name).into());
        $body
    }};
    ($cat:expr, $name:expr) => {
        $crate::tracer::SpanGuard::enter($cat, || ($name).into())
    };
}
