//! Glue wiring the work-stealing executor's chunk observer into a
//! metrics [`Registry`](crate::metrics::Registry).

use crate::metrics::Registry;

/// Installs a chunk observer on the global executor pool that records,
/// into `reg`:
///
/// * `executor.chunk_run_ns` — histogram of per-chunk run times;
/// * `executor.chunks_stolen` — chunks claimed by parked pool workers;
/// * `executor.chunks_local` — chunks run by the submitting thread.
///
/// The observer is process-global and installs at most once; returns
/// `false` if one was already present. Until installed, the executor
/// never reads the clock per chunk — pair this with
/// [`enable_capture`](crate::tracer::enable_capture) behind the same
/// `--trace`/`LSHDDP_TRACE` switch.
pub fn install_executor_metrics(reg: &'static Registry) -> bool {
    let hist = reg.histogram("executor.chunk_run_ns");
    let stolen = reg.counter("executor.chunks_stolen");
    let local = reg.counter("executor.chunks_local");
    rayon::set_chunk_observer(Box::new(move |dur_ns, was_stolen| {
        hist.record(dur_ns);
        if was_stolen {
            stolen.inc(1);
        } else {
            local.inc(1);
        }
    }))
}

/// Copies the executor's always-on pool statistics (thread count, jobs,
/// chunks run, steal counts, per-worker chunk totals) into gauges and
/// counters of `reg` under the `pool.` prefix.
pub fn snapshot_pool_stats(reg: &Registry) {
    let s = rayon::pool_stats();
    reg.gauge("pool.threads").set(s.threads as i64);
    reg.gauge("pool.jobs_submitted")
        .set(s.jobs_submitted as i64);
    reg.gauge("pool.chunks_run").set(s.chunks_run as i64);
    reg.gauge("pool.chunks_stolen").set(s.chunks_stolen as i64);
    for (i, n) in s.per_worker_chunks.iter().enumerate() {
        reg.gauge(&format!("pool.worker_{i}.chunks")).set(*n as i64);
    }
}
