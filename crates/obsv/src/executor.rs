//! Glue wiring the work-stealing executor's chunk observer into a
//! metrics [`Registry`](crate::metrics::Registry).

use crate::metrics::{Gauge, Registry};
use crate::tracer::{self, SpanCtx};
use std::sync::{Arc, OnceLock};

/// Installs a chunk observer on the global executor pool that records,
/// into `reg`:
///
/// * `executor.chunk_run_ns` — histogram of per-chunk run times;
/// * `executor.chunks_stolen` — chunks claimed by parked pool workers;
/// * `executor.chunks_local` — chunks run by the submitting thread.
///
/// It also installs the executor's chunk-tag provider so that, while
/// span capture is on, every chunk is recorded as a `chunk` span
/// parented under whatever span the *submitting* thread had open —
/// which is how the stage profiler attributes executor time to plan
/// stages (see [`crate::profile`]).
///
/// The observer is process-global and installs at most once; returns
/// `false` if one was already present. Until installed, the executor
/// never reads the clock per chunk — pair this with
/// [`enable_capture`](crate::tracer::enable_capture) behind the same
/// `--trace`/`LSHDDP_TRACE` switch.
pub fn install_executor_metrics(reg: &'static Registry) -> bool {
    let hist = reg.histogram("executor.chunk_run_ns");
    let stolen = reg.counter("executor.chunks_stolen");
    let local = reg.counter("executor.chunks_local");
    rayon::set_chunk_tag_provider(|| tracer::current_span().raw());
    rayon::set_chunk_observer(Box::new(move |dur_ns, was_stolen, tag| {
        hist.record(dur_ns);
        if was_stolen {
            stolen.inc(1);
        } else {
            local.inc(1);
        }
        tracer::record_external(
            "chunk",
            || (if was_stolen { "stolen" } else { "local" }).to_string(),
            SpanCtx::from_raw(tag),
            dur_ns,
        );
    }))
}

/// Pre-resolved gauge handles for [`snapshot_pool_stats`] on the global
/// registry: per-worker gauge names are formatted exactly once for the
/// pool's lifetime instead of re-`format!`ing on every export.
struct PoolGauges {
    threads: Arc<Gauge>,
    jobs_submitted: Arc<Gauge>,
    chunks_run: Arc<Gauge>,
    chunks_stolen: Arc<Gauge>,
    per_worker: Vec<Arc<Gauge>>,
}

static GLOBAL_POOL_GAUGES: OnceLock<PoolGauges> = OnceLock::new();

fn intern_pool_gauges(reg: &Registry, workers: usize) -> PoolGauges {
    PoolGauges {
        threads: reg.gauge("pool.threads"),
        jobs_submitted: reg.gauge("pool.jobs_submitted"),
        chunks_run: reg.gauge("pool.chunks_run"),
        chunks_stolen: reg.gauge("pool.chunks_stolen"),
        per_worker: (0..workers)
            .map(|i| reg.gauge(&format!("pool.worker_{i}.chunks")))
            .collect(),
    }
}

fn write_pool_stats(g: &PoolGauges, s: &rayon::PoolStats) {
    g.threads.set(s.threads as i64);
    g.jobs_submitted.set(s.jobs_submitted as i64);
    g.chunks_run.set(s.chunks_run as i64);
    g.chunks_stolen.set(s.chunks_stolen as i64);
    for (g, n) in g.per_worker.iter().zip(&s.per_worker_chunks) {
        g.set(*n as i64);
    }
}

/// Copies the executor's always-on pool statistics (thread count, jobs,
/// chunks run, steal counts, per-worker chunk totals) into gauges and
/// counters of `reg` under the `pool.` prefix.
///
/// For the process-global registry — the one live exposition scrapes
/// repeatedly — the gauge handles (including the formatted per-worker
/// names) are interned on first use, which is safe because both the
/// registry and the pool's worker count live for the whole process.
/// Other registries resolve by name per call, as before.
pub fn snapshot_pool_stats(reg: &Registry) {
    let s = rayon::pool_stats();
    if std::ptr::eq(reg, crate::metrics::global()) {
        let g =
            GLOBAL_POOL_GAUGES.get_or_init(|| intern_pool_gauges(reg, s.per_worker_chunks.len()));
        write_pool_stats(g, &s);
        return;
    }
    let g = intern_pool_gauges(reg, s.per_worker_chunks.len());
    write_pool_stats(&g, &s);
}
