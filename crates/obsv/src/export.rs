//! Exporters: `chrome://tracing` timeline JSON, JSONL event logs, and a
//! human-readable text report.
//!
//! The chrome format uses "X" (complete) events — one object per span
//! carrying `ts` + `dur` in microseconds — which `chrome://tracing` and
//! <https://ui.perfetto.dev> load directly; no begin/end pairing is
//! needed. All JSON is emitted by hand (the workspace's vendored
//! `serde_json` is serialize-only and this crate sits below it anyway).

use crate::metrics::RegistrySnapshot;
use crate::tracer::SpanEvent;
use std::fmt::Write as _;

/// Escapes `s` into `out` as a JSON string body (no surrounding quotes).
pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn span_object(out: &mut String, e: &SpanEvent) {
    out.push_str("{\"name\":\"");
    escape_into(out, &e.name);
    out.push_str("\",\"cat\":\"");
    escape_into(out, e.cat);
    let _ = write!(
        out,
        "\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":1,\"tid\":{},\
         \"args\":{{\"id\":{},\"parent\":{}}}}}",
        e.start_ns / 1_000,
        e.start_ns % 1_000,
        e.dur_ns / 1_000,
        e.dur_ns % 1_000,
        e.tid,
        e.id,
        e.parent,
    );
}

/// Renders events as a chrome-tracing `trace.json` document.
pub fn chrome_trace(events: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 128 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        span_object(&mut out, e);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Renders events as JSONL: one span object per line, append-friendly.
pub fn jsonl(events: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 128);
    for e in events {
        let _ = write!(
            out,
            "{{\"seq\":{},\"id\":{},\"parent\":{},\"tid\":{},\"cat\":\"",
            e.seq, e.id, e.parent, e.tid
        );
        escape_into(&mut out, e.cat);
        out.push_str("\",\"name\":\"");
        escape_into(&mut out, &e.name);
        let _ = writeln!(
            out,
            "\",\"start_ns\":{},\"dur_ns\":{}}}",
            e.start_ns, e.dur_ns
        );
    }
    out
}

/// Writes `events` to `path`, picking the format by extension: `.jsonl`
/// gets the line-oriented log, everything else the chrome timeline.
pub fn write_trace(path: &str, events: &[SpanEvent]) -> std::io::Result<()> {
    let body = if path.ends_with(".jsonl") {
        jsonl(events)
    } else {
        chrome_trace(events)
    };
    std::fs::write(path, body)
}

/// Renders a registry snapshot as an aligned human-readable report.
pub fn text_report(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "  {name:<32} {v:>14}");
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "  {name:<32} {v:>14}");
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("histograms:\n");
        let _ = writeln!(
            out,
            "  {:<32} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "name", "count", "mean", "p50", "p95", "p99", "max"
        );
        for (name, s) in &snap.histograms {
            let _ = writeln!(
                out,
                "  {:<32} {:>10} {:>12.1} {:>12} {:>12} {:>12} {:>12}",
                name, s.count, s.mean, s.p50, s.p95, s.p99, s.max
            );
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str) -> SpanEvent {
        SpanEvent {
            seq: 0,
            id: 1,
            parent: 0,
            tid: 0,
            cat: "job",
            name: name.to_string(),
            start_ns: 1_234_567,
            dur_ns: 89_000,
        }
    }

    #[test]
    fn chrome_trace_contains_complete_events() {
        let t = chrome_trace(&[ev("alpha"), ev("beta")]);
        assert!(t.starts_with("{\"traceEvents\":["));
        assert!(t.contains("\"ph\":\"X\""));
        assert!(t.contains("\"ts\":1234.567"));
        assert!(t.contains("\"dur\":89.000"));
        assert!(t.contains("\"name\":\"alpha\""));
    }

    #[test]
    fn strings_are_escaped() {
        let t = chrome_trace(&[ev("a\"b\\c\nd")]);
        assert!(t.contains(r#"a\"b\\c\nd"#));
    }

    #[test]
    fn jsonl_is_one_line_per_event() {
        let t = jsonl(&[ev("a"), ev("b")]);
        assert_eq!(t.lines().count(), 2);
        assert!(t.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn text_report_lists_everything() {
        let r = crate::metrics::Registry::new();
        r.counter("hits").inc(3);
        r.gauge("depth").set(-2);
        r.histogram("lat_ns").record(100);
        let report = text_report(&r.snapshot());
        assert!(report.contains("hits"));
        assert!(report.contains("depth"));
        assert!(report.contains("lat_ns"));
        assert!(text_report(&Default::default()).contains("no metrics"));
    }
}
