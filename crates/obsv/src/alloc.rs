//! Memory accounting via an instrumenting `#[global_allocator]`.
//!
//! The wrapper delegates every call to [`std::alloc::System`] (the
//! default allocator, so behavior is unchanged) and, when accounting is
//! enabled, maintains the process's live heap byte count in [`SHARDS`]
//! cache-padded atomic shards selected by pointer hash — alloc and
//! dealloc of the same block always hit the same shard, so per-shard
//! counts stay coherent without any thread-local state (and therefore
//! without TLS re-entry hazards inside the allocator).
//!
//! Peak tracking is slack-triggered: a shard republishes the global
//! total only after drifting [`SLACK`] bytes from its last published
//! value, so the common alloc path is two relaxed atomics. The reported
//! peak may under-estimate the true instantaneous maximum by at most
//! `SHARDS * SLACK` bytes (1 MiB) — a bounded error in the same spirit
//! as the metrics layer's 1/16-error histograms.
//!
//! [`scope`] opens a [`MemScope`] guard over a fixed-size slot table
//! (never allocating inside the allocator path); every published total
//! is folded into all open scopes, so a plan stage, an ingest
//! compaction, or a serve batch can report the peak resident bytes
//! observed while it ran. Accounting is **off by default** (one relaxed
//! bool load per alloc) and enabling it is one-way for the process
//! lifetime, which keeps shard counts consistent: blocks allocated
//! before enabling and freed after subtract untracked bytes, so totals
//! are clamped at zero and converge as pre-enable blocks retire.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};

/// Independent byte-count shards (pointer-hashed).
const SHARDS: usize = 16;
/// Bytes a shard may drift from its published value before it
/// re-samples the global total into the peak trackers.
const SLACK: i64 = 64 * 1024;
/// Concurrently open [`MemScope`]s tracked exactly; later scopes fall
/// back to close-time sampling only.
const MAX_SCOPES: usize = 64;

#[repr(align(64))]
struct Shard {
    /// Live bytes attributed to this shard (may go negative when blocks
    /// allocated before [`enable_accounting`] are freed after it).
    current: AtomicI64,
    /// Value of `current` at the last global republish.
    published: AtomicI64,
}

static MEM: [Shard; SHARDS] = [const {
    Shard {
        current: AtomicI64::new(0),
        published: AtomicI64::new(0),
    }
}; SHARDS];

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL_PEAK: AtomicI64 = AtomicI64::new(0);
static ACTIVE_SCOPES: AtomicUsize = AtomicUsize::new(0);

struct ScopeSlot {
    claimed: AtomicBool,
    peak: AtomicI64,
}

static SCOPES: [ScopeSlot; MAX_SCOPES] = [const {
    ScopeSlot {
        claimed: AtomicBool::new(false),
        peak: AtomicI64::new(0),
    }
}; MAX_SCOPES];

/// The instrumenting wrapper around [`System`]; installed as the
/// workspace-wide `#[global_allocator]` by this crate.
pub struct CountingAlloc;

#[inline]
fn shard_for(ptr: *mut u8) -> &'static Shard {
    // Low bits carry alignment; >> 4 mixes distinct blocks across shards.
    &MEM[(ptr as usize >> 4) & (SHARDS - 1)]
}

#[inline]
fn on_alloc(ptr: *mut u8, size: usize) {
    if ptr.is_null() || !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let s = shard_for(ptr);
    let cur = s.current.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    if cur > s.published.load(Ordering::Relaxed) + SLACK {
        s.published.store(cur, Ordering::Relaxed);
        publish_total();
    }
}

#[inline]
fn on_dealloc(ptr: *mut u8, size: usize) {
    if ptr.is_null() || !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let s = shard_for(ptr);
    let cur = s.current.fetch_sub(size as i64, Ordering::Relaxed) - size as i64;
    // Shrinking never raises a peak; just keep the published point near
    // the truth so the next growth re-triggers promptly.
    if cur < s.published.load(Ordering::Relaxed) - SLACK {
        s.published.store(cur, Ordering::Relaxed);
    }
}

/// Folds the freshly-sampled global total into the process peak and
/// every open scope. Out of line: runs at most once per `SLACK` bytes of
/// shard growth.
#[cold]
fn publish_total() {
    let total = current_bytes() as i64;
    GLOBAL_PEAK.fetch_max(total, Ordering::Relaxed);
    if ACTIVE_SCOPES.load(Ordering::Relaxed) > 0 {
        for slot in &SCOPES {
            if slot.claimed.load(Ordering::Relaxed) {
                slot.peak.fetch_max(total, Ordering::Relaxed);
            }
        }
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        on_alloc(p, layout.size());
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        on_alloc(p, layout.size());
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        on_dealloc(ptr, layout.size());
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_dealloc(ptr, layout.size());
            on_alloc(p, new_size);
        }
        p
    }
}

#[global_allocator]
static GLOBAL_ALLOC: CountingAlloc = CountingAlloc;

/// Turns heap accounting on for the rest of the process (idempotent,
/// one-way — see the module docs for why there is no disable).
pub fn enable_accounting() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Whether heap accounting is on.
#[inline]
pub fn accounting_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Live tracked heap bytes (0 while accounting is off).
pub fn current_bytes() -> u64 {
    MEM.iter()
        .map(|s| s.current.load(Ordering::Relaxed))
        .sum::<i64>()
        .max(0) as u64
}

/// Peak tracked heap bytes since accounting was enabled (folds in the
/// instantaneous total, so a caller polling right after a burst still
/// sees it).
pub fn peak_bytes() -> u64 {
    let now = current_bytes() as i64;
    GLOBAL_PEAK
        .fetch_max(now, Ordering::Relaxed)
        .max(now)
        .max(0) as u64
}

/// Publishes allocator gauges (`mem.current_bytes`, `mem.peak_bytes`)
/// into `reg`. No-op while accounting is off, so scrapes never invent
/// zero gauges on untracked runs.
pub fn publish_gauges(reg: &crate::metrics::Registry) {
    if !accounting_enabled() {
        return;
    }
    reg.gauge("mem.current_bytes").set(current_bytes() as i64);
    reg.gauge("mem.peak_bytes").set(peak_bytes() as i64);
}

/// Guard measuring the peak resident bytes observed while it is open.
/// Obtain via [`scope`]; read with [`MemScope::peak`].
pub struct MemScope {
    slot: Option<usize>,
}

/// Opens a memory scope. While accounting is off (or all [`MAX_SCOPES`]
/// slots are taken) the scope is inert and reports 0.
pub fn scope() -> MemScope {
    if !accounting_enabled() {
        return MemScope { slot: None };
    }
    let total = current_bytes() as i64;
    for (i, s) in SCOPES.iter().enumerate() {
        if s.claimed
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            s.peak.store(total, Ordering::Relaxed);
            ACTIVE_SCOPES.fetch_add(1, Ordering::Relaxed);
            return MemScope { slot: Some(i) };
        }
    }
    MemScope { slot: None }
}

impl MemScope {
    /// Peak total resident bytes observed while this scope has been
    /// open: the max of every slack-triggered republish plus a sample
    /// taken right now. 0 for inert scopes.
    pub fn peak(&self) -> u64 {
        match self.slot {
            Some(i) => {
                let now = current_bytes() as i64;
                SCOPES[i]
                    .peak
                    .fetch_max(now, Ordering::Relaxed)
                    .max(now)
                    .max(0) as u64
            }
            None => 0,
        }
    }
}

impl Drop for MemScope {
    fn drop(&mut self) {
        if let Some(i) = self.slot.take() {
            ACTIVE_SCOPES.fetch_sub(1, Ordering::Relaxed);
            SCOPES[i].claimed.store(false, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Enabling accounting is process-global and one-way, so assertive
    // coverage lives in the crate's `alloc_accounting` integration test
    // (its own process). Here we only exercise the inert paths that hold
    // under the disabled default shared with the other unit tests.

    #[test]
    fn disabled_scope_is_inert() {
        if accounting_enabled() {
            return; // another test in this binary flipped it on
        }
        let s = scope();
        assert_eq!(s.slot, None);
        assert_eq!(s.peak(), 0);
        assert_eq!(current_bytes(), 0);
    }

    #[test]
    fn shard_selection_is_stable_per_pointer() {
        let p = 0x7f00_1234_5678usize as *mut u8;
        assert!(std::ptr::eq(shard_for(p), shard_for(p)));
    }
}
