//! The metrics registry: named counters, gauges, and log-linear-bucket
//! histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s resolved
//! once by name and then updated with plain atomics — the registry lock
//! is never on the hot path. Histograms use HdrHistogram-style
//! log-linear buckets: [`SUB_BUCKETS`] linear sub-buckets per power of
//! two, giving a bounded relative quantile error of `1/SUB_BUCKETS`
//! (6.25%) over the full `u64` range in ~1k fixed slots per histogram.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Linear sub-buckets per octave (must be a power of two).
pub const SUB_BUCKETS: u64 = 16;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();
/// Total bucket count: values `< SUB_BUCKETS` are exact, every later
/// octave contributes `SUB_BUCKETS` slots up to `u64::MAX`.
const N_BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS as usize) + SUB_BUCKETS as usize;

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn inc(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.v.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Bucket index of `v`: identity below [`SUB_BUCKETS`], then
/// `SUB_BUCKETS` linear slots per octave.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = (msb - SUB_BITS + 1) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUB_BUCKETS - 1)) as usize;
    (octave << SUB_BITS) + sub
}

/// Smallest value mapping to bucket `idx`.
fn bucket_low(idx: usize) -> u64 {
    if idx < SUB_BUCKETS as usize {
        return idx as u64;
    }
    let octave = (idx >> SUB_BITS) as u32;
    let sub = (idx as u64) & (SUB_BUCKETS - 1);
    (SUB_BUCKETS + sub) << (octave - 1)
}

/// Largest value mapping to bucket `idx` (saturating at `u64::MAX`).
fn bucket_high(idx: usize) -> u64 {
    if idx + 1 >= N_BUCKETS {
        return u64::MAX;
    }
    bucket_low(idx + 1) - 1
}

/// A fixed-footprint log-linear histogram. `record` is three relaxed
/// atomic RMWs; quantiles are reconstructed from bucket counts with
/// relative error at most `1/SUB_BUCKETS`.
pub struct Histogram {
    buckets: Box<[AtomicU64; N_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded observation (exact).
    pub fn max_value(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Observations `<= v`, rounded up to the enclosing bucket boundary:
    /// the whole bucket containing `v` is included, so the result may
    /// over-count by observations within `1/SUB_BUCKETS` relative of `v`.
    pub fn count_le(&self, v: u64) -> u64 {
        self.buckets[..=bucket_index(v)]
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Non-empty buckets as `(upper_bound, cumulative_count)` pairs in
    /// ascending bound order. Both components are monotone
    /// non-decreasing by construction (a single pass accumulates the
    /// counts), and the final cumulative count is the total observed
    /// during that pass — use it, rather than a separate [`count`]
    /// read, wherever a sum-to-total invariant must hold (Prometheus
    /// `_bucket`/`_count` exposition). The catch-all top bucket is
    /// reported with bound `u64::MAX`.
    ///
    /// [`count`]: Histogram::count
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                cum += n;
                out.push((bucket_high(idx), cum));
            }
        }
        out
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (`0.0 < q <= 1.0`); 0 when empty. The bound over-estimates the
    /// exact order statistic by at most `1/SUB_BUCKETS` relative.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                return bucket_high(idx).min(self.max.load(Ordering::Relaxed));
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// A point-in-time summary (p50/p95/p99/max and friends).
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        let sum = self.sum.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            sum,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("summary", &self.summary())
            .finish()
    }
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest observation (exact).
    pub max: u64,
}

/// A named collection of counters, gauges, and histograms.
///
/// Lookup takes the registry lock; updates through the returned handles
/// do not. Instruments are created on first use and live for the
/// registry's lifetime.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.counters.lock().unwrap();
        m.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.gauges.lock().unwrap();
        m.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.histograms.lock().unwrap();
        m.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Live histogram handles, name-ordered — for exposition formats
    /// that need raw buckets rather than [`HistogramSummary`] views.
    pub fn histogram_handles(&self) -> Vec<(String, Arc<Histogram>)> {
        self.histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Snapshots every instrument, name-ordered.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }
}

/// Point-in-time view of a [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry (executor metrics, CLI-level stats).
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        // Every bucket's low..=high range is contiguous with its
        // neighbors and maps back to itself.
        let mut prev_high = None;
        for idx in 0..256 {
            let lo = bucket_low(idx);
            let hi = bucket_high(idx);
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), idx);
            assert_eq!(bucket_index(hi), idx);
            if let Some(p) = prev_high {
                assert_eq!(
                    lo,
                    p + 1,
                    "bucket {idx} must start after bucket {}",
                    idx - 1
                );
            }
            prev_high = Some(hi);
        }
        // Extremes stay in range.
        assert!(bucket_index(u64::MAX) < N_BUCKETS);
        assert_eq!(bucket_index(0), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        assert_eq!(h.quantile(1.0 / SUB_BUCKETS as f64), 0);
        assert_eq!(h.quantile(1.0), SUB_BUCKETS - 1);
        assert_eq!(h.summary().max, SUB_BUCKETS - 1);
    }

    #[test]
    fn quantiles_of_uniform_stream() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.max, 10_000);
        // Relative error bound: est in [exact, exact * (1 + 1/16)].
        for (q, exact) in [(0.5, 5_000u64), (0.95, 9_500), (0.99, 9_900)] {
            let est = h.quantile(q);
            assert!(est >= exact, "q{q}: {est} < {exact}");
            assert!(est <= exact + exact / 16 + 1, "q{q}: {est} too high");
        }
    }

    #[test]
    fn registry_handles_share_state() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc(3);
        b.inc(4);
        assert_eq!(r.counter("x").get(), 7);
        assert!(Arc::ptr_eq(&a, &b));

        let g = r.gauge("depth");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);

        r.histogram("lat").record(42);
        let snap = r.snapshot();
        assert_eq!(snap.counters["x"], 7);
        assert_eq!(snap.gauges["depth"], 3);
        assert_eq!(snap.histograms["lat"].count, 1);
        assert_eq!(snap.histograms["lat"].max, 42);
    }

    #[test]
    fn empty_histogram_summarizes_to_zero() {
        let s = Histogram::new().summary();
        assert_eq!(s, HistogramSummary::default());
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_total() {
        let h = Histogram::new();
        for v in [0u64, 3, 3, 100, 5_000, u64::MAX] {
            h.record(v);
        }
        let cum = h.cumulative_buckets();
        assert!(!cum.is_empty());
        for w in cum.windows(2) {
            assert!(w[0].0 < w[1].0, "bounds ascend");
            assert!(w[0].1 <= w[1].1, "counts never decrease");
        }
        assert_eq!(cum.last().unwrap().1, h.count());
        assert_eq!(cum.last().unwrap().0, u64::MAX, "top bucket holds u64::MAX");
        assert_eq!(h.max_value(), u64::MAX);
        let small = Histogram::new();
        small.record(7);
        small.record(9);
        assert_eq!(small.sum(), 16);
    }

    #[test]
    fn count_le_includes_the_enclosing_bucket() {
        let h = Histogram::new();
        for v in 1..=1_000u64 {
            h.record(v);
        }
        assert_eq!(h.count_le(0), 0);
        assert_eq!(h.count_le(u64::MAX), 1_000);
        // Exact range: values < SUB_BUCKETS sit in singleton buckets.
        assert_eq!(h.count_le(10), 10);
        // Bucketed range: count_le(v) >= true count, within one bucket.
        let le500 = h.count_le(500);
        assert!(le500 >= 500);
        assert!(le500 <= 500 + 500 / SUB_BUCKETS + 1);
    }
}
