//! Multi-window SLO burn-rate monitoring over a latency histogram.
//!
//! The monitor samples `(total, breaching)` cumulative counts from a
//! [`Histogram`] on every tick and computes the **burn rate** — the
//! fraction of requests breaching the latency objective inside a
//! trailing window, divided by the SLO's error budget `1 - target` — for
//! two windows at once. Burn 1.0 means the budget is being consumed
//! exactly as fast as it accrues; well-known practice (and the reason
//! for two windows) is to alert only when a *fast* window shows the
//! spike and a *slow* window confirms it is sustained, which filters
//! single-batch blips without waiting minutes to react.
//!
//! The verdict is exported as gauges (`slo.fast_burn_milli`,
//! `slo.slow_burn_milli`, `slo.degraded`) and drives the serve path's
//! degraded mode: while degraded, the server sheds queued work earlier
//! than its configured deadline so the latency of *served* requests
//! recovers before p99 breaches. Breach counts come from
//! [`Histogram::count_le`], inheriting the registry's bounded
//! `1/SUB_BUCKETS` bucket error.

use crate::metrics::{Gauge, Histogram, Registry};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Burn-rate configuration for one latency SLO.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Per-request latency objective in nanoseconds.
    pub objective_ns: u64,
    /// Target fraction of requests meeting the objective (e.g. 0.99);
    /// the error budget is `1 - target`. Must be < 1.
    pub target: f64,
    /// Short window that detects a burn spike quickly.
    pub fast_window: Duration,
    /// Long window that confirms the burn is sustained.
    pub slow_window: Duration,
    /// Degrade when **both** windows burn above this rate; recover when
    /// both fall below half of it (hysteresis against flapping).
    pub burn_threshold: f64,
    /// Cadence of the background monitor thread.
    pub tick: Duration,
}

impl Default for SloConfig {
    fn default() -> Self {
        // Windows are short by production standards because the serve
        // benches run for seconds, not hours; the ratios (1:10 windows,
        // threshold 1.0) are the conventional part.
        SloConfig {
            objective_ns: 50_000_000,
            target: 0.99,
            fast_window: Duration::from_secs(1),
            slow_window: Duration::from_secs(10),
            burn_threshold: 1.0,
            tick: Duration::from_millis(50),
        }
    }
}

/// One burn-rate evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloVerdict {
    /// Burn rate over the fast window.
    pub fast_burn: f64,
    /// Burn rate over the slow window.
    pub slow_burn: f64,
    /// Whether the monitor is in the degraded state after this tick.
    pub degraded: bool,
}

struct Sample {
    at: Instant,
    total: u64,
    breaching: u64,
}

/// Evaluates a latency histogram against an [`SloConfig`], exporting
/// burn gauges and a degraded flag the serve path polls per batch.
pub struct SloMonitor {
    cfg: SloConfig,
    hist: Arc<Histogram>,
    samples: Mutex<VecDeque<Sample>>,
    fast_g: Arc<Gauge>,
    slow_g: Arc<Gauge>,
    degraded_g: Arc<Gauge>,
    degraded: AtomicBool,
}

impl SloMonitor {
    /// A monitor over `hist`, registering its gauges in `reg`.
    pub fn new(cfg: SloConfig, hist: Arc<Histogram>, reg: &Registry) -> Self {
        assert!(cfg.target < 1.0, "a target of 1.0 leaves no error budget");
        reg.gauge("slo.objective_ns").set(cfg.objective_ns as i64);
        SloMonitor {
            fast_g: reg.gauge("slo.fast_burn_milli"),
            slow_g: reg.gauge("slo.slow_burn_milli"),
            degraded_g: reg.gauge("slo.degraded"),
            degraded: AtomicBool::new(false),
            samples: Mutex::new(VecDeque::new()),
            cfg,
            hist,
        }
    }

    /// The monitor's configuration.
    pub fn cfg(&self) -> &SloConfig {
        &self.cfg
    }

    /// Whether the last tick left the monitor degraded (relaxed read,
    /// safe on the batch hot path).
    #[inline]
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Samples the histogram and re-evaluates both windows at `now`.
    /// Exposed with an explicit clock so tests can replay a timeline.
    pub fn tick_at(&self, now: Instant) -> SloVerdict {
        let total = self.hist.count();
        let breaching = total.saturating_sub(self.hist.count_le(self.cfg.objective_ns));
        let budget = 1.0 - self.cfg.target;
        let mut s = self.samples.lock().unwrap();
        let fast_burn = window_burn(&s, now, self.cfg.fast_window, total, breaching, budget);
        let slow_burn = window_burn(&s, now, self.cfg.slow_window, total, breaching, budget);
        s.push_back(Sample {
            at: now,
            total,
            breaching,
        });
        // Retain exactly one sample at or beyond the slow window as the
        // base of future diffs.
        while s.len() >= 2 && now.duration_since(s[1].at) >= self.cfg.slow_window {
            s.pop_front();
        }
        drop(s);

        let was = self.degraded.load(Ordering::Relaxed);
        let thr = self.cfg.burn_threshold;
        let degraded = if was {
            !(fast_burn < thr * 0.5 && slow_burn < thr * 0.5)
        } else {
            fast_burn > thr && slow_burn > thr
        };
        self.degraded.store(degraded, Ordering::Relaxed);
        self.fast_g.set((fast_burn * 1000.0) as i64);
        self.slow_g.set((slow_burn * 1000.0) as i64);
        self.degraded_g.set(degraded as i64);
        SloVerdict {
            fast_burn,
            slow_burn,
            degraded,
        }
    }

    /// [`SloMonitor::tick_at`] with the real clock.
    pub fn tick(&self) -> SloVerdict {
        self.tick_at(Instant::now())
    }
}

/// Burn rate between `now`'s cumulative counts and the newest retained
/// sample at least `window` old (falling back to the oldest sample — a
/// shorter effective window — early in a run, and to process start when
/// no sample exists yet).
fn window_burn(
    samples: &VecDeque<Sample>,
    now: Instant,
    window: Duration,
    total: u64,
    breaching: u64,
    budget: f64,
) -> f64 {
    let (base_total, base_breaching) = samples
        .iter()
        .rev()
        .find(|s| now.duration_since(s.at) >= window)
        .or_else(|| samples.front())
        .map_or((0, 0), |s| (s.total, s.breaching));
    let dt = total.saturating_sub(base_total);
    if dt == 0 {
        return 0.0;
    }
    let db = breaching.saturating_sub(base_breaching);
    (db as f64 / dt as f64) / budget
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SloConfig {
        SloConfig {
            objective_ns: 1_000,
            target: 0.9, // budget = 0.1
            fast_window: Duration::from_secs(1),
            slow_window: Duration::from_secs(10),
            burn_threshold: 1.0,
            tick: Duration::from_millis(10),
        }
    }

    #[test]
    fn healthy_traffic_never_degrades() {
        let reg = Registry::new();
        let h = Arc::new(Histogram::new());
        let m = SloMonitor::new(cfg(), h.clone(), &reg);
        let t0 = Instant::now();
        for step in 0..20 {
            for _ in 0..100 {
                h.record(10); // well under the objective
            }
            let v = m.tick_at(t0 + Duration::from_millis(500 * step));
            assert!(!v.degraded);
            assert_eq!(v.fast_burn, 0.0);
        }
        assert_eq!(reg.gauge("slo.degraded").get(), 0);
    }

    #[test]
    fn sustained_burn_degrades_and_recovers_with_hysteresis() {
        let reg = Registry::new();
        let h = Arc::new(Histogram::new());
        let m = SloMonitor::new(cfg(), h.clone(), &reg);
        let t0 = Instant::now();
        m.tick_at(t0);
        // 50% of requests breach a 10% budget => burn 5.0 in both windows.
        for step in 1..=20u64 {
            for _ in 0..50 {
                h.record(10);
                h.record(1_000_000);
            }
            m.tick_at(t0 + Duration::from_millis(500 * step));
        }
        assert!(m.degraded(), "sustained breach must degrade");
        assert!(reg.gauge("slo.fast_burn_milli").get() >= 4000);
        assert_eq!(reg.gauge("slo.degraded").get(), 1);

        // Clean traffic: fast window clears first, but recovery needs
        // both windows under threshold/2.
        let mut recovered_at = None;
        for step in 21..=80u64 {
            for _ in 0..500 {
                h.record(10);
            }
            let v = m.tick_at(t0 + Duration::from_millis(500 * step));
            if !v.degraded {
                recovered_at = Some((step, v));
                break;
            }
        }
        let (step, v) = recovered_at.expect("clean traffic must eventually recover");
        assert!(v.fast_burn < 0.5 && v.slow_burn < 0.5);
        assert!(
            step > 22,
            "the slow window must hold the degraded state for a while"
        );
    }

    #[test]
    fn short_spike_does_not_degrade() {
        let reg = Registry::new();
        let h = Arc::new(Histogram::new());
        let mut c = cfg();
        c.slow_window = Duration::from_secs(30);
        let m = SloMonitor::new(c, h.clone(), &reg);
        let t0 = Instant::now();
        // Build a long healthy history first.
        for step in 0..60u64 {
            for _ in 0..100 {
                h.record(10);
            }
            m.tick_at(t0 + Duration::from_millis(500 * step));
        }
        // One bad half-second blip: fast window spikes, slow stays calm.
        for _ in 0..100 {
            h.record(1_000_000);
        }
        let v = m.tick_at(t0 + Duration::from_millis(500 * 61));
        assert!(v.fast_burn > 1.0, "fast window must see the spike");
        assert!(v.slow_burn < 1.0, "slow window must absorb it");
        assert!(!v.degraded);
    }
}
