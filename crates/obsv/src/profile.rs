//! Folded-stack (flamegraph-collapsed) export of the span tree.
//!
//! Each buffered [`SpanEvent`] contributes its **self time** — its
//! duration minus the time covered by its direct children — to one
//! folded line `root;child;leaf <microseconds>` keyed by its ancestor
//! path. The output is the `stackcollapse` format consumed directly by
//! `flamegraph.pl` and <https://www.speedscope.app>.
//!
//! Child coverage is the length of the *interval union* of the
//! children, not the sum of their durations: parallel children (map
//! tasks fanned out by one phase, chunks stolen by several workers) and
//! duplicated views of the same wall time (a task span and the executor
//! chunk that ran it) overlap, and summing them would drive parent self
//! time negative while double-counting leaves.
//!
//! Executor `chunk` spans (recorded by the chunk observer with their
//! submit-time parent) are suppressed under parents that also have
//! `task` children: there the task spans *are* the logical view of the
//! same chunks. Where no task layer exists — a `par_iter` inside a task
//! body, straight library use — the chunk spans remain and split the
//! parent's time across the executor's actual work units.

use crate::tracer::SpanEvent;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// Category the executor's chunk observer records under.
const CHUNK_CAT: &str = "chunk";
/// Category the mapreduce engine records per-task spans under.
const TASK_CAT: &str = "task";

/// One frame: `cat:name` with folded-format separators stripped.
fn frame(cat: &str, name: &str) -> String {
    format!("{cat}:{name}")
        .chars()
        .map(|c| {
            if c == ';' || c.is_whitespace() || c.is_control() {
                '_'
            } else {
                c
            }
        })
        .collect()
}

/// Wall-clock length of the union of `[start, start+dur)` intervals.
fn interval_union_ns(mut iv: Vec<(u64, u64)>) -> u64 {
    iv.sort_unstable();
    let mut covered = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (s, e) in iv {
        match &mut cur {
            Some((_, ce)) if s <= *ce => *ce = (*ce).max(e),
            _ => {
                if let Some((cs, ce)) = cur.take() {
                    covered += ce - cs;
                }
                cur = Some((s, e));
            }
        }
    }
    if let Some((cs, ce)) = cur {
        covered += ce - cs;
    }
    covered
}

/// Aggregates span self-time into sorted folded-stack lines
/// (`path;frames value`), value in whole microseconds (ceiled, so no
/// observed span vanishes). Deterministic for a given event set.
pub fn folded_stacks(events: &[SpanEvent]) -> String {
    let idx: HashMap<u64, usize> = events.iter().enumerate().map(|(i, e)| (e.id, i)).collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); events.len()];
    for (i, e) in events.iter().enumerate() {
        if e.parent != 0 && e.parent != e.id {
            if let Some(&p) = idx.get(&e.parent) {
                children[p].push(i);
            }
        }
    }
    // Suppress executor chunk spans where a task layer shadows them.
    let keep: Vec<bool> = events
        .iter()
        .map(|e| {
            if e.cat != CHUNK_CAT {
                return true;
            }
            match idx.get(&e.parent) {
                Some(&p) => !children[p].iter().any(|&c| events[c].cat == TASK_CAT),
                None => true,
            }
        })
        .collect();

    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        if !keep[i] {
            continue;
        }
        let covered = interval_union_ns(
            children[i]
                .iter()
                .filter(|&&c| keep[c])
                .map(|&c| {
                    let k = &events[c];
                    (k.start_ns, k.start_ns.saturating_add(k.dur_ns))
                })
                .collect(),
        );
        let self_ns = e.dur_ns.saturating_sub(covered);
        if self_ns == 0 {
            continue;
        }
        // Ancestor path, root first. Parent links always point at older
        // (smaller) ids, so this cannot cycle; the hop cap only guards
        // pathological synthetic inputs.
        let mut path = vec![frame(e.cat, &e.name)];
        let mut cur = e.parent;
        let mut hops = 0;
        while cur != 0 && hops < 128 {
            let Some(&p) = idx.get(&cur) else { break };
            path.push(frame(events[p].cat, &events[p].name));
            cur = events[p].parent;
            hops += 1;
        }
        path.reverse();
        *agg.entry(path.join(";")).or_default() += self_ns;
    }

    let mut out = String::new();
    for (path, ns) in agg {
        let _ = writeln!(out, "{path} {}", ns.div_ceil(1_000));
    }
    out
}

/// Writes [`folded_stacks`] of `events` to `path`.
pub fn write_folded(path: &str, events: &[SpanEvent]) -> std::io::Result<()> {
    std::fs::write(path, folded_stacks(events))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64, parent: u64, cat: &'static str, name: &str, start: u64, dur: u64) -> SpanEvent {
        SpanEvent {
            seq: id,
            id,
            parent,
            tid: 0,
            cat,
            name: name.into(),
            start_ns: start,
            dur_ns: dur,
        }
    }

    #[test]
    fn self_time_subtracts_child_union_not_sum() {
        // Parent 0..100us with two parallel children 10..60 and 30..80:
        // union covers 70us, self = 30us (a plain sum would claim 0).
        let events = [
            ev(1, 0, "job", "j", 0, 100_000),
            ev(2, 1, "task", "a", 10_000, 50_000),
            ev(3, 1, "task", "b", 30_000, 50_000),
        ];
        let out = folded_stacks(&events);
        assert!(out.contains("job:j 30\n"), "got:\n{out}");
        assert!(out.contains("job:j;task:a 50\n"));
        assert!(out.contains("job:j;task:b 50\n"));
    }

    #[test]
    fn chunk_spans_are_shadowed_by_task_siblings() {
        let events = [
            ev(1, 0, "phase", "map", 0, 100_000),
            ev(2, 1, "task", "map-0", 0, 90_000),
            // Executor's view of the same work — must not double-count.
            ev(3, 1, "chunk", "local", 0, 90_000),
        ];
        let out = folded_stacks(&events);
        assert!(out.contains("phase:map;task:map-0 90\n"), "got:\n{out}");
        assert!(!out.contains("chunk"), "got:\n{out}");
        assert!(out.contains("phase:map 10\n"));
    }

    #[test]
    fn chunks_survive_without_a_task_layer() {
        let events = [
            ev(1, 0, "task", "kernel", 0, 100_000),
            ev(2, 1, "chunk", "local", 0, 40_000),
            ev(3, 1, "chunk", "stolen", 40_000, 40_000),
        ];
        let out = folded_stacks(&events);
        assert!(out.contains("task:kernel;chunk:local 40\n"), "got:\n{out}");
        assert!(out.contains("task:kernel;chunk:stolen 40\n"));
        assert!(out.contains("task:kernel 20\n"));
    }

    #[test]
    fn frames_never_leak_separators() {
        let events = [ev(1, 0, "job", "a;b c\nd", 0, 5_000)];
        let out = folded_stacks(&events);
        assert_eq!(out, "job:a_b_c_d 5\n");
    }
}
