//! # dp-core — Density Peaks clustering fundamentals
//!
//! This crate implements the data model and the *exact sequential* Density
//! Peaks (DP) algorithm of Rodriguez & Laio (Science, 2014), which is the
//! ground truth against which the distributed algorithms in the [`ddp`]
//! crate (Basic-DDP, LSH-DDP, EDDPC) are validated.
//!
//! DP computes two quantities per point `i`:
//!
//! * the **local density** `rho_i` — the number of other points within the
//!   cutoff distance `d_c` (Eq. 1 of the LSH-DDP paper);
//! * the **separation** `delta_i` — the distance from `i` to the nearest
//!   point of higher density (Eq. 2), together with that point's id, the
//!   *upslope point* `u_i`.
//!
//! Cluster centers ("density peaks") are points with simultaneously high
//! `rho` and high `delta`; every other point is assigned to the cluster of
//! its upslope point by following the assignment chain.
//!
//! ## Modules
//!
//! * [`point`] — the flat, cache-friendly [`Dataset`] container;
//! * [`distance`] — metrics and the global distance-computation counter used
//!   by the paper's Figure 10(c) / Table IV cost accounting;
//! * [`cutoff`] — `d_c` estimation by distance percentile (paper §III-A);
//! * [`dp`] — the exact O(N²) sequential algorithm;
//! * [`decision`] — decision graph, peak selection, cluster assignment;
//! * [`quality`] — external cluster validation (ARI, NMI, purity, pairwise
//!   F-measure) and the paper's approximation metrics `tau1`/`tau2` (§VI-C);
//! * [`update`] — localized `rho`/`delta` update kernels backing the
//!   incremental ingest path.
//!
//! ## Quick example
//!
//! ```
//! use dp_core::{Dataset, cutoff, dp, decision};
//!
//! // Two well-separated blobs on a line.
//! let mut ds = Dataset::new(1);
//! for i in 0..10 { ds.push(&[i as f64 * 0.1]); }
//! for i in 0..10 { ds.push(&[100.0 + i as f64 * 0.1]); }
//!
//! // 20% neighborhood quantile — this toy set has only 20 points, so the
//! // paper's 1–2% rule of thumb would leave every density at zero.
//! let dc = cutoff::estimate_dc_exact(&ds, 0.2);
//! let result = dp::compute_exact(&ds, dc);
//! let peaks = decision::select_top_k(&result, 2);
//! let clusters = decision::assign(&result, &peaks);
//! assert_eq!(clusters.label(0), clusters.label(9));
//! assert_ne!(clusters.label(0), clusters.label(10));
//! ```

pub mod cutoff;
pub mod decision;
pub mod distance;
pub mod dp;
pub mod fast;
pub mod index;
pub mod kernel;
pub mod point;
pub mod quality;
pub mod update;

pub use decision::{
    assign, compute_halo, select_by_threshold, select_top_k, Clustering, DecisionGraph,
};
pub use distance::{
    for_each_cross_d2, for_each_pair_d2, nearest_in_block, squared_euclidean_block, DistanceKind,
    DistanceTracker,
};
pub use dp::{compute_exact, denser, DpResult, NO_UPSLOPE};
pub use fast::compute_exact_fast;
pub use index::{KernelStrategy, SpatialIndex};
pub use kernel::{compute_gaussian, KernelDpResult};
pub use point::{Dataset, PointId};

/// Errors produced by `dp-core` operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DpError {
    /// The dataset was empty where at least one point was required.
    EmptyDataset,
    /// A point with a mismatched dimensionality was supplied.
    DimensionMismatch {
        /// Dimensionality of the dataset.
        expected: usize,
        /// Dimensionality of the offending point.
        got: usize,
    },
    /// A parameter was outside of its valid domain.
    InvalidParameter(String),
}

impl std::fmt::Display for DpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DpError::EmptyDataset => write!(f, "dataset is empty"),
            DpError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            DpError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for DpError {}
