//! Distance metrics and distance-computation accounting.
//!
//! The paper's cost model counts the *number of distance measurements* as
//! the computational cost (Figure 10(c), Table IV). To reproduce those
//! numbers without instrumenting every call site, the distributed pipelines
//! route distance evaluations through a [`DistanceTracker`], a cheap cloneable
//! handle around an atomic counter shared across all map/reduce worker
//! threads.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which metric to use for pairwise distances.
///
/// The paper and the original DP code use Euclidean distance; the other
/// metrics are provided for downstream users (they are all valid for DP as
/// long as they are true metrics — the triangle-inequality filters in the
/// EDDPC baseline rely on that).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DistanceKind {
    /// L2 (Euclidean) — the paper's metric.
    #[default]
    Euclidean,
    /// L1 (Manhattan).
    Manhattan,
    /// L∞ (Chebyshev).
    Chebyshev,
}

impl DistanceKind {
    /// Evaluates the metric between two coordinate slices.
    ///
    /// # Panics
    /// Debug-asserts that both slices have equal length.
    #[inline]
    pub fn eval(self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "distance between mismatched dims");
        match self {
            DistanceKind::Euclidean => euclidean(a, b),
            DistanceKind::Manhattan => manhattan(a, b),
            DistanceKind::Chebyshev => chebyshev(a, b),
        }
    }

    /// Whether `d(a, b) < threshold`, using the squared-distance fast path
    /// for the Euclidean metric.
    ///
    /// Every `rho` kernel (sequential and distributed) must use this same
    /// predicate: mixing `d² < t²` with `sqrt(d²) < t` flips pairs whose
    /// distance ties the threshold, and with `d_c` chosen as a quantile of
    /// the data's own distances such ties are common.
    #[inline]
    pub fn within(self, a: &[f64], b: &[f64], threshold: f64) -> bool {
        match self {
            DistanceKind::Euclidean => squared_euclidean(a, b) < threshold * threshold,
            _ => self.eval(a, b) < threshold,
        }
    }
}

/// Euclidean (L2) distance.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    squared_euclidean(a, b).sqrt()
}

/// Squared Euclidean distance; avoids the `sqrt` when only comparisons
/// against a squared threshold are needed (the `rho` kernels use this).
#[inline]
pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Fills `out` with the squared Euclidean distances between every query
/// and every target: `out[q * n_targets + t] = d²(queries[q], targets[t])`.
///
/// Both point blocks are flat row-major `dim`-dimensional coordinates, the
/// layout [`crate::Dataset`] stores. Processing a block of queries at once
/// amortizes the target sweep across queries (the serving runtime's
/// micro-batches feed this), and the tiled inner loops keep the target
/// block hot in cache.
///
/// # Panics
/// Panics if `dim` is zero or either block's length is not a multiple of
/// `dim`.
pub fn squared_euclidean_block(queries: &[f64], targets: &[f64], dim: usize, out: &mut Vec<f64>) {
    assert!(dim > 0, "dimension must be positive");
    assert_eq!(
        queries.len() % dim,
        0,
        "query block length must be a multiple of dim"
    );
    assert_eq!(
        targets.len() % dim,
        0,
        "target block length must be a multiple of dim"
    );
    let nq = queries.len() / dim;
    let nt = targets.len() / dim;
    out.clear();
    out.resize(nq * nt, 0.0);

    // Tile over targets so one stripe of the target block is reused by
    // every query in the batch before being evicted.
    const TILE: usize = 64;
    for t0 in (0..nt).step_by(TILE) {
        let t1 = (t0 + TILE).min(nt);
        for (q, qp) in queries.chunks_exact(dim).enumerate() {
            let row = &mut out[q * nt..(q + 1) * nt];
            for (t, tp) in targets[t0 * dim..t1 * dim].chunks_exact(dim).enumerate() {
                row[t0 + t] = squared_euclidean(qp, tp);
            }
        }
    }
}

/// For each query in the flat block, the index of its nearest target and
/// the (non-squared) Euclidean distance to it; ties go to the lower index.
///
/// This is the batched kernel behind the serving layer's exact
/// nearest-center fallback: one call resolves a whole micro-batch.
///
/// # Panics
/// Panics if `targets` is empty, `dim` is zero, or either block's length
/// is not a multiple of `dim`.
pub fn nearest_in_block(queries: &[f64], targets: &[f64], dim: usize) -> Vec<(usize, f64)> {
    assert!(!targets.is_empty(), "need at least one target");
    let mut d2 = Vec::new();
    squared_euclidean_block(queries, targets, dim, &mut d2);
    let nt = targets.len() / dim;
    d2.chunks_exact(nt)
        .map(|row| {
            let (best, &d) = row
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.total_cmp(b))
                .expect("non-empty target row");
            (best, d.sqrt())
        })
        .collect()
}

/// Visits every unordered pair `(i, j)` with `i < j` of a flat row-major
/// point block, passing the squared Euclidean distance `d²(i, j)`.
///
/// Distances are computed through [`squared_euclidean_block`] on query
/// blocks, so the O(n²) partition-local rho/delta loops get the kernel's
/// cache tiling instead of a pointer-chasing call per pair. Pairs arrive
/// in ascending `(i, j)` order, but correct callers must not depend on
/// visitation order beyond that (the local-DP update rules are
/// order-independent).
///
/// # Panics
/// Panics if `dim` is zero or `flat.len()` is not a multiple of `dim`.
pub fn for_each_pair_d2(flat: &[f64], dim: usize, mut visit: impl FnMut(usize, usize, f64)) {
    assert!(dim > 0, "dimension must be positive");
    assert_eq!(
        flat.len() % dim,
        0,
        "point block length must be a multiple of dim"
    );
    let n = flat.len() / dim;
    if n < 2 {
        return;
    }
    const QBLOCK: usize = 32;
    let mut d2 = Vec::new();
    for q0 in (0..n).step_by(QBLOCK) {
        let q1 = (q0 + QBLOCK).min(n);
        // Targets are the suffix starting at the query block, so row `qi`
        // holds distances to every j >= q0; entries with j > i are the
        // unordered pairs owned by this block.
        squared_euclidean_block(&flat[q0 * dim..q1 * dim], &flat[q0 * dim..], dim, &mut d2);
        let nt = n - q0;
        for (qi, row) in d2.chunks_exact(nt).enumerate() {
            let i = q0 + qi;
            for (tj, &d) in row.iter().enumerate().skip(qi + 1) {
                visit(i, q0 + tj, d);
            }
        }
    }
}

/// Visits every cross pair `(i, j)` between two flat row-major point
/// blocks (`i` indexes `a`, `j` indexes `b`), passing `d²(a_i, b_j)`.
///
/// The batched counterpart of a nested `for i in a { for j in b }` loop;
/// see [`for_each_pair_d2`]. Pairs arrive in ascending `(i, j)` order.
///
/// # Panics
/// Panics if `dim` is zero or either block's length is not a multiple of
/// `dim`.
pub fn for_each_cross_d2(
    a: &[f64],
    b: &[f64],
    dim: usize,
    mut visit: impl FnMut(usize, usize, f64),
) {
    assert!(dim > 0, "dimension must be positive");
    assert_eq!(a.len() % dim, 0, "block length must be a multiple of dim");
    assert_eq!(b.len() % dim, 0, "block length must be a multiple of dim");
    let nb = b.len() / dim;
    if a.is_empty() || nb == 0 {
        return;
    }
    const QBLOCK: usize = 32;
    let na = a.len() / dim;
    let mut d2 = Vec::new();
    for q0 in (0..na).step_by(QBLOCK) {
        let q1 = (q0 + QBLOCK).min(na);
        squared_euclidean_block(&a[q0 * dim..q1 * dim], b, dim, &mut d2);
        for (qi, row) in d2.chunks_exact(nb).enumerate() {
            for (tj, &d) in row.iter().enumerate() {
                visit(q0 + qi, tj, d);
            }
        }
    }
}

/// Manhattan (L1) distance.
#[inline]
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum()
}

/// Chebyshev (L∞) distance.
#[inline]
pub fn chebyshev(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Shared counter of distance evaluations.
///
/// ```
/// use dp_core::DistanceTracker;
/// let t = DistanceTracker::new();
/// assert_eq!(t.distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
/// assert!(t.within(&[0.0], &[1.0], 2.0));
/// assert_eq!(t.total(), 2);
/// ```
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same count.
/// Counting uses `Relaxed` ordering — the count is only read after the
/// parallel phase has joined, so no ordering stronger than the join is
/// needed.
#[derive(Debug, Clone, Default)]
pub struct DistanceTracker {
    count: Arc<AtomicU64>,
    kind: DistanceKind,
}

impl DistanceTracker {
    /// A fresh tracker starting at zero, using Euclidean distance.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh tracker using the given metric.
    pub fn with_kind(kind: DistanceKind) -> Self {
        DistanceTracker {
            count: Arc::new(AtomicU64::new(0)),
            kind,
        }
    }

    /// The metric this tracker evaluates.
    pub fn kind(&self) -> DistanceKind {
        self.kind
    }

    /// Evaluates the metric and counts one distance measurement.
    #[inline]
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.kind.eval(a, b)
    }

    /// Counts `n` distance measurements performed externally (e.g. by a
    /// squared-threshold kernel that bypasses [`Self::distance`]).
    #[inline]
    pub fn add(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Threshold predicate `d(a, b) < threshold`, counted as one distance
    /// measurement; see [`DistanceKind::within`].
    #[inline]
    pub fn within(&self, a: &[f64], b: &[f64], threshold: f64) -> bool {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.kind.within(a, b, threshold)
    }

    /// Total distance measurements recorded so far.
    pub fn total(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_matches_hand_computation() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn squared_euclidean_is_square_of_euclidean() {
        let a = [1.0, -2.0, 0.5];
        let b = [0.0, 4.0, 2.5];
        let d = euclidean(&a, &b);
        assert!((squared_euclidean(&a, &b) - d * d).abs() < 1e-12);
    }

    #[test]
    fn manhattan_and_chebyshev() {
        let a = [0.0, 0.0];
        let b = [3.0, -4.0];
        assert_eq!(manhattan(&a, &b), 7.0);
        assert_eq!(chebyshev(&a, &b), 4.0);
    }

    #[test]
    fn kind_dispatch() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(DistanceKind::Euclidean.eval(&a, &b), 5.0);
        assert_eq!(DistanceKind::Manhattan.eval(&a, &b), 7.0);
        assert_eq!(DistanceKind::Chebyshev.eval(&a, &b), 4.0);
    }

    #[test]
    fn tracker_counts_and_resets() {
        let t = DistanceTracker::new();
        assert_eq!(t.total(), 0);
        let _ = t.distance(&[0.0], &[1.0]);
        let _ = t.distance(&[0.0], &[2.0]);
        t.add(10);
        assert_eq!(t.total(), 12);
        t.reset();
        assert_eq!(t.total(), 0);
    }

    #[test]
    fn tracker_clones_share_state() {
        let t = DistanceTracker::new();
        let u = t.clone();
        let _ = u.distance(&[0.0], &[1.0]);
        assert_eq!(t.total(), 1);
    }

    #[test]
    fn tracker_is_thread_safe() {
        let t = DistanceTracker::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let tc = t.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        let _ = tc.distance(&[0.0, 0.0], &[1.0, 1.0]);
                    }
                });
            }
        });
        assert_eq!(t.total(), 4000);
    }

    #[test]
    fn block_kernel_matches_pairwise_calls() {
        let queries = [0.0, 0.0, 1.0, 2.0, -3.0, 0.5, 7.0, 7.0];
        let targets = [0.5, 0.5, 4.0, -1.0, 6.9, 7.2];
        let dim = 2;
        let mut out = Vec::new();
        squared_euclidean_block(&queries, &targets, dim, &mut out);
        assert_eq!(out.len(), 4 * 3);
        for (q, qp) in queries.chunks_exact(dim).enumerate() {
            for (t, tp) in targets.chunks_exact(dim).enumerate() {
                assert_eq!(
                    out[q * 3 + t],
                    squared_euclidean(qp, tp),
                    "entry ({q}, {t})"
                );
            }
        }
    }

    #[test]
    fn block_kernel_tiles_past_the_stripe_width() {
        // More targets than one 64-wide tile, so the tiling loop wraps.
        let dim = 3;
        let targets: Vec<f64> = (0..150 * dim).map(|i| (i % 17) as f64 * 0.25).collect();
        let queries: Vec<f64> = (0..4 * dim).map(|i| i as f64).collect();
        let mut out = Vec::new();
        squared_euclidean_block(&queries, &targets, dim, &mut out);
        for (q, qp) in queries.chunks_exact(dim).enumerate() {
            for (t, tp) in targets.chunks_exact(dim).enumerate() {
                assert_eq!(out[q * 150 + t], squared_euclidean(qp, tp));
            }
        }
    }

    #[test]
    fn nearest_in_block_finds_true_nearest_with_low_index_ties() {
        let targets = [0.0, 0.0, 10.0, 0.0, 10.0, 0.0];
        let queries = [9.0, 0.0, 1.0, 1.0];
        let got = nearest_in_block(&queries, &targets, 2);
        assert_eq!(
            got[0].0, 1,
            "ties between equal targets go to the lower index"
        );
        assert!((got[0].1 - 1.0).abs() < 1e-12);
        assert_eq!(got[1].0, 0);
        assert!((got[1].1 - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn block_kernel_handles_empty_query_batch() {
        let mut out = vec![1.0];
        squared_euclidean_block(&[], &[1.0, 2.0], 2, &mut out);
        assert!(out.is_empty());
        assert!(nearest_in_block(&[], &[1.0, 2.0], 2).is_empty());
    }

    #[test]
    fn pair_visitor_covers_each_unordered_pair_once() {
        let dim = 2;
        // 70 points: crosses the 32-wide query block twice.
        let flat: Vec<f64> = (0..70 * dim)
            .map(|i| ((i * 31) % 23) as f64 * 0.5)
            .collect();
        let n = flat.len() / dim;
        let mut seen = std::collections::BTreeMap::new();
        for_each_pair_d2(&flat, dim, |i, j, d| {
            assert!(i < j, "pairs must be unordered (i < j)");
            assert!(seen.insert((i, j), d).is_none(), "pair visited twice");
        });
        assert_eq!(seen.len(), n * (n - 1) / 2);
        for ((i, j), d) in seen {
            let expect =
                squared_euclidean(&flat[i * dim..(i + 1) * dim], &flat[j * dim..(j + 1) * dim]);
            assert_eq!(d, expect, "pair ({i}, {j})");
        }
    }

    #[test]
    fn cross_visitor_covers_full_product() {
        let dim = 3;
        let a: Vec<f64> = (0..40 * dim).map(|i| (i % 11) as f64).collect();
        let b: Vec<f64> = (0..7 * dim).map(|i| (i % 5) as f64 * 1.5).collect();
        let mut count = 0usize;
        for_each_cross_d2(&a, &b, dim, |i, j, d| {
            let expect = squared_euclidean(&a[i * dim..(i + 1) * dim], &b[j * dim..(j + 1) * dim]);
            assert_eq!(d, expect);
            count += 1;
        });
        assert_eq!(count, 40 * 7);
    }

    #[test]
    fn visitors_handle_degenerate_blocks() {
        let mut called = false;
        for_each_pair_d2(&[1.0, 2.0], 2, |_, _, _| called = true);
        for_each_pair_d2(&[], 2, |_, _, _| called = true);
        for_each_cross_d2(&[], &[1.0, 2.0], 2, |_, _, _| called = true);
        for_each_cross_d2(&[1.0, 2.0], &[], 2, |_, _, _| called = true);
        assert!(!called);
    }

    #[test]
    fn triangle_inequality_spot_check() {
        // All three provided metrics must satisfy the triangle inequality,
        // which the EDDPC filters depend on.
        let pts = [[0.0, 0.0], [1.0, 2.0], [-3.0, 0.5]];
        for kind in [
            DistanceKind::Euclidean,
            DistanceKind::Manhattan,
            DistanceKind::Chebyshev,
        ] {
            let ab = kind.eval(&pts[0], &pts[1]);
            let bc = kind.eval(&pts[1], &pts[2]);
            let ac = kind.eval(&pts[0], &pts[2]);
            assert!(
                ac <= ab + bc + 1e-12,
                "{kind:?} violates triangle inequality"
            );
        }
    }
}
