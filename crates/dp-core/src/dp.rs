//! Exact sequential Density Peaks (the O(N²) reference algorithm).
//!
//! This is the ground truth the distributed pipelines are validated against:
//! Basic-DDP must match it bit-for-bit, LSH-DDP approximately (quantified by
//! `tau1`/`tau2` from [`crate::quality`]).

use crate::distance::DistanceTracker;
use crate::point::{Dataset, PointId};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Sentinel upslope id for the absolute density peak (no denser point).
pub const NO_UPSLOPE: PointId = PointId::MAX;

/// Canonical "denser than" total order.
///
/// The paper defines `delta_i` over points with *strictly higher* density.
/// With integer densities, ties are common; every point sharing the maximum
/// density would then become an "absolute peak". To keep the algorithm
/// deterministic — one of DP's advertised properties — and to make the
/// distributed computations agree with the sequential reference, ties are
/// broken by point id: `j` is denser than `i` iff
/// `rho_j > rho_i  ||  (rho_j == rho_i && j > i)`.
///
/// Exactly one point (max `(rho, id)` lexicographically) has no denser
/// point; it is the absolute density peak.
#[inline]
pub fn denser(rho_j: u32, j: PointId, rho_i: u32, i: PointId) -> bool {
    rho_j > rho_i || (rho_j == rho_i && j > i)
}

/// Output of a Density Peaks computation: per-point `rho`, `delta`, and the
/// upslope point id (Eq. 1–2 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DpResult {
    /// The cutoff distance the densities were computed with.
    pub dc: f64,
    /// Local densities: `rho[i]` = number of points within `dc` of `i`.
    pub rho: Vec<u32>,
    /// Separations: `delta[i]` = distance to the nearest denser point; for
    /// the absolute peak, the maximum distance from it to any other point.
    pub delta: Vec<f64>,
    /// Upslope ids: the denser point realizing `delta[i]`; [`NO_UPSLOPE`]
    /// for the absolute peak (and, in *approximate* results, for points that
    /// looked like absolute peaks in every local partition).
    pub upslope: Vec<PointId>,
}

impl DpResult {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.rho.len()
    }

    /// Whether the result covers no points.
    pub fn is_empty(&self) -> bool {
        self.rho.is_empty()
    }

    /// `gamma[i] = rho_norm[i] * delta_norm[i]` — the product criterion used
    /// for automatic top-k peak picking on the decision graph. Infinite or
    /// rectified deltas participate with the maximum finite value.
    pub fn gamma(&self) -> Vec<f64> {
        let max_rho = self.rho.iter().copied().max().unwrap_or(0).max(1) as f64;
        let max_delta = self
            .delta
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .fold(0.0_f64, f64::max)
            .max(f64::MIN_POSITIVE);
        self.rho
            .iter()
            .zip(self.delta.iter())
            .map(|(&r, &d)| {
                let d = if d.is_finite() { d } else { max_delta };
                (r as f64 / max_rho) * (d / max_delta)
            })
            .collect()
    }

    /// Replaces non-finite `delta` values with the maximum finite `delta`
    /// (the paper rectifies infinite deltas before drawing the decision
    /// graph); returns which entries were rectified.
    pub fn rectify_infinite_delta(&mut self) -> Vec<bool> {
        let max_finite = self
            .delta
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .fold(0.0_f64, f64::max);
        self.delta
            .iter_mut()
            .map(|d| {
                if d.is_finite() {
                    false
                } else {
                    *d = max_finite;
                    true
                }
            })
            .collect()
    }
}

/// Computes exact DP (`rho`, `delta`, upslope) with Euclidean distance.
///
/// # Panics
/// Panics if the dataset is empty or `dc` is not positive and finite.
pub fn compute_exact(ds: &Dataset, dc: f64) -> DpResult {
    compute_exact_tracked(ds, dc, &DistanceTracker::new())
}

/// Computes exact DP, recording every distance evaluation in `tracker`.
///
/// Both phases are embarrassingly parallel over points and use Rayon.
/// Distance evaluations use the tracker's metric ([`DistanceKind`]).
pub fn compute_exact_tracked(ds: &Dataset, dc: f64, tracker: &DistanceTracker) -> DpResult {
    assert!(!ds.is_empty(), "cannot run DP on an empty dataset");
    assert!(
        dc.is_finite() && dc > 0.0,
        "d_c must be positive and finite, got {dc}"
    );
    let n = ds.len();
    let kind = tracker.kind();

    // Phase 1: rho. For the Euclidean metric compare squared distances to
    // avoid N² square roots.
    let rho: Vec<u32> = (0..n as PointId)
        .into_par_iter()
        .map(|i| {
            let pi = ds.point(i);
            let mut count = 0u32;
            for (j, pj) in ds.iter() {
                if j != i && kind.within(pi, pj, dc) {
                    count += 1;
                }
            }
            tracker.add(n as u64 - 1);
            count
        })
        .collect();

    // Phase 2: delta + upslope under the canonical denser-than order.
    let mut delta = vec![0.0f64; n];
    let mut upslope = vec![NO_UPSLOPE; n];
    let pairs: Vec<(f64, PointId)> = (0..n as PointId)
        .into_par_iter()
        .map(|i| {
            let pi = ds.point(i);
            let rho_i = rho[i as usize];
            let mut best = f64::INFINITY;
            let mut best_j = NO_UPSLOPE;
            let mut max_d = 0.0f64;
            for (j, pj) in ds.iter() {
                if j == i {
                    continue;
                }
                let d = kind.eval(pi, pj);
                max_d = max_d.max(d);
                if denser(rho[j as usize], j, rho_i, i) && (d < best || (d == best && j < best_j)) {
                    best = d;
                    best_j = j;
                }
            }
            tracker.add(n as u64 - 1);
            if best_j == NO_UPSLOPE {
                // Absolute density peak: delta is its max distance to anyone.
                (max_d, NO_UPSLOPE)
            } else {
                (best, best_j)
            }
        })
        .collect();
    for (i, (d, u)) in pairs.into_iter().enumerate() {
        delta[i] = d;
        upslope[i] = u;
    }

    DpResult {
        dc,
        rho,
        delta,
        upslope,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three points on a line at 0, 1, 10 with dc = 1.5:
    /// rho = [1, 1, 0]; densest (tie id-broken) is point 1.
    fn tiny() -> Dataset {
        Dataset::from_flat(1, vec![0.0, 1.0, 10.0])
    }

    #[test]
    fn rho_counts_dc_neighbors_strictly() {
        let r = compute_exact(&tiny(), 1.5);
        assert_eq!(r.rho, vec![1, 1, 0]);
    }

    #[test]
    fn rho_threshold_is_strict() {
        // Distance exactly dc must NOT count (chi(x) = 1 iff x < 0).
        let ds = Dataset::from_flat(1, vec![0.0, 1.0]);
        let r = compute_exact(&ds, 1.0);
        assert_eq!(r.rho, vec![0, 0]);
    }

    #[test]
    fn tie_break_by_id_gives_single_absolute_peak() {
        let r = compute_exact(&tiny(), 1.5);
        // Points 0 and 1 tie on rho=1; id 1 wins, so 1 is the absolute peak.
        assert_eq!(r.upslope[1], NO_UPSLOPE);
        assert_eq!(r.delta[1], 9.0); // max distance from point 1
        assert_eq!(r.upslope[0], 1);
        assert_eq!(r.delta[0], 1.0);
        // Point 2 (rho 0): nearest denser is point 1 at distance 9.
        assert_eq!(r.upslope[2], 1);
        assert_eq!(r.delta[2], 9.0);
    }

    #[test]
    fn two_blob_structure() {
        // Blob A: 0.0, 0.1, 0.2 — blob B: 100.0, 100.1.
        let ds = Dataset::from_flat(1, vec![0.0, 0.1, 0.2, 100.0, 100.1]);
        let r = compute_exact(&ds, 0.15);
        assert_eq!(r.rho, vec![1, 2, 1, 1, 1]);
        // Point 1 is the absolute peak (highest rho).
        assert_eq!(r.upslope[1], NO_UPSLOPE);
        // Blob-B points chain within blob B (4 denser than 3 by id tie-break)
        assert_eq!(r.upslope[3], 4);
        assert!((r.delta[3] - 0.1).abs() < 1e-12);
        // Point 4's nearest denser point is far away, across blobs.
        assert!(r.delta[4] > 50.0);
    }

    #[test]
    fn denser_order_is_total_and_antisymmetric() {
        for (rj, j, ri, i) in [(5u32, 3u32, 4u32, 9u32), (5, 3, 5, 2), (5, 3, 5, 4)] {
            let a = denser(rj, j, ri, i);
            let b = denser(ri, i, rj, j);
            assert!(
                a != b,
                "denser must order every distinct pair exactly one way"
            );
        }
    }

    #[test]
    fn gamma_is_normalized_product() {
        let r = compute_exact(&tiny(), 1.5);
        let g = r.gamma();
        assert_eq!(g.len(), 3);
        // The absolute peak has max rho and max delta -> gamma = 1.
        assert!((g[1] - 1.0).abs() < 1e-12);
        for v in &g {
            assert!(*v >= 0.0 && *v <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn rectify_infinite_delta_replaces_with_max_finite() {
        let mut r = DpResult {
            dc: 1.0,
            rho: vec![3, 2, 1],
            delta: vec![f64::INFINITY, 2.0, 0.5],
            upslope: vec![NO_UPSLOPE, 0, 1],
        };
        let rect = r.rectify_infinite_delta();
        assert_eq!(rect, vec![true, false, false]);
        assert_eq!(r.delta, vec![2.0, 2.0, 0.5]);
    }

    #[test]
    fn tracker_records_quadratic_distance_count() {
        let ds = tiny();
        let t = DistanceTracker::new();
        let _ = compute_exact_tracked(&ds, 1.5, &t);
        // rho phase: n*(n-1) + delta phase: n*(n-1)
        assert_eq!(t.total(), 2 * 3 * 2);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn rejects_empty() {
        let _ = compute_exact(&Dataset::new(2), 1.0);
    }

    #[test]
    #[should_panic(expected = "d_c must be positive")]
    fn rejects_nonpositive_dc() {
        let _ = compute_exact(&tiny(), 0.0);
    }

    #[test]
    fn single_point_dataset() {
        let ds = Dataset::from_flat(2, vec![1.0, 1.0]);
        let r = compute_exact(&ds, 1.0);
        assert_eq!(r.rho, vec![0]);
        assert_eq!(r.upslope, vec![NO_UPSLOPE]);
        assert_eq!(r.delta, vec![0.0]);
    }
}
