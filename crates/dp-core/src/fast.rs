//! Accelerated sequential DP — the two §II-A optimizations.
//!
//! The paper notes that a sequential implementation can be improved with
//! techniques "orthogonal to our proposed techniques":
//!
//! 1. **Triangle-inequality filtering for `rho`.** Precompute every
//!    point's distances to a small set of pivots; then
//!    `|d(i, p) − d(j, p)| ≤ d(i, j)` for any pivot `p`, so a pair whose
//!    best pivot bound already reaches `d_c` cannot be a neighbor pair
//!    and is skipped without evaluating the real distance.
//! 2. **Sorted-`rho` scan for `delta`.** Sort points by descending
//!    density; `delta_i` only needs the points *ahead* of `i` in that
//!    order, and the same pivot lower bound prunes candidates that
//!    cannot beat the current best.
//!
//! The results are **bit-identical** to [`crate::dp::compute_exact`]
//! (property-tested); only the number of distance evaluations changes.
//! The [`DistanceTracker`] counts real distance evaluations, so the
//! savings are measurable (see `benches/distance_kernels.rs`).

use crate::distance::DistanceTracker;
use crate::dp::{denser, DpResult, NO_UPSLOPE};
use crate::point::{Dataset, PointId};

/// Pivot distance table for triangle-inequality bounds.
struct PivotTable {
    /// Row-major `N × P` distances.
    dists: Vec<f64>,
    p: usize,
}

impl PivotTable {
    /// Builds the table with `p` evenly strided pivots, charging `N × p`
    /// distance evaluations.
    fn build(ds: &Dataset, p: usize, tracker: &DistanceTracker) -> Self {
        let n = ds.len();
        let p = p.clamp(1, n);
        let stride = (n / p).max(1);
        let pivots: Vec<&[f64]> = (0..p)
            .map(|k| ds.point(((k * stride) % n) as PointId))
            .collect();
        let mut dists = Vec::with_capacity(n * p);
        for (_, point) in ds.iter() {
            for pv in &pivots {
                dists.push(tracker.distance(pv, point));
            }
        }
        PivotTable { dists, p }
    }

    /// Lower bound on `d(i, j)`: `max_p |d(i,p) − d(j,p)|`.
    #[inline]
    fn lower_bound(&self, i: PointId, j: PointId) -> f64 {
        let a = &self.dists[i as usize * self.p..(i as usize + 1) * self.p];
        let b = &self.dists[j as usize * self.p..(j as usize + 1) * self.p];
        let mut lb = 0.0f64;
        for (x, y) in a.iter().zip(b) {
            let d = (x - y).abs();
            if d > lb {
                lb = d;
            }
        }
        lb
    }
}

/// Accelerated exact DP; identical output to [`crate::dp::compute_exact`].
///
/// `n_pivots` controls the filter strength (≈8–16 is a good default; more
/// pivots prune harder but cost `N` distance evaluations each).
pub fn compute_exact_fast(ds: &Dataset, dc: f64, n_pivots: usize) -> DpResult {
    compute_exact_fast_tracked(ds, dc, n_pivots, &DistanceTracker::new())
}

/// Accelerated exact DP with distance accounting.
pub fn compute_exact_fast_tracked(
    ds: &Dataset,
    dc: f64,
    n_pivots: usize,
    tracker: &DistanceTracker,
) -> DpResult {
    assert!(!ds.is_empty(), "cannot run DP on an empty dataset");
    assert!(
        dc.is_finite() && dc > 0.0,
        "d_c must be positive and finite, got {dc}"
    );
    let n = ds.len();
    let kind = tracker.kind();
    let pivots = PivotTable::build(ds, n_pivots, tracker);

    // ---- rho with triangle filtering -------------------------------
    let mut rho = vec![0u32; n];
    for i in 0..n as PointId {
        let pi = ds.point(i);
        for j in (i + 1)..n as PointId {
            if pivots.lower_bound(i, j) >= dc {
                continue; // cannot be within d_c
            }
            if tracker.within(pi, ds.point(j), dc) {
                rho[i as usize] += 1;
                rho[j as usize] += 1;
            }
        }
    }

    // ---- delta with a sorted-density scan --------------------------
    // Descending canonical density order; position in this order is the
    // number of denser points.
    let mut order: Vec<PointId> = (0..n as PointId).collect();
    order.sort_by(|&a, &b| {
        if denser(rho[a as usize], a, rho[b as usize], b) {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    });

    let mut delta = vec![0.0f64; n];
    let mut upslope = vec![NO_UPSLOPE; n];
    for (pos, &i) in order.iter().enumerate() {
        let pi = ds.point(i);
        if pos == 0 {
            // The absolute peak: delta = max distance to anyone.
            let mut max_d = 0.0f64;
            for (j, pj) in ds.iter() {
                if j != i {
                    max_d = max_d.max(tracker.distance(pi, pj));
                }
            }
            delta[i as usize] = max_d;
            continue;
        }
        let mut best = f64::INFINITY;
        let mut best_j = NO_UPSLOPE;
        for &j in &order[..pos] {
            // Pivot bound: j cannot improve on the current best.
            if pivots.lower_bound(i, j) >= best {
                continue;
            }
            let d = kind.eval(pi, ds.point(j));
            tracker.add(1);
            if d < best || (d == best && j < best_j) {
                best = d;
                best_j = j;
            }
        }
        delta[i as usize] = best;
        upslope[i as usize] = best_j;
    }

    DpResult {
        dc,
        rho,
        delta,
        upslope,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::compute_exact;

    fn clustered(n_per: usize) -> Dataset {
        let mut ds = Dataset::new(2);
        for (cx, cy) in [(0.0, 0.0), (30.0, 5.0), (10.0, 40.0)] {
            for k in 0..n_per {
                // Deterministic spiral-ish spread inside each blob.
                let t = k as f64 * 0.7;
                let r = 0.1 + (k as f64).sqrt() * 0.3;
                ds.push(&[cx + r * t.cos(), cy + r * t.sin()]);
            }
        }
        ds
    }

    #[test]
    fn identical_to_reference() {
        let ds = clustered(40);
        for dc in [0.5, 2.0, 10.0] {
            let slow = compute_exact(&ds, dc);
            for pivots in [1, 4, 12] {
                let fast = compute_exact_fast(&ds, dc, pivots);
                assert_eq!(fast.rho, slow.rho, "dc={dc} pivots={pivots}");
                assert_eq!(fast.upslope, slow.upslope, "dc={dc} pivots={pivots}");
                for (a, b) in fast.delta.iter().zip(&slow.delta) {
                    assert!((a - b).abs() < 1e-12, "dc={dc} pivots={pivots}");
                }
            }
        }
    }

    #[test]
    fn filter_saves_distance_evaluations() {
        let ds = clustered(60); // 180 points, 3 tight far-apart blobs
        let dc = 1.0;
        let t_slow = DistanceTracker::new();
        let _ = crate::dp::compute_exact_tracked(&ds, dc, &t_slow);
        let t_fast = DistanceTracker::new();
        let _ = compute_exact_fast_tracked(&ds, dc, 8, &t_fast);
        assert!(
            t_fast.total() < t_slow.total() / 2,
            "fast {} vs slow {}",
            t_fast.total(),
            t_slow.total()
        );
    }

    #[test]
    fn pivot_bound_is_valid() {
        let ds = clustered(20);
        let t = DistanceTracker::new();
        let pv = PivotTable::build(&ds, 6, &t);
        for i in 0..ds.len() as u32 {
            for j in 0..ds.len() as u32 {
                let lb = pv.lower_bound(i, j);
                let d = crate::distance::euclidean(ds.point(i), ds.point(j));
                assert!(lb <= d + 1e-9, "bound {lb} exceeds distance {d}");
            }
        }
    }

    mod properties {
        use super::*;
        use crate::distance::DistanceKind;
        use proptest::prelude::*;

        /// Tight, far-apart blobs in `dim` dimensions (offset along the
        /// first axis), deterministic in `seed` — shaped so the pivot
        /// bounds actually prune.
        fn blob_dataset(dim: usize, n_per: usize, seed: u64) -> Dataset {
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let mut ds = Dataset::new(dim);
            let mut p = vec![0.0f64; dim];
            for blob in 0..3 {
                for _ in 0..n_per {
                    for (d, slot) in p.iter_mut().enumerate() {
                        let center = if d == 0 { blob as f64 * 40.0 } else { 0.0 };
                        *slot = center + next() * 2.0 - 1.0;
                    }
                    ds.push(&p);
                }
            }
            ds
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// Across dimensionalities and metrics, the pivot-pruned path
            /// is bit-identical to the exhaustive reference and performs
            /// strictly fewer distance evaluations.
            #[test]
            fn pruned_path_is_identical_and_strictly_cheaper(
                seed in 1u64..10_000,
                dim_idx in 0usize..4,
                kind_idx in 0usize..2,
                n_per in 20usize..40,
                n_pivots in 2usize..10,
            ) {
                let dim = [1usize, 2, 8, 32][dim_idx];
                let kind = [DistanceKind::Euclidean, DistanceKind::Manhattan][kind_idx];
                let ds = blob_dataset(dim, n_per, seed);
                let dc = 0.8;

                let t_slow = DistanceTracker::with_kind(kind);
                let slow = crate::dp::compute_exact_tracked(&ds, dc, &t_slow);
                let t_fast = DistanceTracker::with_kind(kind);
                let fast = compute_exact_fast_tracked(&ds, dc, n_pivots, &t_fast);

                prop_assert_eq!(&fast.rho, &slow.rho, "dim={} kind={:?}", dim, kind);
                prop_assert_eq!(&fast.upslope, &slow.upslope, "dim={} kind={:?}", dim, kind);
                for (a, b) in fast.delta.iter().zip(&slow.delta) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "dim={} kind={:?}", dim, kind);
                }
                prop_assert!(
                    t_fast.total() < t_slow.total(),
                    "pruning must strictly reduce evals: fast {} vs slow {} (dim={} kind={:?})",
                    t_fast.total(), t_slow.total(), dim, kind
                );
            }
        }
    }

    #[test]
    fn works_on_tiny_inputs() {
        let ds = Dataset::from_flat(1, vec![0.0, 5.0]);
        let fast = compute_exact_fast(&ds, 1.0, 8);
        let slow = compute_exact(&ds, 1.0);
        assert_eq!(fast.rho, slow.rho);
        assert_eq!(fast.delta, slow.delta);
    }

    #[test]
    fn single_point() {
        let ds = Dataset::from_flat(3, vec![1.0, 2.0, 3.0]);
        let fast = compute_exact_fast(&ds, 1.0, 4);
        assert_eq!(fast.rho, vec![0]);
        assert_eq!(fast.upslope, vec![NO_UPSLOPE]);
    }
}
