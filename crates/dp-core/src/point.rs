//! Flat, contiguous storage for fixed-dimension point sets.
//!
//! A [`Dataset`] stores all coordinates in one `Vec<f64>` so that the hot
//! O(N²) distance loops of Density Peaks stream linearly through memory.
//! Points are addressed by a dense [`PointId`] (`u32`), which is also the
//! identifier shuffled through the MapReduce pipelines.

use serde::{Deserialize, Serialize};

/// Identifier of a point inside a [`Dataset`].
///
/// `u32` bounds the supported dataset size at ~4.29 billion points — far
/// beyond the 11.6M-point BigCross set, while halving key shuffle bytes
/// compared to `u64`.
pub type PointId = u32;

/// A dense set of `dim`-dimensional points stored in row-major order.
///
/// ```
/// use dp_core::Dataset;
/// let mut ds = Dataset::new(2);
/// let id = ds.push(&[1.0, 2.0]);
/// assert_eq!(ds.point(id), &[1.0, 2.0]);
/// assert_eq!(ds.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    dim: usize,
    data: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset of dimensionality `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dataset dimensionality must be positive");
        Dataset {
            dim,
            data: Vec::new(),
        }
    }

    /// Creates an empty dataset with room for `n` points.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "dataset dimensionality must be positive");
        Dataset {
            dim,
            data: Vec::with_capacity(dim * n),
        }
    }

    /// Builds a dataset from row-major coordinates.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `dim`.
    pub fn from_flat(dim: usize, data: Vec<f64>) -> Self {
        assert!(dim > 0, "dataset dimensionality must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "flat data length {} is not a multiple of dim {}",
            data.len(),
            dim
        );
        Dataset { dim, data }
    }

    /// Builds a dataset from an iterator of rows.
    ///
    /// # Panics
    /// Panics if any row's length differs from `dim`.
    pub fn from_rows<'a, I>(dim: usize, rows: I) -> Self
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let mut ds = Dataset::new(dim);
        for row in rows {
            ds.push(row);
        }
        ds
    }

    /// Appends one point; returns its id.
    ///
    /// # Panics
    /// Panics if `coords.len() != self.dim()`.
    pub fn push(&mut self, coords: &[f64]) -> PointId {
        assert_eq!(
            coords.len(),
            self.dim,
            "point dimensionality {} does not match dataset dim {}",
            coords.len(),
            self.dim
        );
        let id = self.len() as PointId;
        self.data.extend_from_slice(coords);
        id
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the dataset holds no points.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality of every point.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Coordinates of point `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn point(&self, id: PointId) -> &[f64] {
        let i = id as usize * self.dim;
        &self.data[i..i + self.dim]
    }

    /// Coordinates of point `id`, or `None` when out of bounds.
    pub fn get(&self, id: PointId) -> Option<&[f64]> {
        if (id as usize) < self.len() {
            Some(self.point(id))
        } else {
            None
        }
    }

    /// Iterator over `(id, coords)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, &[f64])> {
        self.data
            .chunks_exact(self.dim)
            .enumerate()
            .map(|(i, c)| (i as PointId, c))
    }

    /// All point ids, `0..len`.
    pub fn ids(&self) -> impl Iterator<Item = PointId> + use<> {
        0..self.len() as PointId
    }

    /// Raw row-major coordinate storage.
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Returns a new dataset containing only the points in `ids`,
    /// in the given order.
    pub fn subset(&self, ids: &[PointId]) -> Dataset {
        let mut out = Dataset::with_capacity(self.dim, ids.len());
        for &id in ids {
            out.push(self.point(id));
        }
        out
    }

    /// Per-dimension minima and maxima; `None` for an empty dataset.
    pub fn bounds(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        if self.is_empty() {
            return None;
        }
        let mut lo = self.point(0).to_vec();
        let mut hi = lo.clone();
        for (_, p) in self.iter().skip(1) {
            for d in 0..self.dim {
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        Some((lo, hi))
    }

    /// Rescales every dimension into `[0, 1]` (min-max normalization),
    /// leaving constant dimensions at `0`.
    ///
    /// Normalization is what the paper's preprocessing applies to the
    /// UCI-style data sets so that one global `d_c` is meaningful.
    pub fn normalize_min_max(&mut self) {
        let Some((lo, hi)) = self.bounds() else {
            return;
        };
        let dim = self.dim;
        for (d, (l, h)) in lo.iter().zip(hi.iter()).enumerate() {
            let range = h - l;
            if range > 0.0 {
                for row in self.data.chunks_exact_mut(dim) {
                    row[d] = (row[d] - l) / range;
                }
            } else {
                for row in self.data.chunks_exact_mut(dim) {
                    row[d] = 0.0;
                }
            }
        }
    }

    /// Estimated serialized size of a single point record in bytes:
    /// 4 (id) + 8·dim (coordinates). Used for shuffle-cost accounting.
    pub fn point_record_bytes(&self) -> usize {
        4 + 8 * self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut ds = Dataset::new(3);
        let a = ds.push(&[1.0, 2.0, 3.0]);
        let b = ds.push(&[4.0, 5.0, 6.0]);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.point(0), &[1.0, 2.0, 3.0]);
        assert_eq!(ds.point(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_flat_round_trip() {
        let ds = Dataset::from_flat(2, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.point(1), &[2.0, 3.0]);
        assert_eq!(ds.as_flat(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_rejects_ragged() {
        let _ = Dataset::from_flat(3, vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "does not match dataset dim")]
    fn push_rejects_wrong_dim() {
        let mut ds = Dataset::new(2);
        ds.push(&[1.0]);
    }

    #[test]
    fn get_handles_out_of_bounds() {
        let ds = Dataset::from_flat(1, vec![5.0]);
        assert_eq!(ds.get(0), Some(&[5.0][..]));
        assert_eq!(ds.get(1), None);
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let ds = Dataset::from_flat(1, vec![9.0, 8.0, 7.0]);
        let collected: Vec<_> = ds.iter().map(|(id, p)| (id, p[0])).collect();
        assert_eq!(collected, vec![(0, 9.0), (1, 8.0), (2, 7.0)]);
    }

    #[test]
    fn subset_preserves_order() {
        let ds = Dataset::from_flat(1, vec![10.0, 20.0, 30.0, 40.0]);
        let sub = ds.subset(&[3, 1]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.point(0), &[40.0]);
        assert_eq!(sub.point(1), &[20.0]);
    }

    #[test]
    fn bounds_and_normalize() {
        let mut ds = Dataset::from_flat(2, vec![0.0, 10.0, 4.0, 30.0, 2.0, 20.0]);
        let (lo, hi) = ds.bounds().unwrap();
        assert_eq!(lo, vec![0.0, 10.0]);
        assert_eq!(hi, vec![4.0, 30.0]);
        ds.normalize_min_max();
        assert_eq!(ds.point(0), &[0.0, 0.0]);
        assert_eq!(ds.point(1), &[1.0, 1.0]);
        assert_eq!(ds.point(2), &[0.5, 0.5]);
    }

    #[test]
    fn normalize_constant_dimension_becomes_zero() {
        let mut ds = Dataset::from_flat(2, vec![3.0, 1.0, 3.0, 2.0]);
        ds.normalize_min_max();
        assert_eq!(ds.point(0)[0], 0.0);
        assert_eq!(ds.point(1)[0], 0.0);
    }

    #[test]
    fn normalize_empty_is_noop() {
        let mut ds = Dataset::new(2);
        ds.normalize_min_max();
        assert!(ds.is_empty());
    }

    #[test]
    fn record_bytes_accounting() {
        let ds = Dataset::new(57);
        assert_eq!(ds.point_record_bytes(), 4 + 8 * 57);
    }
}
