//! Decision graph, density-peak selection, and cluster assignment.
//!
//! The paper deliberately keeps peak selection interactive: the `(rho,
//! delta)` decision graph is a 2-D summary of an arbitrarily
//! high-dimensional data set, and the user picks the outliers in its
//! top-right region (§III-A, Step 3). This module supports that workflow
//! ([`DecisionGraph`] + [`select_by_threshold`]) and also the common
//! automatic criterion ([`select_top_k`] by the normalized product
//! `gamma = rho * delta`).

use crate::dp::{denser, DpResult, NO_UPSLOPE};
use crate::point::PointId;
use serde::{Deserialize, Serialize};

/// One point of the decision graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionPoint {
    /// Point id.
    pub id: PointId,
    /// Local density.
    pub rho: u32,
    /// Separation (already rectified: always finite).
    pub delta: f64,
    /// Whether this delta was rectified from an infinite local value —
    /// i.e. no denser point was found; such points are peak candidates.
    pub rectified: bool,
}

/// The `(rho, delta)` scatter the user inspects to pick cluster centers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionGraph {
    points: Vec<DecisionPoint>,
}

impl DecisionGraph {
    /// Builds the graph from a DP result, rectifying infinite deltas to the
    /// maximum finite delta as the paper prescribes.
    pub fn from_result(result: &DpResult) -> Self {
        let mut r = result.clone();
        let rectified = r.rectify_infinite_delta();
        let points = r
            .rho
            .iter()
            .zip(r.delta.iter())
            .zip(rectified.iter())
            .enumerate()
            .map(|(i, ((&rho, &delta), &rect))| DecisionPoint {
                id: i as PointId,
                rho,
                delta,
                rectified: rect,
            })
            .collect();
        DecisionGraph { points }
    }

    /// All decision points, in id order.
    pub fn points(&self) -> &[DecisionPoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Serializes the graph as `id,rho,delta,rectified` CSV rows — the
    /// format the figure binaries print so the paper's Figure 7 can be
    /// re-plotted.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("id,rho,delta,rectified\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{},{}\n",
                p.id, p.rho, p.delta, p.rectified as u8
            ));
        }
        out
    }

    /// Suggests `(rho_min, delta_min)` thresholds as a starting point for
    /// interactive refinement (not an oracle).
    ///
    /// `delta_min` is the midpoint of the largest gap in the sorted `delta`
    /// values — decision graphs of clusterable data show a wide empty band
    /// between the peaks' deltas and everyone else's. `rho_min` is zero so
    /// that low-density but well-separated peaks are not discarded.
    pub fn suggest_thresholds(&self) -> (u32, f64) {
        assert!(!self.points.is_empty(), "empty decision graph");
        let mut deltas: Vec<f64> = self.points.iter().map(|p| p.delta).collect();
        deltas.sort_by(|a, b| a.partial_cmp(b).expect("finite deltas"));
        let mut best_gap = 0.0;
        let mut cut = *deltas.last().expect("non-empty");
        for w in deltas.windows(2) {
            let gap = w[1] - w[0];
            if gap >= best_gap {
                best_gap = gap;
                cut = (w[0] + w[1]) / 2.0;
            }
        }
        (0, cut)
    }
}

/// Selects every point with `rho > rho_min` and `delta > delta_min` as a
/// density peak — the manual rectangle the user draws on the decision graph.
pub fn select_by_threshold(result: &DpResult, rho_min: u32, delta_min: f64) -> Vec<PointId> {
    let graph = DecisionGraph::from_result(result);
    graph
        .points()
        .iter()
        .filter(|p| p.rho > rho_min && p.delta > delta_min)
        .map(|p| p.id)
        .collect()
}

/// Selects the `k` points with the largest `gamma = rho_norm * delta_norm`
/// as density peaks. Deterministic: ties broken by id.
pub fn select_top_k(result: &DpResult, k: usize) -> Vec<PointId> {
    let gamma = result.gamma();
    let mut ids: Vec<PointId> = (0..result.len() as PointId).collect();
    ids.sort_by(|&a, &b| {
        gamma[b as usize]
            .partial_cmp(&gamma[a as usize])
            .expect("gamma is finite")
            .then(a.cmp(&b))
    });
    ids.truncate(k);
    ids.sort_unstable();
    ids
}

/// A hard clustering: one label per point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clustering {
    labels: Vec<u32>,
    n_clusters: u32,
}

impl Clustering {
    /// Builds a clustering from raw labels in `0..n_clusters`.
    ///
    /// # Panics
    /// Panics if any label is out of range.
    pub fn from_labels(labels: Vec<u32>, n_clusters: u32) -> Self {
        assert!(
            labels.iter().all(|&l| l < n_clusters),
            "label out of range (n_clusters = {n_clusters})"
        );
        Clustering { labels, n_clusters }
    }

    /// Cluster label of point `i`.
    pub fn label(&self, i: PointId) -> u32 {
        self.labels[i as usize]
    }

    /// All labels, indexed by point id.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Number of clusters.
    pub fn n_clusters(&self) -> u32 {
        self.n_clusters
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the clustering covers no points.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Per-cluster sizes, indexed by label.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.n_clusters as usize];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }
}

/// Assigns every point to a cluster by following the upslope chain from the
/// selected `peaks` (paper §III-A Step 3, Figure 1d).
///
/// Points are visited in descending density order (the canonical
/// [`denser`] order), so each point's upslope has already been labeled.
/// A point whose upslope is [`NO_UPSLOPE`] (the absolute peak, or an
/// approximate result's stranded candidates) that was *not* selected as a
/// peak is attached to the nearest-by-id selected peak's cluster via the
/// first peak — in exact DP this situation only arises when the user
/// excludes the absolute peak from the selection.
///
/// # Panics
/// Panics if `peaks` is empty or contains duplicate/out-of-range ids.
pub fn assign(result: &DpResult, peaks: &[PointId]) -> Clustering {
    assert!(!peaks.is_empty(), "at least one density peak is required");
    let n = result.len();
    let mut peak_cluster = vec![u32::MAX; n];
    for (c, &p) in peaks.iter().enumerate() {
        let slot = &mut peak_cluster[p as usize];
        assert!(*slot == u32::MAX, "duplicate peak id {p}");
        *slot = c as u32;
    }

    // Descending canonical density order.
    let mut order: Vec<PointId> = (0..n as PointId).collect();
    order.sort_by(|&a, &b| {
        if denser(result.rho[a as usize], a, result.rho[b as usize], b) {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    });

    let mut labels = vec![u32::MAX; n];
    for &i in &order {
        let idx = i as usize;
        labels[idx] = if peak_cluster[idx] != u32::MAX {
            peak_cluster[idx]
        } else {
            match result.upslope[idx] {
                NO_UPSLOPE => 0, // stranded candidate not chosen as a peak
                u => {
                    let lbl = labels[u as usize];
                    debug_assert!(
                        lbl != u32::MAX,
                        "upslope point {u} of {i} not yet labeled — denser order violated"
                    );
                    lbl
                }
            }
        };
    }

    Clustering::from_labels(labels, peaks.len() as u32)
}

/// Cluster-halo detection from the original DP paper (Rodriguez & Laio
/// 2014): within each cluster, the *border region* is the set of points
/// within `d_c` of a point assigned to a different cluster; the cluster's
/// halo is every member whose density does not exceed the maximum
/// border-region density. Halo points are reliable cluster cores'
/// complement — noise and boundary points — and are reported as `true`.
///
/// The original formulation compares continuous (Gaussian-kernel)
/// densities strictly; with Eq. 1's integer densities the border points
/// themselves tie the bound, so the comparison here is inclusive
/// (`rho <= border_rho`), which keeps the border points in the halo.
///
/// O(N²) distance work; intended for the centralized step, where the
/// paper also computes it.
pub fn compute_halo(
    ds: &crate::point::Dataset,
    result: &DpResult,
    clustering: &Clustering,
) -> Vec<bool> {
    assert_eq!(ds.len(), result.len(), "result must cover the dataset");
    assert_eq!(
        ds.len(),
        clustering.len(),
        "clustering must cover the dataset"
    );
    let n = ds.len();
    let k = clustering.n_clusters() as usize;
    // Max density seen in each cluster's border region.
    let mut border_rho = vec![0u32; k];
    for i in 0..n {
        let pi = ds.point(i as PointId);
        let ci = clustering.label(i as PointId) as usize;
        for j in (i + 1)..n {
            let cj = clustering.label(j as PointId) as usize;
            if ci == cj {
                continue;
            }
            if crate::distance::euclidean(pi, ds.point(j as PointId)) < result.dc {
                // The ORIGINAL DP code uses the average density of the
                // cross-boundary pair as the bound candidate.
                let avg = (result.rho[i] + result.rho[j]) / 2;
                border_rho[ci] = border_rho[ci].max(avg);
                border_rho[cj] = border_rho[cj].max(avg);
            }
        }
    }
    (0..n)
        .map(|i| {
            let b = border_rho[clustering.label(i as PointId) as usize];
            b > 0 && result.rho[i] <= b
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::compute_exact;
    use crate::point::Dataset;

    fn two_blobs() -> Dataset {
        // Blob A around 0, blob B around 100 (1-D).
        Dataset::from_flat(1, vec![0.0, 0.1, 0.2, 0.3, 0.4, 100.0, 100.1, 100.2, 100.3])
    }

    #[test]
    fn top_k_finds_both_blob_centers() {
        let ds = two_blobs();
        let r = compute_exact(&ds, 0.25);
        let peaks = select_top_k(&r, 2);
        assert_eq!(peaks.len(), 2);
        // One peak per blob.
        let in_a = peaks.iter().filter(|&&p| p < 5).count();
        let in_b = peaks.iter().filter(|&&p| p >= 5).count();
        assert_eq!((in_a, in_b), (1, 1));
    }

    #[test]
    fn assignment_separates_blobs() {
        let ds = two_blobs();
        let r = compute_exact(&ds, 0.25);
        let peaks = select_top_k(&r, 2);
        let c = assign(&r, &peaks);
        assert_eq!(c.n_clusters(), 2);
        for i in 0..5 {
            assert_eq!(c.label(i), c.label(0), "blob A must be one cluster");
        }
        for i in 5..9 {
            assert_eq!(c.label(i), c.label(5), "blob B must be one cluster");
        }
        assert_ne!(c.label(0), c.label(5));
        let mut sizes = c.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![4, 5]);
    }

    #[test]
    fn threshold_selection_matches_rectangle() {
        let ds = two_blobs();
        let r = compute_exact(&ds, 0.25);
        let g = DecisionGraph::from_result(&r);
        // The two blob centers have delta ~100 (cross-blob); everyone else
        // has delta <= 0.4.
        let peaks = select_by_threshold(&r, 0, 1.0);
        assert_eq!(peaks.len(), 2);
        // Exact DP assigns the absolute peak a finite max-distance delta,
        // so nothing needed rectification.
        assert!(g.points().iter().all(|p| !p.rectified));
    }

    #[test]
    fn decision_graph_is_finite_and_csv_exports() {
        let ds = two_blobs();
        let r = compute_exact(&ds, 0.25);
        let g = DecisionGraph::from_result(&r);
        assert_eq!(g.len(), ds.len());
        assert!(g.points().iter().all(|p| p.delta.is_finite()));
        let csv = g.to_csv();
        assert!(csv.starts_with("id,rho,delta,rectified\n"));
        assert_eq!(csv.lines().count(), ds.len() + 1);
    }

    #[test]
    fn suggest_thresholds_flags_outlier_deltas() {
        let ds = two_blobs();
        let r = compute_exact(&ds, 0.25);
        let g = DecisionGraph::from_result(&r);
        let (_rho_min, delta_min) = g.suggest_thresholds();
        let peaks = select_by_threshold(&r, 0, delta_min);
        assert_eq!(peaks.len(), 2);
    }

    #[test]
    fn single_cluster_assignment() {
        let ds = Dataset::from_flat(1, vec![0.0, 0.1, 0.2]);
        let r = compute_exact(&ds, 0.15);
        let peaks = select_top_k(&r, 1);
        let c = assign(&r, &peaks);
        assert_eq!(c.n_clusters(), 1);
        assert!(c.labels().iter().all(|&l| l == 0));
    }

    #[test]
    #[should_panic(expected = "at least one density peak")]
    fn assign_rejects_empty_peaks() {
        let ds = two_blobs();
        let r = compute_exact(&ds, 0.25);
        let _ = assign(&r, &[]);
    }

    #[test]
    #[should_panic(expected = "duplicate peak")]
    fn assign_rejects_duplicate_peaks() {
        let ds = two_blobs();
        let r = compute_exact(&ds, 0.25);
        let _ = assign(&r, &[1, 1]);
    }

    #[test]
    fn stranded_candidate_defaults_to_first_peak_cluster() {
        // Hand-build an approximate result where point 2 has NO_UPSLOPE but
        // is not selected as a peak.
        let r = DpResult {
            dc: 1.0,
            rho: vec![5, 3, 4],
            delta: vec![10.0, 1.0, f64::INFINITY],
            upslope: vec![NO_UPSLOPE, 0, NO_UPSLOPE],
        };
        let c = assign(&r, &[0]);
        assert_eq!(c.labels(), &[0, 0, 0]);
    }

    #[test]
    fn halo_is_empty_for_well_separated_blobs() {
        let ds = two_blobs();
        let r = compute_exact(&ds, 0.25);
        let peaks = select_top_k(&r, 2);
        let c = assign(&r, &peaks);
        let halo = compute_halo(&ds, &r, &c);
        // No cross-cluster pair is within dc, so no border region at all.
        assert!(halo.iter().all(|&h| !h));
    }

    #[test]
    fn halo_flags_bridge_points_between_touching_blobs() {
        // Two blobs connected by a sparse bridge; the bridge points (low
        // rho, within dc of the other cluster) must be halo.
        let mut ds = Dataset::new(1);
        for i in 0..20 {
            ds.push(&[i as f64 * 0.05]); // dense blob A: 0.00..0.95
        }
        ds.push(&[1.5]); // bridge point
        for i in 0..20 {
            ds.push(&[2.0 + i as f64 * 0.05]); // dense blob B
        }
        let r = compute_exact(&ds, 0.6);
        let peaks = select_top_k(&r, 2);
        let c = assign(&r, &peaks);
        let halo = compute_halo(&ds, &r, &c);
        assert!(halo[20], "the bridge point must be halo");
        // Blob cores (interior points) stay core.
        assert!(!halo[5], "blob A interior must be core");
        assert!(!halo[30], "blob B interior must be core");
    }

    #[test]
    #[should_panic(expected = "clustering must cover")]
    fn halo_rejects_mismatched_clustering() {
        let ds = two_blobs();
        let r = compute_exact(&ds, 0.25);
        let c = Clustering::from_labels(vec![0], 1);
        let _ = compute_halo(&ds, &r, &c);
    }

    #[test]
    fn select_top_k_is_deterministic_and_sorted() {
        let ds = two_blobs();
        let r = compute_exact(&ds, 0.25);
        let a = select_top_k(&r, 3);
        let b = select_top_k(&r, 3);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }
}
