//! Cutoff distance (`d_c`) estimation.
//!
//! `d_c` controls what "local" means in the density `rho`. Following the
//! original DP code and §III-A of the LSH-DDP paper, `d_c` is chosen so that
//! the average number of neighbors is a small fraction `t` (1%–2%) of the
//! data set: the `t`-quantile of the ascending set of all pairwise
//! distances.
//!
//! Computing all N(N-1)/2 distances is itself quadratic, so — exactly like
//! the paper's preprocessing MapReduce job — large data sets use *sampled*
//! estimation: a seeded subsample of point pairs whose distance quantile
//! approximates the population quantile.

use crate::distance::DistanceKind;
use crate::point::Dataset;

/// Default neighborhood fraction (2%, the value the paper uses).
pub const DEFAULT_PERCENTILE: f64 = 0.02;

/// Exact `d_c`: the `t`-quantile of all pairwise distances.
///
/// O(N²) time and O(N²) memory for the distance list; intended for data
/// sets up to a few tens of thousands of points and for validating the
/// sampled estimator.
///
/// # Panics
/// Panics if `t` is outside `(0, 1]` or the dataset has fewer than 2 points.
pub fn estimate_dc_exact(ds: &Dataset, t: f64) -> f64 {
    estimate_dc_exact_with(ds, t, DistanceKind::Euclidean)
}

/// Exact `d_c` under an arbitrary metric.
pub fn estimate_dc_exact_with(ds: &Dataset, t: f64, kind: DistanceKind) -> f64 {
    assert!(t > 0.0 && t <= 1.0, "percentile must be in (0, 1], got {t}");
    let n = ds.len();
    assert!(n >= 2, "need at least two points to estimate d_c");
    let mut dists = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        let pi = ds.point(i as u32);
        for j in (i + 1)..n {
            dists.push(kind.eval(pi, ds.point(j as u32)));
        }
    }
    quantile_in_place(&mut dists, t)
}

/// Sampled `d_c`: draws `samples` random point pairs (deterministic in
/// `seed`) and takes the `t`-quantile of their distances.
///
/// This mirrors the paper's preprocessing job, whose `map()` samples point
/// pairs and whose single `reduce()` sorts the sampled distances.
///
/// # Panics
/// Panics if `t` is outside `(0, 1]`, `samples == 0`, or the dataset has
/// fewer than 2 points.
pub fn estimate_dc_sampled(ds: &Dataset, t: f64, samples: usize, seed: u64) -> f64 {
    estimate_dc_sampled_with(ds, t, samples, seed, DistanceKind::Euclidean)
}

/// Sampled `d_c` under an arbitrary metric.
pub fn estimate_dc_sampled_with(
    ds: &Dataset,
    t: f64,
    samples: usize,
    seed: u64,
    kind: DistanceKind,
) -> f64 {
    assert!(t > 0.0 && t <= 1.0, "percentile must be in (0, 1], got {t}");
    assert!(samples > 0, "need at least one sample");
    let n = ds.len() as u64;
    assert!(n >= 2, "need at least two points to estimate d_c");

    // SplitMix64: tiny, seedable, and good enough for pair sampling without
    // pulling a rand dependency into this low-level crate.
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };

    let mut dists = Vec::with_capacity(samples);
    while dists.len() < samples {
        let i = (next() % n) as u32;
        let j = (next() % n) as u32;
        if i == j {
            continue;
        }
        dists.push(kind.eval(ds.point(i), ds.point(j)));
    }
    quantile_in_place(&mut dists, t)
}

/// The `t`-quantile of `values` (ascending), by selection; mutates order.
///
/// Uses the "nearest rank" definition the original DP code applies:
/// index `round(t * len) - 1`, clamped into range.
pub fn quantile_in_place(values: &mut [f64], t: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty slice");
    let len = values.len();
    let rank = ((t * len as f64).round() as usize).clamp(1, len) - 1;
    let (_, v, _) =
        values.select_nth_unstable_by(rank, |a, b| a.partial_cmp(b).expect("NaN distance"));
    *v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_dataset(n: usize) -> Dataset {
        // Points at 0, 1, 2, ..., n-1 on a line.
        Dataset::from_flat(1, (0..n).map(|i| i as f64).collect())
    }

    #[test]
    fn quantile_nearest_rank() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile_in_place(&mut v.clone(), 0.2), 1.0);
        assert_eq!(quantile_in_place(&mut v.clone(), 0.5), 3.0);
        assert_eq!(quantile_in_place(&mut v, 1.0), 5.0);
    }

    #[test]
    fn quantile_small_t_clamps_to_minimum() {
        let mut v = vec![9.0, 7.0, 8.0];
        assert_eq!(quantile_in_place(&mut v, 1e-9), 7.0);
    }

    #[test]
    fn exact_dc_on_line() {
        let ds = line_dataset(10);
        // Pairwise distances are 1..=9 with multiplicities 9,8,...,1 (45 total).
        // The 20%-quantile is the 9th smallest = 1.0.
        assert_eq!(estimate_dc_exact(&ds, 0.2), 1.0);
        // The maximum is 9.
        assert_eq!(estimate_dc_exact(&ds, 1.0), 9.0);
    }

    #[test]
    fn sampled_dc_approximates_exact() {
        let ds = line_dataset(200);
        let exact = estimate_dc_exact(&ds, 0.05);
        let sampled = estimate_dc_sampled(&ds, 0.05, 20_000, 42);
        let rel = (sampled - exact).abs() / exact;
        assert!(rel < 0.15, "sampled {sampled} vs exact {exact} (rel {rel})");
    }

    #[test]
    fn sampled_dc_is_deterministic_in_seed() {
        let ds = line_dataset(100);
        let a = estimate_dc_sampled(&ds, 0.02, 1000, 7);
        let b = estimate_dc_sampled(&ds, 0.02, 1000, 7);
        assert_eq!(a, b);
        let c = estimate_dc_sampled(&ds, 0.02, 1000, 8);
        // Different seed will generally pick a different sample set.
        // (Equality is possible but would be a coincidence on this data.)
        let _ = c;
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn rejects_zero_percentile() {
        let ds = line_dataset(10);
        let _ = estimate_dc_exact(&ds, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn rejects_single_point() {
        let ds = line_dataset(1);
        let _ = estimate_dc_exact(&ds, 0.5);
    }
}
