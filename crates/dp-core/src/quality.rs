//! Cluster validation and approximation-quality metrics.
//!
//! Two families:
//!
//! * **External validation** against ground-truth labels — Adjusted Rand
//!   Index, Normalized Mutual Information, purity, and pairwise F-measure.
//!   These back the paper's Figure 6 / Table III quality comparison and the
//!   "comparable cluster results" claims.
//! * **Approximation accuracy** of LSH-DDP's `rho` estimates — the paper's
//!   `tau1` (fraction of exactly-recovered densities) and `tau2`
//!   (1 − mean normalized absolute error), §VI-C, Figure 9.

use std::collections::HashMap;

/// Joint contingency table of two labelings over the same points.
#[derive(Debug, Clone)]
pub struct Contingency {
    /// `counts[(a, b)]` = number of points labeled `a` by the first
    /// clustering and `b` by the second.
    counts: HashMap<(u32, u32), u64>,
    /// Marginal sizes of the first labeling's clusters.
    row_sums: HashMap<u32, u64>,
    /// Marginal sizes of the second labeling's clusters.
    col_sums: HashMap<u32, u64>,
    n: u64,
}

impl Contingency {
    /// Tabulates two labelings.
    ///
    /// # Panics
    /// Panics if the labelings have different lengths or are empty.
    pub fn new(a: &[u32], b: &[u32]) -> Self {
        assert_eq!(a.len(), b.len(), "labelings must cover the same points");
        assert!(!a.is_empty(), "labelings must be non-empty");
        let mut counts: HashMap<(u32, u32), u64> = HashMap::new();
        let mut row_sums: HashMap<u32, u64> = HashMap::new();
        let mut col_sums: HashMap<u32, u64> = HashMap::new();
        for (&x, &y) in a.iter().zip(b.iter()) {
            *counts.entry((x, y)).or_insert(0) += 1;
            *row_sums.entry(x).or_insert(0) += 1;
            *col_sums.entry(y).or_insert(0) += 1;
        }
        Contingency {
            counts,
            row_sums,
            col_sums,
            n: a.len() as u64,
        }
    }

    /// Number of points tabulated.
    pub fn n(&self) -> u64 {
        self.n
    }
}

#[inline]
fn choose2(x: u64) -> f64 {
    (x as f64) * (x as f64 - 1.0) / 2.0
}

/// Adjusted Rand Index in `[-1, 1]`; `1` for identical partitions, `~0` for
/// independent ones. Invariant to label permutation.
pub fn adjusted_rand_index(a: &[u32], b: &[u32]) -> f64 {
    let t = Contingency::new(a, b);
    let sum_ij: f64 = t.counts.values().map(|&c| choose2(c)).sum();
    let sum_a: f64 = t.row_sums.values().map(|&c| choose2(c)).sum();
    let sum_b: f64 = t.col_sums.values().map(|&c| choose2(c)).sum();
    let total = choose2(t.n);
    if total == 0.0 {
        return 1.0;
    }
    let expected = sum_a * sum_b / total;
    let max_index = (sum_a + sum_b) / 2.0;
    if (max_index - expected).abs() < 1e-15 {
        // Both partitions are trivial (all-one-cluster or all-singletons).
        return if sum_ij == max_index { 1.0 } else { 0.0 };
    }
    (sum_ij - expected) / (max_index - expected)
}

/// Normalized Mutual Information with sqrt normalization, in `[0, 1]`.
pub fn normalized_mutual_information(a: &[u32], b: &[u32]) -> f64 {
    let t = Contingency::new(a, b);
    let n = t.n as f64;
    let mut mi = 0.0;
    for (&(x, y), &c) in &t.counts {
        let pxy = c as f64 / n;
        let px = t.row_sums[&x] as f64 / n;
        let py = t.col_sums[&y] as f64 / n;
        if pxy > 0.0 {
            mi += pxy * (pxy / (px * py)).ln();
        }
    }
    let ha: f64 = -t
        .row_sums
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            p * p.ln()
        })
        .sum::<f64>();
    let hb: f64 = -t
        .col_sums
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            p * p.ln()
        })
        .sum::<f64>();
    if ha <= 0.0 || hb <= 0.0 {
        // At least one partition is a single cluster: MI is 0 by
        // convention unless both are single clusters (identical).
        return if ha <= 0.0 && hb <= 0.0 { 1.0 } else { 0.0 };
    }
    (mi / (ha * hb).sqrt()).clamp(0.0, 1.0)
}

/// Purity of `predicted` with respect to `truth`, in `(0, 1]`: each
/// predicted cluster votes for its majority true class.
pub fn purity(predicted: &[u32], truth: &[u32]) -> f64 {
    let t = Contingency::new(predicted, truth);
    let mut best: HashMap<u32, u64> = HashMap::new();
    for (&(p, _), &c) in &t.counts {
        let e = best.entry(p).or_insert(0);
        *e = (*e).max(c);
    }
    best.values().sum::<u64>() as f64 / t.n as f64
}

/// Pairwise precision, recall and F1 between two partitions: a "pair" is
/// two points placed in the same cluster.
pub fn pairwise_f1(predicted: &[u32], truth: &[u32]) -> (f64, f64, f64) {
    let t = Contingency::new(predicted, truth);
    let tp: f64 = t.counts.values().map(|&c| choose2(c)).sum();
    let pred_pairs: f64 = t.row_sums.values().map(|&c| choose2(c)).sum();
    let true_pairs: f64 = t.col_sums.values().map(|&c| choose2(c)).sum();
    let precision = if pred_pairs > 0.0 {
        tp / pred_pairs
    } else {
        1.0
    };
    let recall = if true_pairs > 0.0 {
        tp / true_pairs
    } else {
        1.0
    };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    (precision, recall, f1)
}

/// `tau1`: fraction of points whose approximate density equals the exact
/// one (paper §VI-C). `tau1 = 1` iff every `rho` was recovered exactly.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn tau1(exact_rho: &[u32], approx_rho: &[u32]) -> f64 {
    assert_eq!(exact_rho.len(), approx_rho.len(), "rho vectors must align");
    assert!(!exact_rho.is_empty(), "rho vectors must be non-empty");
    let hits = exact_rho
        .iter()
        .zip(approx_rho.iter())
        .filter(|(e, a)| e == a)
        .count();
    hits as f64 / exact_rho.len() as f64
}

/// `tau2`: one minus the mean normalized absolute density error
/// (paper §VI-C): `1 - (1/N) Σ |rho_hat_i - rho_i| / rho_i`.
///
/// Points with `rho_i = 0` contribute `0` error when the approximation is
/// also `0` and a full unit of error otherwise.
pub fn tau2(exact_rho: &[u32], approx_rho: &[u32]) -> f64 {
    assert_eq!(exact_rho.len(), approx_rho.len(), "rho vectors must align");
    assert!(!exact_rho.is_empty(), "rho vectors must be non-empty");
    let err: f64 = exact_rho
        .iter()
        .zip(approx_rho.iter())
        .map(|(&e, &a)| {
            if e == 0 {
                if a == 0 {
                    0.0
                } else {
                    1.0
                }
            } else {
                (e as f64 - a as f64).abs() / e as f64
            }
        })
        .sum();
    1.0 - err / exact_rho.len() as f64
}

/// Expected-accuracy impact of permanently losing part of an approximation
/// ensemble — e.g. LSH layouts whose partitions a dead node can no longer
/// serve. Produced by [`ensemble_degradation`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationReport {
    /// Units permanently lost.
    pub units_lost: usize,
    /// Ensemble size before the loss.
    pub units_total: usize,
    /// Expected accuracy with the full ensemble.
    pub accuracy_before: f64,
    /// Expected accuracy over the surviving units.
    pub accuracy_after: f64,
}

impl DegradationReport {
    /// Absolute expected-accuracy loss.
    pub fn accuracy_delta(&self) -> f64 {
        (self.accuracy_before - self.accuracy_after).max(0.0)
    }

    /// The delta rounded to integer per-mille — the shape job counters
    /// carry.
    pub fn delta_per_mille(&self) -> u64 {
        (self.accuracy_delta() * 1000.0).round() as u64
    }
}

/// Degradation of an ensemble of `total` independent units with per-unit
/// hit probability `per_unit` when `lost` of them are permanently gone.
///
/// An ensemble of `k` such units recovers a quantity with probability
/// `1 - (1 - per_unit)^k` (the shape of the paper's Theorem 1); losing
/// units shrinks `k`. The caller decides what to do when *everything* is
/// lost — here `accuracy_after` simply reaches 0.
///
/// # Panics
/// Panics when `total` is zero, `lost > total`, or `per_unit` is outside
/// `[0, 1]`.
pub fn ensemble_degradation(per_unit: f64, total: usize, lost: usize) -> DegradationReport {
    assert!(total > 0, "ensemble must have at least one unit");
    assert!(lost <= total, "cannot lose {lost} of {total} units");
    assert!(
        (0.0..=1.0).contains(&per_unit),
        "per-unit accuracy must be a probability, got {per_unit}"
    );
    let acc = |k: usize| 1.0 - (1.0 - per_unit).powi(k as i32);
    DegradationReport {
        units_lost: lost,
        units_total: total,
        accuracy_before: acc(total),
        accuracy_after: acc(total - lost),
    }
}

/// Expected-accuracy impact of serving a model whose last `stale` of
/// `total` points carry *incrementally maintained* densities instead of
/// batch-pipeline ones.
///
/// A fresh point's density is recovered with probability `per_point`
/// (e.g. [`lsh::prob::expected_accuracy`] for the model's layout
/// parameters). A stale point compounds two approximations — the
/// original estimate *and* a bucket-localized update — so its recovery
/// probability is modeled as `per_point²`. The report's expected
/// accuracy is the mixture over the stale fraction:
/// `per_point · (1 - f) + per_point² · f` with `f = stale / total`.
/// Smooth in `f`, equal to `per_point` when nothing is stale, and the
/// signal the ingest path uses to decide when compaction is due.
///
/// # Panics
/// Panics when `total` is zero, `stale > total`, or `per_point` is
/// outside `[0, 1]`.
pub fn staleness_degradation(per_point: f64, total: usize, stale: usize) -> DegradationReport {
    assert!(total > 0, "model must hold at least one point");
    assert!(
        stale <= total,
        "cannot have {stale} stale of {total} points"
    );
    assert!(
        (0.0..=1.0).contains(&per_point),
        "per-point accuracy must be a probability, got {per_point}"
    );
    let f = stale as f64 / total as f64;
    DegradationReport {
        units_lost: stale,
        units_total: total,
        accuracy_before: per_point,
        accuracy_after: per_point * (1.0 - f) + per_point * per_point * f,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_report_shapes() {
        let r = ensemble_degradation(0.5, 4, 1);
        assert_eq!((r.units_lost, r.units_total), (1, 4));
        assert!((r.accuracy_before - (1.0 - 0.5f64.powi(4))).abs() < 1e-12);
        assert!((r.accuracy_after - (1.0 - 0.5f64.powi(3))).abs() < 1e-12);
        assert!((r.accuracy_delta() - 0.0625).abs() < 1e-12);
        assert_eq!(r.delta_per_mille(), 63);

        // Losing nothing costs nothing; losing everything costs it all.
        assert_eq!(ensemble_degradation(0.9, 5, 0).accuracy_delta(), 0.0);
        let all = ensemble_degradation(0.9, 5, 5);
        assert_eq!(all.accuracy_after, 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot lose")]
    fn degradation_rejects_overloss() {
        ensemble_degradation(0.5, 3, 4);
    }

    #[test]
    fn staleness_mixes_between_fresh_and_compounded_accuracy() {
        // Nothing stale: no degradation at all.
        let fresh = staleness_degradation(0.9, 100, 0);
        assert_eq!(fresh.accuracy_after, fresh.accuracy_before);
        assert_eq!(fresh.delta_per_mille(), 0);

        // Everything stale: accuracy compounds to per_point².
        let worst = staleness_degradation(0.9, 100, 100);
        assert!((worst.accuracy_after - 0.81).abs() < 1e-12);

        // Halfway: the even mixture of the two regimes.
        let half = staleness_degradation(0.9, 100, 50);
        assert!((half.accuracy_after - (0.45 + 0.405)).abs() < 1e-12);
        assert_eq!((half.units_lost, half.units_total), (50, 100));

        // Monotone: more staleness never helps.
        let mut last = 1.0;
        for stale in [0, 10, 40, 90, 100] {
            let r = staleness_degradation(0.8, 100, stale);
            assert!(r.accuracy_after <= last);
            last = r.accuracy_after;
        }
    }

    #[test]
    #[should_panic(expected = "stale of")]
    fn staleness_rejects_more_stale_than_points() {
        staleness_degradation(0.5, 3, 4);
    }

    #[test]
    fn ari_identical_partitions() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_permuted_labels_is_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![2, 2, 0, 0, 1, 1];
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_known_value() {
        // Classic example: ARI([0,0,1,1], [0,0,0,1]) = ?
        // tp pairs together-together: pairs (0,1) share in both => nij table:
        // (0,0):2, (1,0):1, (1,1):1 => sum_ij C2 = 1
        // rows: 2,2 -> 2; cols: 3,1 -> 3; total C(4,2)=6
        // expected = 2*3/6 = 1; max = 2.5; ARI = (1-1)/(2.5-1) = 0
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 0, 0, 1];
        assert!(adjusted_rand_index(&a, &b).abs() < 1e-12);
    }

    #[test]
    fn ari_trivial_partitions() {
        let single = vec![0, 0, 0];
        assert!((adjusted_rand_index(&single, &single) - 1.0).abs() < 1e-12);
        let singletons = vec![0, 1, 2];
        assert!((adjusted_rand_index(&singletons, &singletons) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_identical_and_independent() {
        let a = vec![0, 0, 1, 1];
        assert!((normalized_mutual_information(&a, &a) - 1.0).abs() < 1e-12);
        // Perfectly crossed partitions share no information.
        let b = vec![0, 1, 0, 1];
        assert!(normalized_mutual_information(&a, &b).abs() < 1e-9);
    }

    #[test]
    fn nmi_single_cluster_conventions() {
        let single = vec![0, 0, 0];
        let multi = vec![0, 1, 2];
        assert_eq!(normalized_mutual_information(&single, &single), 1.0);
        assert_eq!(normalized_mutual_information(&single, &multi), 0.0);
    }

    #[test]
    fn purity_majority_vote() {
        // Cluster 0 = {A, A, B}; cluster 1 = {B, B}; purity = (2+2)/5.
        let pred = vec![0, 0, 0, 1, 1];
        let truth = vec![0, 0, 1, 1, 1];
        assert!((purity(&pred, &truth) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn purity_is_one_for_refinement() {
        // Each predicted cluster is a subset of one true cluster.
        let pred = vec![0, 0, 1, 1, 2, 2];
        let truth = vec![0, 0, 0, 0, 1, 1];
        assert!((purity(&pred, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pairwise_f1_bounds_and_perfect() {
        let a = vec![0, 0, 1, 1];
        let (p, r, f) = pairwise_f1(&a, &a);
        assert_eq!((p, r, f), (1.0, 1.0, 1.0));
        let b = vec![0, 1, 0, 1];
        let (p2, r2, f2) = pairwise_f1(&a, &b);
        assert!(p2 >= 0.0 && r2 >= 0.0 && f2 >= 0.0);
        assert!(f2 < 1.0);
    }

    #[test]
    fn tau1_counts_exact_matches() {
        assert_eq!(tau1(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(tau1(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
        assert_eq!(tau1(&[1, 2], &[0, 0]), 0.0);
    }

    #[test]
    fn tau2_normalized_error() {
        // errors: |4-2|/4 = 0.5 and 0 => tau2 = 1 - 0.25 = 0.75
        assert!((tau2(&[4, 10], &[2, 10]) - 0.75).abs() < 1e-12);
        assert_eq!(tau2(&[5], &[5]), 1.0);
    }

    #[test]
    fn tau2_zero_density_convention() {
        assert_eq!(tau2(&[0, 0], &[0, 0]), 1.0);
        assert_eq!(tau2(&[0, 0], &[1, 0]), 0.5);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn tau_rejects_mismatched_lengths() {
        let _ = tau1(&[1], &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "same points")]
    fn contingency_rejects_mismatch() {
        let _ = Contingency::new(&[0], &[0, 1]);
    }
}
