//! Localized `rho`/`delta` update kernels for incremental ingest.
//!
//! The batch pipelines compute densities and separations globally; an
//! ingest path cannot afford that per batch. Following the observation
//! that hash-bucket structure localizes density maintenance (the
//! approximate-NN mean-shift line of work), these kernels update only
//! the points a mutation's LSH buckets can reach:
//!
//! * inserting a point `q` bumps `rho` for every bucket-mate within
//!   `d_c`, estimates `rho_q` with the paper's max-over-layouts rule,
//!   anchors `q` on its nearest denser bucket-mate (the localized
//!   Eq. 2), and *relaxes* any bucket-mate whose separation `q` now
//!   realizes;
//! * deleting a point reverses the density bumps and forces a localized
//!   separation recompute for the points that upsloped through it.
//!
//! The kernels are deliberately storage-agnostic: they work on the same
//! flat `coords`/`rho`/`delta`/`upslope` arrays the [`ClusterModel`]
//! artifact carries, with candidate sets supplied by the caller (the
//! ingest session owns the bucket tables). Everything here is exact
//! *given the candidates*; the approximation lives in which candidates
//! LSH surfaces, exactly as in the batch pipeline.
//!
//! [`ClusterModel`]: https://en.wikipedia.org/wiki/Cluster_analysis

use crate::distance::squared_euclidean;
use crate::dp::denser;
use crate::PointId;

/// A candidate neighbor surfaced by a bucket probe: its id and its
/// euclidean distance to the probe point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The candidate's point id (a slot id on the ingest side).
    pub id: PointId,
    /// Euclidean distance from the probe point to the candidate.
    pub dist: f64,
}

/// Distances from `query` to every candidate id over a flat row-major
/// coordinate block. No filtering — this is the raw material for both
/// the density count (within `d_c`) and the separation search (any
/// distance).
///
/// # Panics
/// Panics if a candidate id addresses past the end of `coords`.
pub fn candidate_neighbors(
    query: &[f64],
    cands: &[PointId],
    coords: &[f64],
    dim: usize,
) -> Vec<Neighbor> {
    cands
        .iter()
        .map(|&id| {
            let at = id as usize * dim;
            let d2 = squared_euclidean(query, &coords[at..at + dim]);
            Neighbor {
                id,
                dist: d2.sqrt(),
            }
        })
        .collect()
}

/// The candidates strictly within `d_c` of `query` — the set whose
/// densities an insert/delete of `query` changes (Eq. 1 counts strict
/// neighbors; a coincident duplicate still counts, only the point
/// itself is excluded, which the caller guarantees by never listing it).
pub fn neighbors_within(
    query: &[f64],
    cands: &[PointId],
    coords: &[f64],
    dim: usize,
    dc: f64,
) -> Vec<Neighbor> {
    candidate_neighbors(query, cands, coords, dim)
        .into_iter()
        .filter(|n| n.dist < dc)
        .collect()
}

/// The paper's LSH density estimate for a probe point: the **max over
/// layouts** of the within-`d_c` count in the layout's bucket — the
/// same max-aggregation the batch pipeline's rho-aggregate job applies,
/// so an inserted point gets a density drawn from the identical
/// estimator family as its batch-fitted neighbors.
pub fn rho_estimate_max(
    query: &[f64],
    layers: &[&[PointId]],
    coords: &[f64],
    dim: usize,
    dc: f64,
) -> u32 {
    layers
        .iter()
        .map(|layer| neighbors_within(query, layer, coords, dim, dc).len() as u32)
        .max()
        .unwrap_or(0)
}

/// `rho[n.id] += 1` for every neighbor: the insert-side density update.
/// The caller supplies a deduplicated neighbor set (one bump per
/// distinct point regardless of how many layouts surfaced it).
pub fn bump_rho(rho: &mut [u32], within: &[Neighbor]) {
    for n in within {
        rho[n.id as usize] += 1;
    }
}

/// Saturating `rho[id] -= 1` for every listed point: the delete-side
/// density update. Saturation (instead of a panic) keeps a delete of a
/// point whose insert-time neighborhood was estimated differently from
/// corrupting unrelated state.
pub fn drop_rho(rho: &mut [u32], within: &[PointId]) {
    for &id in within {
        let r = &mut rho[id as usize];
        *r = r.saturating_sub(1);
    }
}

/// The localized Eq. 2: among `cands`, the nearest one strictly denser
/// than `(rho_q, q)` under the global [`denser`] order (rho first, id
/// tie-break). Ties on distance break toward the lower id so the result
/// is independent of candidate order. `None` when nothing in the
/// candidate set dominates `q` — the caller decides whether that means
/// "local peak" or "widen the search".
pub fn nearest_denser(q: PointId, rho_q: u32, cands: &[Neighbor], rho: &[u32]) -> Option<Neighbor> {
    cands
        .iter()
        .filter(|n| n.id != q && denser(rho[n.id as usize], n.id, rho_q, q))
        .min_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)))
        .copied()
}

/// Separation relaxation after inserting `q`: every candidate that `q`
/// now dominates (`q` denser) and sits farther from its current upslope
/// point than from `q` re-anchors on `q`. Returns how many links moved
/// — the ingest session counts these as newly stale points.
pub fn relax_toward(
    q: PointId,
    rho_q: u32,
    cands: &[Neighbor],
    rho: &[u32],
    delta: &mut [f64],
    upslope: &mut [PointId],
) -> usize {
    let mut moved = 0;
    for n in cands {
        let i = n.id as usize;
        if n.id != q && denser(rho_q, q, rho[i], n.id) && n.dist < delta[i] {
            delta[i] = n.dist;
            upslope[i] = q;
            moved += 1;
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NO_UPSLOPE;

    // Five points on a line at 0, 1, 2, 10, 11 (dim 1).
    fn line() -> Vec<f64> {
        vec![0.0, 1.0, 2.0, 10.0, 11.0]
    }

    #[test]
    fn candidate_distances_are_euclidean() {
        let coords = line();
        let ns = candidate_neighbors(&[1.5], &[0, 2, 4], &coords, 1);
        assert_eq!(ns.len(), 3);
        assert!((ns[0].dist - 1.5).abs() < 1e-12);
        assert!((ns[1].dist - 0.5).abs() < 1e-12);
        assert!((ns[2].dist - 9.5).abs() < 1e-12);
    }

    #[test]
    fn within_filters_strictly_by_dc() {
        let coords = line();
        let ns = neighbors_within(&[0.0], &[1, 2, 3], &coords, 1, 2.0);
        assert_eq!(ns.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1]);
        // Distance exactly dc is out (strict inequality, as in Eq. 1).
        let ns = neighbors_within(&[0.0], &[2], &coords, 1, 2.0);
        assert!(ns.is_empty());
    }

    #[test]
    fn rho_estimate_takes_the_max_layout() {
        let coords = line();
        // Layout A surfaces one near point, layout B two.
        let a: &[PointId] = &[1];
        let b: &[PointId] = &[1, 2];
        assert_eq!(rho_estimate_max(&[0.5], &[a, b], &coords, 1, 2.0), 2);
        assert_eq!(rho_estimate_max(&[0.5], &[], &coords, 1, 2.0), 0);
    }

    #[test]
    fn bump_and_drop_are_inverse_and_drop_saturates() {
        let mut rho = vec![3, 0, 5];
        let within = [Neighbor { id: 0, dist: 0.1 }, Neighbor { id: 2, dist: 0.2 }];
        bump_rho(&mut rho, &within);
        assert_eq!(rho, vec![4, 0, 6]);
        drop_rho(&mut rho, &[0, 2]);
        assert_eq!(rho, vec![3, 0, 5]);
        drop_rho(&mut rho, &[1]);
        assert_eq!(rho, vec![3, 0, 5], "rho 0 saturates instead of wrapping");
    }

    #[test]
    fn nearest_denser_respects_the_global_order() {
        let coords = line();
        let rho = vec![2, 5, 5, 1, 9];
        let cands = candidate_neighbors(&[2.5], &[0, 1, 2, 3, 4], &coords, 1);
        // Probe has rho 5 and id 5: ids 1, 2 tie on rho but lose the id
        // tie-break against 5, so only point 4 (rho 9) dominates.
        let got = nearest_denser(5, 5, &cands, &rho).unwrap();
        assert_eq!(got.id, 4);
        // A weaker probe anchors on the nearest of the (rho 5) pair.
        let got = nearest_denser(5, 2, &cands, &rho).unwrap();
        assert_eq!(got.id, 2);
        // Nothing dominates the densest probe.
        assert!(nearest_denser(5, 10, &cands, &rho).is_none());
    }

    #[test]
    fn relaxation_moves_only_dominated_farther_links() {
        let coords = line();
        let rho = vec![1, 1, 1, 1, 1];
        let mut delta = vec![5.0, 0.2, 5.0, 5.0, 5.0];
        let mut upslope = vec![NO_UPSLOPE; 5];
        // New point q = 5 at 2.5 with rho 4 dominates everyone.
        let cands = candidate_neighbors(&[2.5], &[0, 1, 2], &coords, 1);
        let moved = relax_toward(5, 4, &cands, &rho, &mut delta, &mut upslope);
        // Point 1 keeps its tighter 0.2 link; points 0 and 2 re-anchor.
        assert_eq!(moved, 2);
        assert_eq!(upslope[0], 5);
        assert_eq!(upslope[1], NO_UPSLOPE);
        assert_eq!(upslope[2], 5);
        assert!((delta[0] - 2.5).abs() < 1e-12);
        assert!((delta[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn relaxation_never_moves_a_denser_candidate() {
        let coords = line();
        let rho = vec![9, 1, 1, 1, 1];
        let mut delta = vec![5.0; 5];
        let mut upslope = vec![NO_UPSLOPE; 5];
        let cands = candidate_neighbors(&[0.5], &[0], &coords, 1);
        let moved = relax_toward(5, 3, &cands, &rho, &mut delta, &mut upslope);
        assert_eq!(moved, 0, "a denser point never re-anchors on the probe");
        assert_eq!(upslope[0], NO_UPSLOPE);
    }
}
