//! Gaussian-kernel Density Peaks — the variant the original DP paper uses
//! for small/noisy data, and the extension hook the LSH-DDP paper's §VII
//! points at ("feasible to modify our solution to support variants of
//! DP").
//!
//! The cutoff kernel (Eq. 1) counts neighbors, so densities are small
//! integers that tie constantly; on uniform-density manifolds the
//! tie-broken upslope chains become arbitrary and clustering degrades
//! (see `examples/shaped_clusters.rs`). The Gaussian kernel
//!
//! ```text
//! rho_i = Σ_{j != i} exp(-(d_ij / d_c)²)
//! ```
//!
//! yields continuous, almost-surely distinct densities and smooth chains.
//!
//! To reuse the whole decision-graph/assignment/distributed machinery —
//! which speaks integer densities — [`compute_gaussian`] *rank-transforms*
//! the continuous densities: the returned [`DpResult`] carries each
//! point's density rank (0 = sparsest), which preserves the denser-than
//! order exactly and eliminates ties; the raw kernel densities ride along
//! for inspection.

use crate::distance::DistanceTracker;
use crate::dp::{denser, DpResult, NO_UPSLOPE};
use crate::point::{Dataset, PointId};
use rayon::prelude::*;

/// Result of a Gaussian-kernel DP run: the rank-transformed [`DpResult`]
/// plus the raw continuous densities.
#[derive(Debug, Clone)]
pub struct KernelDpResult {
    /// Rank-density result, drop-in compatible with the decision-graph
    /// and assignment machinery (`rho[i]` = density rank, all distinct).
    pub result: DpResult,
    /// The raw kernel densities `Σ exp(-(d/dc)²)`.
    pub raw_rho: Vec<f64>,
}

/// Computes Gaussian-kernel DP with Euclidean distance.
///
/// # Panics
/// Panics if the dataset is empty or `dc` is not positive and finite.
pub fn compute_gaussian(ds: &Dataset, dc: f64) -> KernelDpResult {
    compute_gaussian_tracked(ds, dc, &DistanceTracker::new())
}

/// Computes Gaussian-kernel DP, recording distance evaluations.
pub fn compute_gaussian_tracked(
    ds: &Dataset,
    dc: f64,
    tracker: &DistanceTracker,
) -> KernelDpResult {
    assert!(!ds.is_empty(), "cannot run DP on an empty dataset");
    assert!(
        dc.is_finite() && dc > 0.0,
        "d_c must be positive and finite, got {dc}"
    );
    let n = ds.len();
    let kind = tracker.kind();

    // Phase 1: continuous densities.
    let raw_rho: Vec<f64> = (0..n as PointId)
        .into_par_iter()
        .map(|i| {
            let pi = ds.point(i);
            let mut acc = 0.0;
            for (j, pj) in ds.iter() {
                if j != i {
                    let d = kind.eval(pi, pj) / dc;
                    acc += (-d * d).exp();
                }
            }
            tracker.add(n as u64 - 1);
            acc
        })
        .collect();

    // Rank transform: sparsest -> 0, densest -> n-1; ties (exactly equal
    // kernel sums, e.g. duplicated points) broken by id for determinism.
    let mut order: Vec<PointId> = (0..n as PointId).collect();
    order.sort_by(|&a, &b| {
        raw_rho[a as usize]
            .partial_cmp(&raw_rho[b as usize])
            .expect("finite densities")
            .then(a.cmp(&b))
    });
    let mut rho = vec![0u32; n];
    for (rank, &id) in order.iter().enumerate() {
        rho[id as usize] = rank as u32;
    }

    // Phase 2: delta/upslope under the rank order (identical to the
    // continuous denser-than order).
    let pairs: Vec<(f64, PointId)> = (0..n as PointId)
        .into_par_iter()
        .map(|i| {
            let pi = ds.point(i);
            let rho_i = rho[i as usize];
            let mut best = f64::INFINITY;
            let mut best_j = NO_UPSLOPE;
            let mut max_d = 0.0f64;
            for (j, pj) in ds.iter() {
                if j == i {
                    continue;
                }
                let d = kind.eval(pi, pj);
                max_d = max_d.max(d);
                if denser(rho[j as usize], j, rho_i, i) && (d < best || (d == best && j < best_j)) {
                    best = d;
                    best_j = j;
                }
            }
            tracker.add(n as u64 - 1);
            if best_j == NO_UPSLOPE {
                (max_d, NO_UPSLOPE)
            } else {
                (best, best_j)
            }
        })
        .collect();
    let mut delta = vec![0.0f64; n];
    let mut upslope = vec![NO_UPSLOPE; n];
    for (i, (d, u)) in pairs.into_iter().enumerate() {
        delta[i] = d;
        upslope[i] = u;
    }

    KernelDpResult {
        result: DpResult {
            dc,
            rho,
            delta,
            upslope,
        },
        raw_rho,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::{assign, select_top_k};

    fn two_blobs() -> Dataset {
        let mut ds = Dataset::new(1);
        for i in 0..12 {
            ds.push(&[i as f64 * 0.1]);
        }
        for i in 0..12 {
            ds.push(&[50.0 + i as f64 * 0.1]);
        }
        ds
    }

    #[test]
    fn ranks_are_a_permutation() {
        let k = compute_gaussian(&two_blobs(), 0.3);
        let mut ranks = k.result.rho.clone();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..24).collect::<Vec<u32>>());
    }

    #[test]
    fn rank_order_matches_raw_density_order() {
        let k = compute_gaussian(&two_blobs(), 0.3);
        for i in 0..k.raw_rho.len() {
            for j in 0..k.raw_rho.len() {
                if k.raw_rho[i] < k.raw_rho[j] {
                    assert!(k.result.rho[i] < k.result.rho[j]);
                }
            }
        }
    }

    #[test]
    fn clusters_two_blobs() {
        let ds = two_blobs();
        let k = compute_gaussian(&ds, 0.3);
        let peaks = select_top_k(&k.result, 2);
        let c = assign(&k.result, &peaks);
        assert_eq!(c.label(0), c.label(11));
        assert_eq!(c.label(12), c.label(23));
        assert_ne!(c.label(0), c.label(12));
    }

    #[test]
    fn gaussian_kernel_handles_graded_rings() {
        // DP needs one density peak per cluster (a perfectly uniform ring
        // has none — no DP variant can anchor there). Give each ring an
        // angular density gradient: points concentrated toward angle 0.
        // The cutoff kernel still tends to scramble this (integer ties on
        // the sparse arc), while the continuous Gaussian kernel chains
        // cleanly along each ring.
        let mut ds = Dataset::new(2);
        let mut truth = Vec::new();
        for (ri, r) in [1.5f64, 6.0].iter().enumerate() {
            for k in 0..80 {
                // Angles t^2-compressed: dense near 0, sparse near tau.
                let u = k as f64 / 80.0;
                let t = u * u * std::f64::consts::TAU;
                ds.push(&[r * t.cos(), r * t.sin()]);
                truth.push(ri as u32);
            }
        }
        let dc = 0.8;
        let k = compute_gaussian(&ds, dc);
        let peaks = select_top_k(&k.result, 2);
        let c = assign(&k.result, &peaks);
        let ari = crate::quality::adjusted_rand_index(c.labels(), &truth);
        assert!(ari > 0.9, "Gaussian-kernel DP on graded rings: ARI = {ari}");
    }

    #[test]
    fn denser_points_get_higher_raw_density() {
        // A dense blob and one isolated point.
        let mut ds = Dataset::new(1);
        for i in 0..10 {
            ds.push(&[i as f64 * 0.01]);
        }
        ds.push(&[100.0]);
        let k = compute_gaussian(&ds, 0.5);
        let iso = k.raw_rho[10];
        assert!(k.raw_rho[..10].iter().all(|&r| r > iso));
        assert_eq!(k.result.rho[10], 0, "the isolated point is the sparsest");
    }

    #[test]
    fn tracker_counts_kernel_distances() {
        let ds = two_blobs();
        let t = DistanceTracker::new();
        let _ = compute_gaussian_tracked(&ds, 0.3, &t);
        assert_eq!(t.total(), 2 * 24 * 23);
    }
}
