//! Per-partition spatial index for sub-quadratic local DP kernels.
//!
//! The blocked kernels in [`crate::distance`] evaluate every pair in a
//! partition (`O(n_p^2)`). This module builds a small spatial index over
//! the same flat row-major buffer and answers the queries local DP
//! actually needs, pruning whole regions by bounding-box distance:
//!
//! * [`SpatialIndex::range_count_d2`] — `rho` as a ball count at radius
//!   `d_c`, counting whole subtrees whose box is entirely inside the ball
//!   and skipping subtrees whose box cannot intersect it;
//! * [`SpatialIndex::cross_range_count_d2`] / [`SpatialIndex::for_each_within_d2`]
//!   — halo/partner contributions (`basic`, `eddpc`, `halo`) and the
//!   serve-side exact recount;
//! * [`SpatialIndex::nearest_denser_d2`] — `delta` as a best-first
//!   nearest-neighbor search over a caller-supplied candidate filter,
//!   seeded by the sorted-descending-`rho` scan proven in [`crate::fast`];
//! * [`SpatialIndex::max_distance`] — the absolute-peak `delta`
//!   (distance to the farthest point).
//!
//! Two representations back the same API: a kd-tree (any dimension) and a
//! uniform-grid fast path for `dim <= 3` when the data span makes cells
//! affordable. Selection is automatic at build time.
//!
//! ## Bit-identity contract
//!
//! Results are **bit-identical** to the blocked kernels, not merely close:
//!
//! * Box bounds accumulate per-dimension terms in the same order as
//!   [`squared_euclidean`], and every per-op rounding (subtract, square,
//!   add, sqrt) is monotone, so the computed `lb2 <= d2 <= ub2` holds for
//!   every point in a box *in floating point*, not just in the reals.
//!   Pruning on `lb2 >= dc2` (or counting a whole subtree on `ub2 < dc2`)
//!   therefore never flips a strict `d2 < dc2` test.
//! * Nearest searches compare on exactly the value the blocked code
//!   compares on (`d2.sqrt()` for the pipelines, raw `d2` for the serve
//!   probe) and break ties toward the smaller candidate id; regions are
//!   pruned only when their lower bound *strictly* exceeds the current
//!   best, so an equal-distance smaller-id candidate is never lost.
//! * The tree layout is a pure function of the input (median split on the
//!   widest box dimension with a total-order + index tie-break), so the
//!   work-stealing parallel build is bit-identical across thread counts,
//!   and every traversal visits candidates in a deterministic order.

use crate::distance::squared_euclidean;
use crate::point::PointId;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Below this partition size, [`KernelStrategy::Auto`] keeps the blocked
/// kernels: the index build cost is not worth amortizing, and tiny
/// partitions are exactly where the blocked loops are fastest.
pub const AUTO_MIN_POINTS: usize = 256;

/// Which local-kernel implementation the pipelines use.
///
/// Carried on `PipelineConfig`; the `LSHDDP_KERNEL` environment variable
/// overrides it at run start (see [`KernelStrategy::resolve`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum KernelStrategy {
    /// Always the blocked `O(n_p^2)` pair loops.
    Blocked,
    /// Always the spatial-index kernels, regardless of partition size.
    Indexed,
    /// Indexed for partitions with at least [`AUTO_MIN_POINTS`] points,
    /// blocked below that.
    #[default]
    Auto,
}

impl KernelStrategy {
    /// Applies the `LSHDDP_KERNEL` environment override, if set to a
    /// recognized value (`blocked` | `indexed` | `auto`). Unrecognized
    /// values are ignored and `self` stands.
    pub fn resolve(self) -> Self {
        Self::resolved_with(self, std::env::var("LSHDDP_KERNEL").ok().as_deref())
    }

    fn resolved_with(self, var: Option<&str>) -> Self {
        match var.and_then(|s| s.parse().ok()) {
            Some(s) => s,
            None => self,
        }
    }

    /// Whether a partition of `n` points should take the indexed path.
    pub fn use_indexed(self, n: usize) -> bool {
        match self {
            KernelStrategy::Blocked => false,
            KernelStrategy::Indexed => true,
            KernelStrategy::Auto => n >= AUTO_MIN_POINTS,
        }
    }
}

impl std::str::FromStr for KernelStrategy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "blocked" => Ok(KernelStrategy::Blocked),
            "indexed" => Ok(KernelStrategy::Indexed),
            "auto" => Ok(KernelStrategy::Auto),
            other => Err(format!(
                "unknown kernel strategy {other:?} (blocked|indexed|auto)"
            )),
        }
    }
}

impl std::fmt::Display for KernelStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            KernelStrategy::Blocked => "blocked",
            KernelStrategy::Indexed => "indexed",
            KernelStrategy::Auto => "auto",
        })
    }
}

// ---------------------------------------------------------------------
// kd-tree
// ---------------------------------------------------------------------

/// Max points per kd leaf. Small enough to prune tightly, large enough
/// that leaf scans stay in the blocked kernels' sweet spot.
const LEAF: usize = 16;

/// Subtrees at least this large build their children via `rayon::join`.
const PAR_BUILD_MIN: usize = 4096;

/// Nodes in a subtree over `n` points under the fixed split rule.
fn node_count(n: usize) -> usize {
    if n <= LEAF {
        1
    } else {
        1 + node_count(n / 2) + node_count(n - n / 2)
    }
}

/// A kd-tree over point *indices* into the caller's flat buffer. The
/// layout (preorder, left child at `i + 1`) is a pure function of the
/// input, independent of thread count.
struct KdTree {
    /// Point indices; each node owns a contiguous `perm` range.
    perm: Vec<u32>,
    /// Per node: `dim` minima then `dim` maxima, `2 * dim` slots each.
    bounds: Vec<f64>,
    /// Per node: first index into `perm`.
    start: Vec<u32>,
    /// Per node: number of points.
    len: Vec<u32>,
    /// Per node: right-child node index; `0` marks a leaf (the root is
    /// node 0 and never anyone's child).
    right: Vec<u32>,
}

/// Disjoint per-subtree views of the kd arrays, so the two children of a
/// split can be built in parallel without sharing mutable state.
struct BuildSlices<'a> {
    bounds: &'a mut [f64],
    start: &'a mut [u32],
    len: &'a mut [u32],
    right: &'a mut [u32],
}

impl KdTree {
    fn build(flat: &[f64], dim: usize) -> Self {
        let n = flat.len() / dim;
        debug_assert!(n > 0, "cannot index an empty partition");
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let nodes = node_count(n);
        let mut bounds = vec![0.0f64; nodes * 2 * dim];
        let mut start = vec![0u32; nodes];
        let mut len = vec![0u32; nodes];
        let mut right = vec![0u32; nodes];
        build_rec(
            flat,
            dim,
            &mut perm,
            0,
            0,
            BuildSlices {
                bounds: &mut bounds,
                start: &mut start,
                len: &mut len,
                right: &mut right,
            },
        );
        KdTree {
            perm,
            bounds,
            start,
            len,
            right,
        }
    }
}

fn build_rec(flat: &[f64], dim: usize, perm: &mut [u32], perm_off: u32, node: u32, s: BuildSlices) {
    let n = perm.len();
    let (b, bounds_rest) = s.bounds.split_at_mut(2 * dim);
    let (st, start_rest) = s.start.split_at_mut(1);
    let (ln, len_rest) = s.len.split_at_mut(1);
    let (rt, right_rest) = s.right.split_at_mut(1);
    st[0] = perm_off;
    ln[0] = n as u32;

    // Exact per-dimension min/max — order-independent, so the parallel
    // build cannot perturb it.
    let p0 = &flat[perm[0] as usize * dim..][..dim];
    b[..dim].copy_from_slice(p0);
    b[dim..].copy_from_slice(p0);
    for &pi in &perm[1..] {
        let p = &flat[pi as usize * dim..][..dim];
        for (d, &x) in p.iter().enumerate() {
            if x < b[d] {
                b[d] = x;
            }
            if x > b[dim + d] {
                b[dim + d] = x;
            }
        }
    }

    if n <= LEAF {
        rt[0] = 0;
        return;
    }

    // Split on the widest extent; first such dimension wins.
    let mut split_dim = 0;
    let mut ext = b[dim] - b[0];
    for d in 1..dim {
        let e = b[dim + d] - b[d];
        if e > ext {
            ext = e;
            split_dim = d;
        }
    }
    let mid = n / 2;
    perm.select_nth_unstable_by(mid, |&a, &c| {
        flat[a as usize * dim + split_dim]
            .total_cmp(&flat[c as usize * dim + split_dim])
            .then(a.cmp(&c))
    });
    let (left_perm, right_perm) = perm.split_at_mut(mid);
    let left_nodes = node_count(mid);
    let right_node = node + 1 + left_nodes as u32;
    rt[0] = right_node;

    let (lb, rb) = bounds_rest.split_at_mut(left_nodes * 2 * dim);
    let (lst, rst) = start_rest.split_at_mut(left_nodes);
    let (lln, rln) = len_rest.split_at_mut(left_nodes);
    let (lrt, rrt) = right_rest.split_at_mut(left_nodes);
    let left = BuildSlices {
        bounds: lb,
        start: lst,
        len: lln,
        right: lrt,
    };
    let rchild = BuildSlices {
        bounds: rb,
        start: rst,
        len: rln,
        right: rrt,
    };
    if n >= PAR_BUILD_MIN {
        rayon::join(
            || build_rec(flat, dim, left_perm, perm_off, node + 1, left),
            || {
                build_rec(
                    flat,
                    dim,
                    right_perm,
                    perm_off + mid as u32,
                    right_node,
                    rchild,
                )
            },
        );
    } else {
        build_rec(flat, dim, left_perm, perm_off, node + 1, left);
        build_rec(
            flat,
            dim,
            right_perm,
            perm_off + mid as u32,
            right_node,
            rchild,
        );
    }
}

// ---------------------------------------------------------------------
// Uniform grid (dim <= 3)
// ---------------------------------------------------------------------

/// Per-dimension cell-count cap; beyond this the span/d_c ratio makes the
/// grid pointless and the kd-tree takes over.
const GRID_MAX_CELLS_PER_DIM: i64 = 1 << 20;

/// Cell width safety factor over `d_c`. With `w = 1.001 * d_c`, two points
/// within `d_c` of each other land in cells at most one apart per
/// dimension *in floating point*: their exact scaled coordinates differ by
/// under `1/1.001`, the few-ulp rounding of `(x - min) / w` cannot bridge
/// the remaining slack, and the floor of two values differing by less than
/// one differs by at most one.
const GRID_W_FACTOR: f64 = 1.001;

/// Conservative shrink on ring lower bounds, dominating the rounding of
/// the cell-coordinate computation.
const GRID_LB_SLACK: f64 = 0.999_999;

/// Queries whose cell lies farther than this (Chebyshev, in cells) from
/// the grid box skip shell enumeration for a linear scan of all entries.
/// Well below any saturation point of the `f64 -> i64` cell cast, and far
/// enough that such a query is out-of-distribution anyway.
const GRID_FAR_QUERY_CELLS: i64 = 1 << 40;

/// A uniform grid over up to 3 dimensions, CSR cell storage. Unused
/// dimensions are padded with a single cell so traversal is uniform.
struct Grid {
    w: f64,
    min: [f64; 3],
    cells: [i64; 3],
    /// CSR offsets over row-major cell ids, `total_cells + 1` entries.
    starts: Vec<u32>,
    /// Point indices grouped by cell, ascending within each cell.
    entries: Vec<u32>,
}

impl Grid {
    /// Builds the grid, or `None` when the data/d_c make it a bad fit
    /// (non-finite coords, degenerate `d_c`, or too many cells).
    fn try_build(flat: &[f64], dim: usize, dc: f64) -> Option<Self> {
        if dim > 3 || !(dc.is_finite() && dc > 0.0) {
            return None;
        }
        let n = flat.len() / dim;
        debug_assert!(n > 0, "cannot index an empty partition");
        let w = dc * GRID_W_FACTOR;
        let mut min = [0.0f64; 3];
        let mut max = [0.0f64; 3];
        min[..dim].copy_from_slice(&flat[..dim]);
        max[..dim].copy_from_slice(&flat[..dim]);
        for p in flat.chunks_exact(dim) {
            for (d, &x) in p.iter().enumerate() {
                if !x.is_finite() {
                    return None;
                }
                if x < min[d] {
                    min[d] = x;
                }
                if x > max[d] {
                    max[d] = x;
                }
            }
        }
        // Cell counts from the same rounded expression as cell assignment,
        // so every point's computed cell is in range by construction.
        let mut cells = [1i64; 3];
        let mut total = 1f64;
        for d in 0..dim {
            let c = ((max[d] - min[d]) / w).floor() as i64 + 1;
            if c > GRID_MAX_CELLS_PER_DIM {
                return None;
            }
            cells[d] = c;
            total *= c as f64;
        }
        if total > (4 * n + 1024) as f64 {
            return None; // sparse occupancy: kd prunes better
        }
        let total = total as usize;

        let mut starts = vec![0u32; total + 1];
        let grid = |p: &[f64]| -> usize {
            let mut id = 0usize;
            for (d, &x) in p.iter().enumerate() {
                let c = ((x - min[d]) / w).floor() as i64;
                debug_assert!((0..cells[d]).contains(&c));
                id = id * cells[d] as usize + c as usize;
            }
            for &c in &cells[p.len()..3] {
                id *= c as usize; // padded dims have one cell: no-op
            }
            id
        };
        for p in flat.chunks_exact(dim) {
            starts[grid(p) + 1] += 1;
        }
        for i in 1..=total {
            starts[i] += starts[i - 1];
        }
        let mut cursor = starts.clone();
        let mut entries = vec![0u32; n];
        for (i, p) in flat.chunks_exact(dim).enumerate() {
            let cell = grid(p);
            entries[cursor[cell] as usize] = i as u32;
            cursor[cell] += 1;
        }
        Some(Grid {
            w,
            min,
            cells,
            starts,
            entries,
        })
    }

    /// The (possibly out-of-range) cell coordinates of an arbitrary query.
    fn cell_coords(&self, q: &[f64]) -> [i64; 3] {
        let mut c = [0i64; 3];
        for (d, &x) in q.iter().enumerate() {
            c[d] = ((x - self.min[d]) / self.w).floor() as i64;
        }
        c
    }

    fn cell_id(&self, c: [i64; 3]) -> usize {
        (((c[0] * self.cells[1]) + c[1]) * self.cells[2] + c[2]) as usize
    }

    fn cell_entries(&self, c: [i64; 3]) -> &[u32] {
        let id = self.cell_id(c);
        &self.entries[self.starts[id] as usize..self.starts[id + 1] as usize]
    }

    /// Chebyshev cell-distance from `c` to the grid box (0 when inside).
    /// Saturating, so arbitrarily far (even cast-saturated) cells are safe.
    fn dist_to_box(&self, c: [i64; 3]) -> i64 {
        (0..3)
            .map(|d| {
                c[d].saturating_neg()
                    .max(c[d].saturating_sub(self.cells[d] - 1))
                    .max(0)
            })
            .max()
            .unwrap_or(0)
    }

    /// Visits every *in-grid* cell at Chebyshev cell-distance exactly `r`
    /// from `c`, in a fixed deterministic order. Per-dimension windows are
    /// clamped to the grid box up front, so a shell never enumerates cells
    /// outside the grid and only the shell's clamped faces are walked —
    /// O(visited cells) work, not O(r^2) box scans. Padded dimensions
    /// (`cells[d] == 1`, `c[d] == 0`) clamp to offset 0 automatically.
    /// All bound arithmetic saturates: a saturated bound lands on
    /// `i64::MIN`/`i64::MAX`, which no in-grid coordinate equals, so the
    /// clamps stay conservative for arbitrarily far query cells.
    fn for_shell(&self, c: [i64; 3], r: i64, mut visit: impl FnMut(&[u32])) {
        let mut lo = [0i64; 3];
        let mut hi = [0i64; 3];
        for d in 0..3 {
            lo[d] = c[d].saturating_sub(r).max(0);
            hi[d] = c[d].saturating_add(r).min(self.cells[d] - 1);
            if lo[d] > hi[d] {
                return; // the shell misses the grid entirely
            }
        }
        if r == 0 {
            visit(self.cell_entries(c)); // non-empty windows: c is in-grid
            return;
        }
        // The two in-window face coordinates of dim `d` (|x - c[d]| == r).
        let faces = move |d: usize| {
            [c[d].saturating_sub(r), c[d].saturating_add(r)]
                .into_iter()
                .filter(move |&x| lo[d] <= x && x <= hi[d])
        };
        // The in-window interior of dim `d` (|x - c[d]| < r).
        let interior = move |d: usize| {
            (
                lo[d].max(c[d].saturating_sub(r - 1)),
                hi[d].min(c[d].saturating_add(r - 1)),
            )
        };
        // Partition the shell by the first dimension at offset +-r:
        // |x0| == r, then |x0| < r && |x1| == r, then interior/interior
        // with |x2| == r. Each in-grid shell cell is visited exactly once.
        for x0 in faces(0) {
            for x1 in lo[1]..=hi[1] {
                for x2 in lo[2]..=hi[2] {
                    visit(self.cell_entries([x0, x1, x2]));
                }
            }
        }
        let (ilo0, ihi0) = interior(0);
        for x1 in faces(1) {
            for x0 in ilo0..=ihi0 {
                for x2 in lo[2]..=hi[2] {
                    visit(self.cell_entries([x0, x1, x2]));
                }
            }
        }
        let (ilo1, ihi1) = interior(1);
        for x2 in faces(2) {
            for x0 in ilo0..=ihi0 {
                for x1 in ilo1..=ihi1 {
                    visit(self.cell_entries([x0, x1, x2]));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// SpatialIndex
// ---------------------------------------------------------------------

enum Rep {
    Kd(KdTree),
    Grid(Grid),
}

/// A per-partition spatial index over a flat row-major buffer, built once
/// and reused across the rho and delta passes.
pub struct SpatialIndex {
    dim: usize,
    flat: Vec<f64>,
    n: usize,
    rep: Rep,
}

impl SpatialIndex {
    /// Builds the index over `flat` (row-major, `dim` coordinates per
    /// point). `dc` informs the grid fast path's cell width; pass the same
    /// cutoff later used in `*_d2(q, dc * dc)` range queries.
    ///
    /// # Panics
    /// Panics if `flat` is empty or not a multiple of `dim`.
    pub fn build(flat: &[f64], dim: usize, dc: f64) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert!(
            !flat.is_empty() && flat.len().is_multiple_of(dim),
            "flat buffer must hold a positive number of {dim}-dim points"
        );
        let rep = match Grid::try_build(flat, dim, dc) {
            Some(g) => Rep::Grid(g),
            None => Rep::Kd(KdTree::build(flat, dim)),
        };
        SpatialIndex {
            dim,
            flat: flat.to_vec(),
            n: flat.len() / dim,
            rep,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false — `build` rejects empty buffers.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether the grid fast path was selected.
    pub fn is_grid(&self) -> bool {
        matches!(self.rep, Rep::Grid(_))
    }

    #[inline]
    fn point(&self, i: u32) -> &[f64] {
        &self.flat[i as usize * self.dim..][..self.dim]
    }

    /// Squared box lower bound, accumulated per dimension in the same
    /// order as [`squared_euclidean`].
    #[inline]
    fn kd_lb2(kd: &KdTree, dim: usize, node: usize, q: &[f64]) -> f64 {
        let b = &kd.bounds[node * 2 * dim..][..2 * dim];
        let mut acc = 0.0;
        for (d, &x) in q.iter().enumerate() {
            let t = if x < b[d] {
                b[d] - x
            } else if x > b[dim + d] {
                x - b[dim + d]
            } else {
                0.0
            };
            acc += t * t;
        }
        acc
    }

    /// Squared box upper bound (distance to the farthest corner).
    #[inline]
    fn kd_ub2(kd: &KdTree, dim: usize, node: usize, q: &[f64]) -> f64 {
        let b = &kd.bounds[node * 2 * dim..][..2 * dim];
        let mut acc = 0.0;
        for (d, &x) in q.iter().enumerate() {
            let t = (x - b[d]).abs().max((b[dim + d] - x).abs());
            acc += t * t;
        }
        acc
    }

    /// Counts points with `d2(q, p) < dc2` (strict), including the query
    /// point itself when it is indexed. Returns `(count, distance evals)`.
    pub fn range_count_d2(&self, q: &[f64], dc2: f64) -> (u32, u64) {
        match &self.rep {
            Rep::Grid(g) => {
                debug_assert!(dc2 <= g.w * g.w, "grid built for a smaller radius");
                let c = g.cell_coords(q);
                let mut count = 0u32;
                let mut evals = 0u64;
                for r in 0..=1 {
                    g.for_shell(c, r, |cell| {
                        for &pi in cell {
                            let d2 = squared_euclidean(q, self.point(pi));
                            evals += 1;
                            if d2 < dc2 {
                                count += 1;
                            }
                        }
                    });
                }
                (count, evals)
            }
            Rep::Kd(kd) => {
                let mut count = 0u32;
                let mut evals = 0u64;
                let mut stack = vec![0usize];
                while let Some(node) = stack.pop() {
                    if Self::kd_lb2(kd, self.dim, node, q) >= dc2 {
                        continue; // every d2 in the box is >= lb2 >= dc2
                    }
                    if Self::kd_ub2(kd, self.dim, node, q) < dc2 {
                        count += kd.len[node]; // every d2 is <= ub2 < dc2
                        continue;
                    }
                    if kd.right[node] == 0 {
                        let s = kd.start[node] as usize;
                        for &pi in &kd.perm[s..s + kd.len[node] as usize] {
                            let d2 = squared_euclidean(q, self.point(pi));
                            evals += 1;
                            if d2 < dc2 {
                                count += 1;
                            }
                        }
                    } else {
                        stack.push(kd.right[node] as usize);
                        stack.push(node + 1);
                    }
                }
                (count, evals)
            }
        }
    }

    /// Visits `(point index, d2)` for every indexed point with
    /// `d2(q, p) < dc2` (strict), including the query itself when indexed.
    /// Returns the number of distance evaluations.
    pub fn for_each_within_d2(&self, q: &[f64], dc2: f64, mut visit: impl FnMut(u32, f64)) -> u64 {
        let mut evals = 0u64;
        let mut scan = |pts: &[u32]| {
            for &pi in pts {
                let d2 = squared_euclidean(q, self.point(pi));
                evals += 1;
                if d2 < dc2 {
                    visit(pi, d2);
                }
            }
        };
        match &self.rep {
            Rep::Grid(g) => {
                debug_assert!(dc2 <= g.w * g.w, "grid built for a smaller radius");
                let c = g.cell_coords(q);
                for r in 0..=1 {
                    g.for_shell(c, r, &mut scan);
                }
            }
            Rep::Kd(kd) => {
                let mut stack = vec![0usize];
                while let Some(node) = stack.pop() {
                    if Self::kd_lb2(kd, self.dim, node, q) >= dc2 {
                        continue;
                    }
                    if kd.right[node] == 0 {
                        let s = kd.start[node] as usize;
                        scan(&kd.perm[s..s + kd.len[node] as usize]);
                    } else {
                        stack.push(kd.right[node] as usize);
                        stack.push(node + 1);
                    }
                }
            }
        }
        evals
    }

    /// Cross-partition range visit: for each query row in `queries`,
    /// visits `(query index, point index, d2)` for indexed points with
    /// `d2 < dc2` (strict). Returns total distance evaluations.
    pub fn cross_range_count_d2(
        &self,
        queries: &[f64],
        dc2: f64,
        mut visit: impl FnMut(u32, u32, f64),
    ) -> u64 {
        let mut evals = 0u64;
        for (qi, q) in queries.chunks_exact(self.dim).enumerate() {
            evals += self.for_each_within_d2(q, dc2, |pi, d2| visit(qi as u32, pi, d2));
        }
        evals
    }

    /// Best-first nearest-acceptable-point search in the *metric* domain
    /// (`d = d2.sqrt()`), matching the pipelines' delta kernels.
    ///
    /// `accept` maps an indexed point to `Some(candidate id)` when it may
    /// anchor the query (e.g. it is denser); `init` seeds `(distance,
    /// candidate id)` — pass `(f64::INFINITY, NO_UPSLOPE)` for an unseeded
    /// search. Candidates farther than `cap` are rejected outright.
    /// Tie-break: equal distance resolves to the smaller candidate id.
    /// Returns `((best distance, best id), distance evals)`.
    pub fn nearest_denser_d2(
        &self,
        q: &[f64],
        init: (f64, PointId),
        cap: f64,
        mut accept: impl FnMut(u32) -> Option<PointId>,
    ) -> ((f64, PointId), u64) {
        self.nearest_impl(q, init, cap, true, &mut accept)
    }

    /// Best-first nearest-acceptable-point search comparing raw squared
    /// distances (the serve probe's domain). Unseeded, uncapped.
    /// Returns `((best d2, best id), distance evals)`.
    pub fn nearest_by_d2(
        &self,
        q: &[f64],
        mut accept: impl FnMut(u32) -> Option<PointId>,
    ) -> ((f64, PointId), u64) {
        self.nearest_impl(
            q,
            (f64::INFINITY, crate::dp::NO_UPSLOPE),
            f64::INFINITY,
            false,
            &mut accept,
        )
    }

    fn nearest_impl(
        &self,
        q: &[f64],
        init: (f64, PointId),
        cap: f64,
        sqrt_domain: bool,
        accept: &mut dyn FnMut(u32) -> Option<PointId>,
    ) -> ((f64, PointId), u64) {
        let (mut best, mut best_id) = init;
        let mut evals = 0u64;
        let mut scan = |pts: &[u32], best: &mut f64, best_id: &mut PointId, evals: &mut u64| {
            for &pi in pts {
                if let Some(cand) = accept(pi) {
                    let d2 = squared_euclidean(q, self.point(pi));
                    *evals += 1;
                    let key = if sqrt_domain { d2.sqrt() } else { d2 };
                    if key <= cap && (key < *best || (key == *best && cand < *best_id)) {
                        *best = key;
                        *best_id = cand;
                    }
                }
            }
        };
        match &self.rep {
            Rep::Grid(g) => {
                let c = g.cell_coords(q);
                // First shell that can hold a grid cell. Starting there
                // skips the empty shells below it, so a query far outside
                // the grid costs O(grid diameter) shells, never O(distance).
                let r0 = g.dist_to_box(c);
                if r0 > GRID_FAR_QUERY_CELLS {
                    // So far out that cell arithmetic may have saturated
                    // (e.g. a cast-clamped coordinate): shell geometry is
                    // no longer trustworthy, and a linear scan costs no
                    // more than the blocked kernel for the same query.
                    scan(&g.entries, &mut best, &mut best_id, &mut evals);
                } else {
                    // Last shell holding any grid cell: the farthest corner.
                    let r_max = (0..self.dim)
                        .map(|d| c[d].max(g.cells[d] - 1 - c[d]))
                        .max()
                        .unwrap_or(0)
                        .max(r0);
                    for r in r0..=r_max {
                        if r >= 2 {
                            // Every point in shell r is at least (r-1)*w away
                            // (shrunk for rounding); equal bounds still scan so
                            // ties keep their smaller-id resolution.
                            let lb = (r - 1) as f64 * g.w * GRID_LB_SLACK;
                            let key_lb = if sqrt_domain { lb } else { lb * lb };
                            if key_lb > best.min(cap) {
                                break;
                            }
                        }
                        g.for_shell(c, r, |pts| scan(pts, &mut best, &mut best_id, &mut evals));
                    }
                }
            }
            Rep::Kd(kd) => {
                let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
                heap.push(Reverse((Self::kd_lb2(kd, self.dim, 0, q).to_bits(), 0)));
                while let Some(Reverse((lb_bits, node))) = heap.pop() {
                    let lb2 = f64::from_bits(lb_bits);
                    let key_lb = if sqrt_domain { lb2.sqrt() } else { lb2 };
                    // Best-first: every remaining region is at least this
                    // far. Strict >, so equal-distance smaller ids survive.
                    if key_lb > best.min(cap) {
                        break;
                    }
                    let node = node as usize;
                    if kd.right[node] == 0 {
                        let s = kd.start[node] as usize;
                        scan(
                            &kd.perm[s..s + kd.len[node] as usize],
                            &mut best,
                            &mut best_id,
                            &mut evals,
                        );
                    } else {
                        let l = node + 1;
                        let r = kd.right[node] as usize;
                        heap.push(Reverse((
                            Self::kd_lb2(kd, self.dim, l, q).to_bits(),
                            l as u32,
                        )));
                        heap.push(Reverse((
                            Self::kd_lb2(kd, self.dim, r, q).to_bits(),
                            r as u32,
                        )));
                    }
                }
            }
        }
        ((best, best_id), evals)
    }

    /// Distance from `q` to the farthest indexed point (0.0 for a
    /// single-point index queried with its own point) — the absolute
    /// peak's delta. Computed as `max(d2).sqrt()`, which equals the max of
    /// per-pair `d2.sqrt()` because sqrt is monotone and correctly
    /// rounded. Returns `(distance, distance evals)`.
    pub fn max_distance(&self, q: &[f64]) -> (f64, u64) {
        let mut best = 0.0f64;
        let mut evals = 0u64;
        match &self.rep {
            Rep::Grid(g) => {
                for &pi in &g.entries {
                    let d2 = squared_euclidean(q, self.point(pi));
                    evals += 1;
                    if d2 > best {
                        best = d2;
                    }
                }
            }
            Rep::Kd(kd) => {
                let mut heap: BinaryHeap<(u64, u32)> = BinaryHeap::new();
                heap.push((Self::kd_ub2(kd, self.dim, 0, q).to_bits(), 0));
                while let Some((ub_bits, node)) = heap.pop() {
                    if f64::from_bits(ub_bits) <= best {
                        break; // nothing left can exceed the current max
                    }
                    let node = node as usize;
                    if kd.right[node] == 0 {
                        let s = kd.start[node] as usize;
                        for &pi in &kd.perm[s..s + kd.len[node] as usize] {
                            let d2 = squared_euclidean(q, self.point(pi));
                            evals += 1;
                            if d2 > best {
                                best = d2;
                            }
                        }
                    } else {
                        let l = node + 1;
                        let r = kd.right[node] as usize;
                        heap.push((Self::kd_ub2(kd, self.dim, l, q).to_bits(), l as u32));
                        heap.push((Self::kd_ub2(kd, self.dim, r, q).to_bits(), r as u32));
                    }
                }
            }
        }
        (best.sqrt(), evals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{for_each_cross_d2, for_each_pair_d2};
    use crate::dp::{denser, NO_UPSLOPE};
    use proptest::prelude::*;

    /// Deterministic pseudo-random flat buffer: `n` points of `dim` dims
    /// in a few far-apart blobs, so pruning actually engages.
    fn blobs(n: usize, dim: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut flat = Vec::with_capacity(n * dim);
        for i in 0..n {
            let center = (i % 4) as f64 * 25.0;
            for d in 0..dim {
                let off = if d == 0 { center } else { 0.0 };
                flat.push(off + next() * 4.0 - 2.0);
            }
        }
        flat
    }

    fn brute_rho(flat: &[f64], dim: usize, dc2: f64) -> Vec<u32> {
        let n = flat.len() / dim;
        let mut rho = vec![0u32; n];
        for_each_pair_d2(flat, dim, |i, j, d2| {
            if d2 < dc2 {
                rho[i] += 1;
                rho[j] += 1;
            }
        });
        rho
    }

    #[test]
    fn kd_range_count_matches_blocked_pairs() {
        for dim in [1, 2, 4, 8] {
            let flat = blobs(300, dim, 42);
            let dc = 1.5;
            // dc chosen large enough relative to span that the grid path
            // is rejected for dim <= 3? Not necessarily — force kd.
            let idx = SpatialIndex {
                dim,
                flat: flat.clone(),
                n: 300,
                rep: Rep::Kd(KdTree::build(&flat, dim)),
            };
            let rho = brute_rho(&flat, dim, dc * dc);
            for i in 0..300u32 {
                let (count, _) = idx.range_count_d2(idx.point(i).to_vec().as_slice(), dc * dc);
                assert_eq!(count - 1, rho[i as usize], "dim={dim} i={i}");
            }
        }
    }

    #[test]
    fn grid_is_selected_for_low_dim_and_matches() {
        for dim in [1, 2, 3] {
            let flat = blobs(400, dim, 7);
            let dc = 1.0;
            let idx = SpatialIndex::build(&flat, dim, dc);
            assert!(idx.is_grid(), "dim={dim} should take the grid path");
            let rho = brute_rho(&flat, dim, dc * dc);
            for i in 0..400u32 {
                let (count, _) = idx.range_count_d2(&flat[i as usize * dim..][..dim], dc * dc);
                assert_eq!(count - 1, rho[i as usize], "dim={dim} i={i}");
            }
        }
    }

    #[test]
    fn huge_span_falls_back_to_kd() {
        // Span / d_c is enormous: the grid would need too many cells.
        let flat = vec![0.0, 1e9];
        let idx = SpatialIndex::build(&flat, 1, 1e-3);
        assert!(!idx.is_grid());
        assert_eq!(idx.range_count_d2(&[0.0], 1e-6).0, 1);
    }

    #[test]
    fn within_visits_match_and_count_evals() {
        let flat = blobs(250, 2, 99);
        let dc = 1.2;
        let idx = SpatialIndex::build(&flat, 2, dc);
        let dc2 = dc * dc;
        for i in (0..250u32).step_by(17) {
            let q = &flat[i as usize * 2..][..2];
            let mut seen: Vec<(u32, u64)> = Vec::new();
            let evals = idx.for_each_within_d2(q, dc2, |pi, d2| seen.push((pi, d2.to_bits())));
            assert!(evals >= seen.len() as u64);
            let mut brute: Vec<(u32, u64)> = (0..250u32)
                .filter_map(|j| {
                    let d2 = squared_euclidean(q, &flat[j as usize * 2..][..2]);
                    (d2 < dc2).then_some((j, d2.to_bits()))
                })
                .collect();
            seen.sort_unstable();
            brute.sort_unstable();
            assert_eq!(seen, brute, "i={i}");
        }
    }

    #[test]
    fn cross_range_matches_blocked_cross() {
        let own = blobs(150, 3, 5);
        let other = blobs(60, 3, 6);
        let dc = 1.1;
        let dc2 = dc * dc;
        let idx = SpatialIndex::build(&own, 3, dc);
        let mut got: Vec<(u32, u32, u64)> = Vec::new();
        idx.cross_range_count_d2(&other, dc2, |qi, pi, d2| got.push((qi, pi, d2.to_bits())));
        let mut want: Vec<(u32, u32, u64)> = Vec::new();
        for_each_cross_d2(&other, &own, 3, |q, i, d2| {
            if d2 < dc2 {
                want.push((q as u32, i as u32, d2.to_bits()));
            }
        });
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    /// Brute-force nearest-denser with the pipelines' exact tie rules.
    fn brute_nearest(
        flat: &[f64],
        dim: usize,
        rho: &[u32],
        i: u32,
        init: (f64, PointId),
        cap: f64,
    ) -> (f64, PointId) {
        let (mut best, mut best_id) = init;
        let q = &flat[i as usize * dim..][..dim];
        for j in 0..(flat.len() / dim) as u32 {
            if j == i || !denser(rho[j as usize], j, rho[i as usize], i) {
                continue;
            }
            let d = squared_euclidean(q, &flat[j as usize * dim..][..dim]).sqrt();
            if d <= cap && (d < best || (d == best && j < best_id)) {
                best = d;
                best_id = j;
            }
        }
        (best, best_id)
    }

    #[test]
    fn nearest_denser_matches_brute_force_with_ties() {
        for dim in [1, 2, 5] {
            let flat = blobs(220, dim, 31);
            let dc = 1.3;
            let idx = SpatialIndex::build(&flat, dim, dc);
            let rho: Vec<u32> = brute_rho(&flat, dim, dc * dc);
            for i in 0..220u32 {
                let q = &flat[i as usize * dim..][..dim];
                let (got, _) =
                    idx.nearest_denser_d2(q, (f64::INFINITY, NO_UPSLOPE), f64::INFINITY, |pi| {
                        (pi != i && denser(rho[pi as usize], pi, rho[i as usize], i)).then_some(pi)
                    });
                let want = brute_nearest(
                    &flat,
                    dim,
                    &rho,
                    i,
                    (f64::INFINITY, NO_UPSLOPE),
                    f64::INFINITY,
                );
                assert_eq!(got.0.to_bits(), want.0.to_bits(), "dim={dim} i={i}");
                assert_eq!(got.1, want.1, "dim={dim} i={i}");
            }
        }
    }

    #[test]
    fn nearest_respects_cap_and_seed() {
        let flat = blobs(180, 2, 77);
        let dc = 1.0;
        let idx = SpatialIndex::build(&flat, 2, dc);
        let rho = brute_rho(&flat, 2, dc * dc);
        for i in (0..180u32).step_by(7) {
            let q = &flat[i as usize * 2..][..2];
            let seed_j = (i + 1) % 180;
            let seed_d = squared_euclidean(q, &flat[seed_j as usize * 2..][..2]).sqrt();
            for cap in [0.5, 2.0, f64::INFINITY] {
                let init = if seed_d <= cap {
                    (seed_d, seed_j)
                } else {
                    (f64::INFINITY, NO_UPSLOPE)
                };
                let (got, _) = idx.nearest_denser_d2(q, init, cap, |pi| {
                    (pi != i && denser(rho[pi as usize], pi, rho[i as usize], i)).then_some(pi)
                });
                let want = brute_nearest(&flat, 2, &rho, i, init, cap);
                assert_eq!(got, want, "i={i} cap={cap}");
            }
        }
    }

    /// Regression for the grid nearest-search availability hang: queries
    /// far outside the grid box (including coordinates that saturate the
    /// f64 -> i64 cell cast) must terminate promptly and still match the
    /// exhaustive scan bit-for-bit; NaN queries must terminate with "no
    /// candidate" instead of looping or panicking.
    #[test]
    fn grid_nearest_handles_far_and_nonfinite_queries() {
        let flat = blobs(400, 2, 7);
        let dc = 1.0;
        let idx = SpatialIndex::build(&flat, 2, dc);
        assert!(idx.is_grid());
        let brute = |q: &[f64]| {
            let mut best = (f64::INFINITY, NO_UPSLOPE);
            for j in 0..400u32 {
                let d2 = squared_euclidean(q, &flat[j as usize * 2..][..2]);
                if d2 < best.0 || (d2 == best.0 && j < best.1) {
                    best = (d2, j);
                }
            }
            best
        };
        for q in [
            [1e9, 1e9],      // bounded shell walk from the box distance
            [-1e9, 3.0],     // far in one dimension only
            [1e300, -1e300], // saturates the cell cast: linear fallback
            [f64::MAX, f64::MAX],
        ] {
            let ((d2, id), _) = idx.nearest_by_d2(&q, Some);
            let want = brute(&q);
            assert_eq!(d2.to_bits(), want.0.to_bits(), "q={q:?}");
            assert_eq!(id, want.1, "q={q:?}");
            assert_eq!(idx.range_count_d2(&q, dc * dc), (0, 0), "q={q:?}");
        }
        let ((d, id), _) = idx.nearest_by_d2(&[f64::NAN, 0.5], Some);
        assert!(d.is_infinite());
        assert_eq!(id, NO_UPSLOPE);
        assert_eq!(idx.range_count_d2(&[f64::NAN, 0.5], dc * dc).0, 0);
    }

    /// Shells from the box distance to the farthest corner visit every
    /// point exactly once, for query cells inside and outside the grid —
    /// the partition invariant the nearest search's enumeration relies on.
    #[test]
    fn for_shell_partitions_entries_by_chebyshev_distance() {
        let flat = blobs(300, 2, 21);
        let idx = SpatialIndex::build(&flat, 2, 1.0);
        let Rep::Grid(g) = &idx.rep else {
            panic!("expected the grid representation")
        };
        for c in [
            [3i64, 5, 0],
            [0, 0, 0],
            [-4, 2, 0],
            [7, -9, 0],
            [100, 1000, 0],
        ] {
            let r_max = (0..2)
                .map(|d| c[d].max(g.cells[d] - 1 - c[d]))
                .max()
                .unwrap()
                .max(g.dist_to_box(c));
            let mut visited = 0usize;
            // From 0, not dist_to_box: shells below the box distance must
            // visit nothing (their clamped windows are empty).
            for r in 0..=r_max {
                g.for_shell(c, r, |pts| visited += pts.len());
            }
            assert_eq!(visited, 300, "c={c:?}");
        }
        // Saturated cells never reach in-grid coordinates.
        assert!(g.dist_to_box([i64::MAX, i64::MIN, 0]) > GRID_FAR_QUERY_CELLS);
        for r in [0, 1, i64::MAX] {
            g.for_shell([i64::MAX, i64::MIN, 0], r, |_| {
                panic!("saturated cell visited the grid")
            });
        }
    }

    #[test]
    fn max_distance_matches_brute_force_bitwise() {
        for dim in [1, 2, 4] {
            let flat = blobs(200, dim, 13);
            let idx = SpatialIndex::build(&flat, dim, 0.8);
            for i in (0..200u32).step_by(11) {
                let q = &flat[i as usize * dim..][..dim];
                let (got, _) = idx.max_distance(q);
                let want = (0..200u32)
                    .map(|j| squared_euclidean(q, &flat[j as usize * dim..][..dim]))
                    .fold(0.0f64, f64::max)
                    .sqrt();
                assert_eq!(got.to_bits(), want.to_bits(), "dim={dim} i={i}");
            }
        }
    }

    #[test]
    fn single_point_index() {
        let flat = vec![1.0, 2.0];
        let idx = SpatialIndex::build(&flat, 2, 1.0);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.range_count_d2(&[1.0, 2.0], 1.0), (1, 1));
        let ((d, u), _) = idx.nearest_denser_d2(
            &[1.0, 2.0],
            (f64::INFINITY, NO_UPSLOPE),
            f64::INFINITY,
            |_| None,
        );
        assert_eq!((d, u), (f64::INFINITY, NO_UPSLOPE));
        assert_eq!(idx.max_distance(&[1.0, 2.0]).0, 0.0);
    }

    #[test]
    fn strategy_parses_and_resolves() {
        assert_eq!("blocked".parse(), Ok(KernelStrategy::Blocked));
        assert_eq!("indexed".parse(), Ok(KernelStrategy::Indexed));
        assert_eq!("auto".parse(), Ok(KernelStrategy::Auto));
        assert!("fast".parse::<KernelStrategy>().is_err());
        let a = KernelStrategy::Auto;
        assert_eq!(a.resolved_with(Some("blocked")), KernelStrategy::Blocked);
        assert_eq!(a.resolved_with(Some("bogus")), KernelStrategy::Auto);
        assert_eq!(a.resolved_with(None), KernelStrategy::Auto);
        assert!(!KernelStrategy::Auto.use_indexed(AUTO_MIN_POINTS - 1));
        assert!(KernelStrategy::Auto.use_indexed(AUTO_MIN_POINTS));
        assert!(KernelStrategy::Indexed.use_indexed(2));
        assert!(!KernelStrategy::Blocked.use_indexed(1 << 20));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// rho counts and delta/upslope chains from the index match the
        /// blocked kernels bit-for-bit on arbitrary data.
        #[test]
        fn index_kernels_equal_blocked_kernels(
            dim in 1usize..4,
            n in 2usize..60,
            coords in proptest::collection::vec(-30.0f64..30.0, 240),
            dc in 0.4f64..8.0,
        ) {
            let flat = &coords[..n * dim];
            let dc2 = dc * dc;
            let idx = SpatialIndex::build(flat, dim, dc);
            let rho = brute_rho(flat, dim, dc2);
            for i in 0..n as u32 {
                let q = &flat[i as usize * dim..][..dim];
                let (count, _) = idx.range_count_d2(q, dc2);
                prop_assert_eq!(count.saturating_sub(1), rho[i as usize]);
                let (got, _) = idx.nearest_denser_d2(
                    q,
                    (f64::INFINITY, NO_UPSLOPE),
                    f64::INFINITY,
                    |pi| (pi != i && denser(rho[pi as usize], pi, rho[i as usize], i))
                        .then_some(pi),
                );
                let want = brute_nearest(flat, dim, &rho, i, (f64::INFINITY, NO_UPSLOPE), f64::INFINITY);
                prop_assert_eq!(got.0.to_bits(), want.0.to_bits());
                prop_assert_eq!(got.1, want.1);
            }
        }
    }
}
