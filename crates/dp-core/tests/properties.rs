//! Property-based tests of the core DP invariants and quality metrics.

use dp_core::dp::NO_UPSLOPE;
use dp_core::{compute_exact, decision, quality, Dataset};
use proptest::prelude::*;

fn dataset_strategy() -> impl Strategy<Value = (Dataset, f64)> {
    (1usize..=3, 2usize..=50)
        .prop_flat_map(|(dim, n)| {
            (
                proptest::collection::vec(-100.0f64..100.0, dim * n),
                Just(dim),
                0.1f64..50.0,
            )
        })
        .prop_map(|(flat, dim, dc)| (Dataset::from_flat(dim, flat), dc))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// rho is bounded by N-1 and symmetric in the pair relation: the
    /// total neighbor count equals twice the number of close pairs.
    #[test]
    fn rho_counts_are_consistent((ds, dc) in dataset_strategy()) {
        let r = compute_exact(&ds, dc);
        let n = ds.len();
        let total: u64 = r.rho.iter().map(|&x| x as u64).sum();
        // Brute-force the pair count.
        let mut pairs = 0u64;
        for i in 0..n {
            for j in (i + 1)..n {
                if dp_core::distance::euclidean(
                    ds.point(i as u32),
                    ds.point(j as u32),
                ) < dc
                {
                    pairs += 1;
                }
            }
        }
        // Floating borderline pairs must be judged by the same kernel, so
        // compare against the within() predicate instead when they differ.
        let mut pairs_within = 0u64;
        for i in 0..n {
            for j in (i + 1)..n {
                if dp_core::DistanceKind::Euclidean.within(
                    ds.point(i as u32),
                    ds.point(j as u32),
                    dc,
                ) {
                    pairs_within += 1;
                }
            }
        }
        let _ = pairs;
        prop_assert_eq!(total, 2 * pairs_within);
        prop_assert!(r.rho.iter().all(|&x| (x as usize) < n));
    }

    /// Exactly one absolute peak exists; its delta is the max distance
    /// from it; every other point's upslope is strictly denser.
    #[test]
    fn single_absolute_peak((ds, dc) in dataset_strategy()) {
        let r = compute_exact(&ds, dc);
        let peaks: Vec<usize> = (0..r.len())
            .filter(|&i| r.upslope[i] == NO_UPSLOPE)
            .collect();
        prop_assert_eq!(peaks.len(), 1);
        let p = peaks[0] as u32;
        // The peak maximizes (rho, id) lexicographically.
        for i in 0..r.len() as u32 {
            if i != p {
                prop_assert!(dp_core::dp::denser(r.rho[p as usize], p, r.rho[i as usize], i));
            }
        }
    }

    /// delta_i is realized: d(i, upslope_i) == delta_i, and no denser
    /// point is closer.
    #[test]
    fn delta_is_realized_and_minimal((ds, dc) in dataset_strategy()) {
        let r = compute_exact(&ds, dc);
        for i in 0..r.len() as u32 {
            let u = r.upslope[i as usize];
            if u == NO_UPSLOPE {
                continue;
            }
            let d = dp_core::distance::euclidean(ds.point(i), ds.point(u));
            prop_assert!((d - r.delta[i as usize]).abs() < 1e-9);
            for j in 0..r.len() as u32 {
                if j == i {
                    continue;
                }
                if dp_core::dp::denser(r.rho[j as usize], j, r.rho[i as usize], i) {
                    let dj = dp_core::distance::euclidean(ds.point(i), ds.point(j));
                    prop_assert!(dj >= r.delta[i as usize] - 1e-9);
                }
            }
        }
    }

    /// Scaling all coordinates scales every delta by the same factor and
    /// leaves rho unchanged (with dc scaled too).
    #[test]
    fn dp_is_scale_equivariant((ds, dc) in dataset_strategy(), factor in 0.1f64..10.0) {
        let r1 = compute_exact(&ds, dc);
        let scaled = Dataset::from_flat(
            ds.dim(),
            ds.as_flat().iter().map(|x| x * factor).collect(),
        );
        let r2 = compute_exact(&scaled, dc * factor);
        prop_assert_eq!(&r1.rho, &r2.rho);
        for (a, b) in r1.delta.iter().zip(&r2.delta) {
            prop_assert!((a * factor - b).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }

    /// Quality metric ranges.
    #[test]
    fn metric_ranges(
        a in proptest::collection::vec(0u32..5, 2..60),
        seed in any::<u64>(),
    ) {
        // A pseudo-random second labeling of the same length.
        let b: Vec<u32> = a
            .iter()
            .enumerate()
            .map(|(i, _)| ((seed >> (i % 48)) as u32 ^ i as u32) % 5)
            .collect();
        let ari = quality::adjusted_rand_index(&a, &b);
        prop_assert!((-1.0..=1.0 + 1e-12).contains(&ari));
        let nmi = quality::normalized_mutual_information(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&nmi));
        let p = quality::purity(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        let (pr, rc, f1) = quality::pairwise_f1(&a, &b);
        for v in [pr, rc, f1] {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
        }
    }

    /// tau metrics: identity gives 1; tau1 <= 1 always; tau2 can be
    /// negative only when estimates wildly overshoot.
    #[test]
    fn tau_metric_properties(rho in proptest::collection::vec(0u32..100, 1..50)) {
        prop_assert_eq!(quality::tau1(&rho, &rho), 1.0);
        prop_assert_eq!(quality::tau2(&rho, &rho), 1.0);
        // Underestimates keep tau2 in [0, 1].
        let under: Vec<u32> = rho.iter().map(|&x| x / 2).collect();
        let t2 = quality::tau2(&rho, &under);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&t2));
    }

    /// Normalization maps into the unit box and is idempotent.
    #[test]
    fn normalize_into_unit_box(flat in proptest::collection::vec(-1e6f64..1e6, 4..60)) {
        let dim = 2;
        let flat = &flat[..(flat.len() / dim) * dim];
        let mut ds = Dataset::from_flat(dim, flat.to_vec());
        ds.normalize_min_max();
        for (_, p) in ds.iter() {
            for &x in p {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&x));
            }
        }
        let once = ds.clone();
        ds.normalize_min_max();
        for (a, b) in once.as_flat().iter().zip(ds.as_flat()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// The Gaussian-kernel variant produces a valid rank permutation and
    /// the same absolute peak ordering semantics.
    #[test]
    fn kernel_rank_is_valid((ds, dc) in dataset_strategy()) {
        let k = dp_core::compute_gaussian(&ds, dc);
        let mut ranks = k.result.rho.clone();
        ranks.sort_unstable();
        let expected: Vec<u32> = (0..ds.len() as u32).collect();
        prop_assert_eq!(ranks, expected);
        let abs_peaks = k.result.upslope.iter().filter(|&&u| u == NO_UPSLOPE).count();
        prop_assert_eq!(abs_peaks, 1);
    }

    /// The triangle-inequality-accelerated path is bit-identical to the
    /// reference on arbitrary inputs.
    #[test]
    fn fast_path_is_identical((ds, dc) in dataset_strategy(), pivots in 1usize..10) {
        let slow = compute_exact(&ds, dc);
        let fast = dp_core::compute_exact_fast(&ds, dc, pivots);
        prop_assert_eq!(&fast.rho, &slow.rho);
        prop_assert_eq!(&fast.upslope, &slow.upslope);
        for (a, b) in fast.delta.iter().zip(&slow.delta) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// select_top_k returns k distinct in-range ids (or all points when
    /// k >= N).
    #[test]
    fn top_k_shape((ds, dc) in dataset_strategy(), k in 1usize..10) {
        let r = compute_exact(&ds, dc);
        let peaks = decision::select_top_k(&r, k);
        prop_assert_eq!(peaks.len(), k.min(ds.len()));
        let set: std::collections::HashSet<_> = peaks.iter().collect();
        prop_assert_eq!(set.len(), peaks.len());
        prop_assert!(peaks.iter().all(|&p| (p as usize) < ds.len()));
    }
}
