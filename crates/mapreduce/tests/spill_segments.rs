//! Property tests for the disk spill tier: segment files must round-trip
//! arbitrary batches through the wire codec, meter bytes exactly as the
//! `ShuffleSize` accounting does, serve arbitrary range reads identically
//! to resident slicing, and recover the intact prefix of a segment whose
//! tail was torn by a mid-write kill.

use mapreduce::io_shim::{FaultFs, IoFaultPlan};
use mapreduce::spill::{scan_frames, SegmentWriter, SpillDir, SpilledRows};
use mapreduce::ShuffleSize;
use proptest::prelude::*;

type Row = (u32, Vec<f64>);

/// Arbitrary non-empty batches of keyed float rows — the shape every
/// shuffle partition and snapshot spill writes.
fn batches() -> impl Strategy<Value = Vec<Vec<Row>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            (any::<u32>(), proptest::collection::vec(any::<f64>(), 0..6)),
            1..20,
        ),
        1..8,
    )
}

/// f64 payloads travel as bit patterns; NaN breaks `==` but not the
/// codec, so compare rows via bits.
fn rows_eq(a: &[Row], b: &[Row]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|((ka, va), (kb, vb))| {
            ka == kb
                && va.len() == vb.len()
                && va.iter().zip(vb).all(|(x, y)| x.to_bits() == y.to_bits())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every frame written comes back intact via positioned reads, and
    /// each frame's metered bytes equal the sum of its records'
    /// `ShuffleSize` — the contract that makes spilled and resident
    /// partitions account identically.
    #[test]
    fn segments_round_trip_and_meter_exactly(batches in batches()) {
        let dir = SpillDir::create("prop-roundtrip").unwrap();
        let mut w = SegmentWriter::create(dir.segment_path("seg")).unwrap();
        let metas: Vec<_> = batches
            .iter()
            .map(|b| w.write_frame(b).unwrap())
            .collect();
        for (batch, meta) in batches.iter().zip(&metas) {
            let expect: u64 = batch.iter().map(ShuffleSize::shuffle_bytes).sum();
            prop_assert_eq!(meta.record_bytes, expect);
            prop_assert_eq!(meta.records as usize, batch.len());
        }
        let seg = w.finish().unwrap();
        // Read back out of write order: positioned reads share one handle.
        for (batch, meta) in batches.iter().zip(&metas).rev() {
            let back: Vec<Row> = seg.read_frame(meta).unwrap();
            prop_assert!(rows_eq(&back, batch));
        }
    }

    /// `SpilledRows::read_range` equals resident slicing for every
    /// subrange, regardless of how rows were batched into frames.
    #[test]
    fn spilled_range_reads_match_resident_slicing(
        batches in batches(),
        seed in any::<u64>(),
    ) {
        let flat: Vec<Row> = batches.concat();
        let spilled = SpilledRows::from_batches("prop-range", batches).unwrap();
        prop_assert_eq!(spilled.len(), flat.len());
        prop_assert!(rows_eq(&spilled.read_all(), &flat));
        // A handful of deterministic pseudo-random subranges.
        let n = flat.len();
        let mut state = seed | 1;
        for _ in 0..8 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = (state >> 33) as usize % (n + 1);
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let b = (state >> 33) as usize % (n + 1);
            let (s, e) = (a.min(b), a.max(b));
            prop_assert!(rows_eq(&spilled.read_range(s, e), &flat[s..e]));
        }
    }

    /// Truncating a segment at *any* byte boundary leaves a recoverable
    /// file: `scan_frames` returns exactly the frames wholly inside the
    /// cut and flags the torn tail — never panics, never misdecodes.
    #[test]
    fn torn_tail_truncation_recovers_the_intact_prefix(
        batches in batches(),
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = SpillDir::create("prop-torn").unwrap();
        let path = dir.segment_path("seg");
        let mut w = SegmentWriter::create(path.clone()).unwrap();
        // Frame boundaries: ends[i] = file offset after frame i.
        let mut ends = Vec::new();
        for b in &batches {
            w.write_frame(b).unwrap();
            ends.push(w.offset());
        }
        let total = w.offset();
        drop(w); // keep the file, as a killed writer would

        let cut = (total as f64 * cut_frac) as u64;
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..cut as usize]).unwrap();

        let outcome = scan_frames::<Row>(&path).unwrap();
        let intact = ends.iter().filter(|e| **e <= cut).count();
        prop_assert_eq!(outcome.frames.len(), intact);
        prop_assert_eq!(outcome.torn_tail, intact < batches.len());
        for (back, batch) in outcome.frames.iter().zip(&batches) {
            prop_assert!(rows_eq(back, batch));
        }
    }

    /// Flipping one byte inside a frame is caught by the checksum: the
    /// scan stops at the last frame before the corruption.
    #[test]
    fn corrupted_frames_never_misdecode(
        batches in batches(),
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let dir = SpillDir::create("prop-corrupt").unwrap();
        let path = dir.segment_path("seg");
        let mut w = SegmentWriter::create(path.clone()).unwrap();
        let mut ends = Vec::new();
        for b in &batches {
            w.write_frame(b).unwrap();
            ends.push(w.offset());
        }
        let total = w.offset() as usize;
        drop(w);

        let mut bytes = std::fs::read(&path).unwrap();
        let pos = ((total as f64 * pos_frac) as usize).min(total - 1);
        bytes[pos] ^= xor;
        std::fs::write(&path, &bytes).unwrap();

        let outcome = scan_frames::<Row>(&path).unwrap();
        // Frames before the corrupted one decode; whether the scan gets
        // past the flipped byte depends on where it landed (a length
        // word, a checksum, or payload bits that still sum right is
        // impossible — FNV catches any single-byte flip), so the strong
        // guarantee is: every returned frame matches what was written,
        // and the frame containing the flipped byte is never returned
        // as anything *other* than its original content.
        let first_hit = ends.iter().position(|e| pos < *e as usize).unwrap();
        prop_assert!(outcome.frames.len() <= first_hit);
        for (back, batch) in outcome.frames.iter().zip(&batches) {
            prop_assert!(rows_eq(back, batch));
        }
        prop_assert!(outcome.torn_tail);
    }

    /// Writing a segment under an arbitrary seeded storage-fault plan —
    /// transient EIO, ENOSPC, clean and torn power cuts — never leaves a
    /// file whose recovery scan misdecodes: whatever survives is an
    /// intact prefix of the written frames. And a `finish()` that
    /// returned `Ok` is a real durability acknowledgement — every frame
    /// must be readable afterwards.
    #[test]
    fn segments_under_fault_plans_recover_an_intact_prefix(
        batches in batches(),
        seed in any::<u64>(),
        eio in 0u16..300,
        enospc in 0u16..30,
        crash in 0u16..30,
        torn in 0u16..30,
    ) {
        let dir = SpillDir::create("prop-faults").unwrap();
        let path = dir.segment_path("seg");
        let fs = FaultFs::with_plan(IoFaultPlan {
            seed,
            eio_per_mille: eio,
            enospc_per_mille: enospc,
            crash_per_mille: crash,
            torn_per_mille: torn,
            ..Default::default()
        });

        let mut written = 0usize;
        // Hold the finished segment alive: dropping it deletes the file.
        let finished = (|| {
            let mut w = SegmentWriter::create_with(path.clone(), fs.clone())?;
            for b in &batches {
                w.write_frame(b)?;
                written += 1;
            }
            w.finish()
        })();

        if path.exists() {
            let outcome = scan_frames::<Row>(&path).unwrap();
            if finished.is_ok() {
                // `finish` fsynced and propagated any failure (the old
                // `.ok()` swallow would break exactly this property):
                // an acknowledged segment serves every frame.
                prop_assert_eq!(outcome.frames.len(), batches.len());
                prop_assert!(!outcome.torn_tail);
            }
            prop_assert!(outcome.frames.len() <= written);
            for (back, batch) in outcome.frames.iter().zip(&batches) {
                prop_assert!(rows_eq(back, batch));
            }
        } else {
            // The file only fails to exist if its creation was faulted.
            prop_assert!(finished.is_err());
        }
    }
}
