//! Property tests for the wire encoding: every `Wire` impl must
//! round-trip arbitrary values, report its serialized size exactly
//! (`encoded length == shuffle_bytes()` — the contract the shuffle-byte
//! accounting depends on), and fail loudly on truncated or oversized
//! buffers instead of misreading them.

use mapreduce::wire::{decode, encode, Wire, WireError};
use mapreduce::ShuffleSize;
use proptest::prelude::*;

/// Round-trip + size contract in one check.
fn check_roundtrip<T: Wire + ShuffleSize + PartialEq + std::fmt::Debug>(value: &T) {
    let bytes = encode(value);
    assert_eq!(
        bytes.len() as u64,
        value.shuffle_bytes(),
        "size contract for {value:?}"
    );
    let back: T = decode(&bytes).expect("well-formed buffer must decode");
    assert_eq!(&back, value);
}

/// Every strict prefix of a valid encoding must error — never decode to
/// some other value, never panic.
fn check_truncations<T: Wire + ShuffleSize>(value: &T) {
    let bytes = encode(value);
    for cut in 0..bytes.len() {
        assert!(
            decode::<T>(&bytes[..cut]).is_err(),
            "decoding a {cut}-byte prefix of a {}-byte encoding must fail",
            bytes.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scalars_round_trip(a in any::<u32>(), b in any::<i64>(), c in any::<f64>(), d in any::<bool>()) {
        check_roundtrip(&a);
        check_roundtrip(&b);
        check_roundtrip(&d);
        // NaN != NaN breaks the equality check, not the codec; the bit
        // pattern is what travels, so compare via bits.
        let bytes = encode(&c);
        prop_assert_eq!(bytes.len() as u64, c.shuffle_bytes());
        let back: f64 = decode(&bytes).expect("decode f64");
        prop_assert_eq!(back.to_bits(), c.to_bits());
    }

    #[test]
    fn strings_round_trip(s in any::<String>()) {
        check_roundtrip(&s);
    }

    #[test]
    fn keyed_record_vectors_round_trip(
        records in proptest::collection::vec((any::<u32>(), any::<String>(), any::<u64>()), 0..40),
    ) {
        check_roundtrip(&records);
    }

    #[test]
    fn point_records_round_trip(
        coords in proptest::collection::vec(-1e12f64..1e12, 0..64),
        id in any::<u32>(),
        some_tag in any::<bool>(),
        tag in any::<u16>(),
    ) {
        let tag = some_tag.then_some(tag);
        check_roundtrip(&coords);
        check_roundtrip(&(id, coords.clone()));
        check_roundtrip(&tag);
        check_roundtrip(&(id, tag, coords));
    }

    #[test]
    fn nested_vectors_round_trip(
        rows in proptest::collection::vec(
            proptest::collection::vec(any::<i32>(), 0..10),
            0..10,
        ),
    ) {
        check_roundtrip(&rows);
    }

    #[test]
    fn every_truncation_of_a_valid_buffer_errors(
        coords in proptest::collection::vec(any::<f64>(), 0..16),
        s in any::<String>(),
        pair in (any::<u64>(), any::<String>()),
    ) {
        check_truncations(&coords);
        check_truncations(&s);
        check_truncations(&pair);
    }

    #[test]
    fn trailing_bytes_are_rejected_not_ignored(
        value in (any::<u32>(), proptest::collection::vec(any::<f64>(), 0..8)),
        extra in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let mut bytes = encode(&value);
        let n = extra.len();
        bytes.extend(extra);
        // Depending on what the garbage parses as, the decoder reports
        // either leftover bytes or a corrupt field — never success.
        match decode::<(u32, Vec<f64>)>(&bytes) {
            Err(WireError::TrailingBytes(k)) => prop_assert_eq!(k, n),
            Err(_) => {}
            Ok(_) => prop_assert!(false, "decode must not accept trailing garbage"),
        }
    }
}

#[test]
fn corrupt_length_prefix_does_not_allocate_or_panic() {
    // A Vec length prefix claiming u32::MAX elements with a 4-byte body:
    // the defensive capacity cap must keep this a clean error.
    let mut bytes = Vec::new();
    u32::MAX.write(&mut bytes);
    0u32.write(&mut bytes);
    assert!(matches!(
        decode::<Vec<u64>>(&bytes),
        Err(WireError::Truncated)
    ));
}

#[test]
fn invalid_scalar_payloads_are_corrupt_not_garbage() {
    // bool accepts only 0 and 1.
    assert!(matches!(decode::<bool>(&[7]), Err(WireError::Corrupt(_))));
    // Strings must be UTF-8.
    let mut bytes = Vec::new();
    2u32.write(&mut bytes);
    bytes.extend([0xff, 0xfe]);
    assert!(matches!(
        decode::<String>(&bytes),
        Err(WireError::Corrupt(_))
    ));
}
