//! Model-based testing of the MapReduce engine: for arbitrary inputs and
//! task counts, the engine must produce exactly what a naive sequential
//! interpretation of MapReduce semantics produces.

use mapreduce::task::{FnMapper, FnReducer};
use mapreduce::{Combiner, Emitter, JobBuilder, JobConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// The reference model: group-by-key, apply reduce per key (value order
/// within a key = input order).
fn reference_sum(input: &[(u32, u32)], buckets: u32) -> BTreeMap<u32, u64> {
    let mut grouped: BTreeMap<u32, u64> = BTreeMap::new();
    for &(k, v) in input {
        *grouped.entry(k % buckets).or_insert(0) += v as u64;
    }
    grouped
}

fn reference_concat(input: &[(u32, u32)], buckets: u32) -> BTreeMap<u32, Vec<u32>> {
    let mut grouped: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for &(k, v) in input {
        grouped.entry(k % buckets).or_default().push(v);
    }
    grouped
}

fn run_sum(
    input: Vec<(u32, u32)>,
    buckets: u32,
    map_tasks: usize,
    reduce_tasks: usize,
    with_combiner: bool,
) -> BTreeMap<u32, u64> {
    struct SumCombiner;
    impl Combiner for SumCombiner {
        type Key = u32;
        type Value = u64;
        fn combine(&self, _k: &u32, vs: Vec<u64>) -> Vec<u64> {
            vec![vs.into_iter().sum()]
        }
    }
    let m = FnMapper::new(move |k: u32, v: u32, out: &mut Emitter<u32, u64>| {
        out.emit(k % buckets, v as u64);
    });
    let r = FnReducer::new(|k: &u32, vs: Vec<u64>, out: &mut Emitter<u32, u64>| {
        out.emit(*k, vs.into_iter().sum());
    });
    let b = JobBuilder::new("sum", m, r).config(JobConfig {
        map_tasks,
        reduce_tasks,
        fault: None,
        chaos: None,
    });
    let b = if with_combiner {
        b.combiner(SumCombiner)
    } else {
        b
    };
    let (out, _) = b.run(input);
    out.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sum aggregation matches the reference for every parallelism
    /// configuration, with and without combiner.
    #[test]
    fn sum_matches_reference(
        input in proptest::collection::vec((any::<u32>(), 0u32..1000), 0..200),
        buckets in 1u32..20,
        map_tasks in 1usize..9,
        reduce_tasks in 1usize..9,
        with_combiner in any::<bool>(),
    ) {
        let expected = reference_sum(&input, buckets);
        let got = run_sum(input, buckets, map_tasks, reduce_tasks, with_combiner);
        prop_assert_eq!(got, expected);
    }

    /// Value ordering within a key follows input order regardless of the
    /// task counts (the stable-shuffle guarantee the pipelines rely on).
    #[test]
    fn value_order_is_stable(
        input in proptest::collection::vec((0u32..8, any::<u32>()), 0..150),
        map_tasks in 1usize..6,
        reduce_tasks in 1usize..6,
    ) {
        let buckets = 4;
        let expected = reference_concat(&input, buckets);
        let m = FnMapper::new(move |k: u32, v: u32, out: &mut Emitter<u32, u32>| {
            out.emit(k % buckets, v);
        });
        let r = FnReducer::new(|k: &u32, vs: Vec<u32>, out: &mut Emitter<u32, Vec<u32>>| {
            out.emit(*k, vs);
        });
        let (out, _) = JobBuilder::new("concat", m, r)
            .config(JobConfig { map_tasks, reduce_tasks, fault: None, chaos: None })
            .run(input);
        let got: BTreeMap<u32, Vec<u32>> = out.into_iter().collect();
        prop_assert_eq!(got, expected);
    }

    /// The wire codec round-trips arbitrary pipeline-shaped records and
    /// its length always equals the ShuffleSize estimate.
    #[test]
    fn wire_round_trips_point_records(
        id in any::<u32>(),
        coords in proptest::collection::vec(any::<f64>().prop_filter("finite", |x| x.is_finite()), 0..80),
    ) {
        use mapreduce::{decode, encode, ShuffleSize};
        let record = (id, coords);
        let bytes = encode(&record);
        prop_assert_eq!(bytes.len() as u64, record.shuffle_bytes());
        let back: (u32, Vec<f64>) = decode(&bytes).expect("decode");
        prop_assert_eq!(back, record);
    }

    /// Wire codec on delta partials (the other hot shuffled type).
    #[test]
    fn wire_round_trips_delta_partials(
        d in any::<f64>().prop_filter("finite", |x| x.is_finite()),
        u in any::<u32>(),
        maxd in any::<f64>().prop_filter("finite", |x| x.is_finite()),
    ) {
        use mapreduce::{decode, encode};
        let v = (d, u, maxd);
        let back: (f64, u32, f64) = decode(&encode(&v)).expect("decode");
        prop_assert_eq!(back, v);
    }

    /// Metric identities: map_output >= combine_output = shuffle records;
    /// reduce groups = distinct keys; empty input yields all-zero
    /// counters.
    #[test]
    fn metric_identities(
        input in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..150),
        map_tasks in 1usize..6,
        reduce_tasks in 1usize..6,
    ) {
        let buckets = 6;
        let distinct: std::collections::HashSet<u32> =
            input.iter().map(|&(k, _)| k % buckets).collect();
        let m = FnMapper::new(move |k: u32, v: u32, out: &mut Emitter<u32, u64>| {
            out.emit(k % buckets, v as u64);
        });
        let r = FnReducer::new(|k: &u32, vs: Vec<u64>, out: &mut Emitter<u32, u64>| {
            out.emit(*k, vs.len() as u64);
        });
        let (_, metrics) = JobBuilder::new("ids", m, r)
            .config(JobConfig { map_tasks, reduce_tasks, fault: None, chaos: None })
            .run(input.clone());
        prop_assert_eq!(metrics.map_input_records, input.len() as u64);
        prop_assert_eq!(metrics.map_output_records, input.len() as u64);
        prop_assert_eq!(metrics.shuffle_records, metrics.combine_output_records);
        prop_assert_eq!(metrics.reduce_input_groups, distinct.len() as u64);
        prop_assert_eq!(metrics.reduce_output_records, distinct.len() as u64);
        // Shuffle bytes: (4 key + 8 value) per record.
        prop_assert_eq!(metrics.shuffle_bytes, 12 * input.len() as u64);
    }
}
