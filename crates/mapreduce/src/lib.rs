//! # mapreduce — an in-process shared-nothing MapReduce engine
//!
//! The LSH-DDP paper runs on Hadoop 1.2.1; this crate is the substrate that
//! replaces it. It is a *real* MapReduce implementation — user-defined
//! [`Mapper`]s and [`Reducer`]s, an optional [`Combiner`], a hash
//! [`Partitioner`], multi-threaded map and reduce task execution, and a
//! grouping shuffle — shrunk onto one machine's thread pool.
//!
//! Two properties matter for reproducing the paper's evaluation:
//!
//! 1. **Exact cost accounting.** Every key/value type implements
//!    [`ShuffleSize`]; the engine records shuffled bytes and records per job
//!    exactly like Hadoop's `REDUCE_SHUFFLE_BYTES`/`REDUCE_INPUT_RECORDS`
//!    counters. These feed Figure 10(b) and Table IV.
//! 2. **A cluster cost model.** [`cost::ClusterSpec`] converts a job's
//!    measured counters (CPU work units, shuffled bytes, records) into a
//!    simulated wall time for an arbitrary worker count, which is how the
//!    64-node EC2 experiment (91.2 h vs 1.3 h) is reproduced on one machine.
//!
//! ## Anatomy of a job
//!
//! ```
//! use mapreduce::{JobBuilder, JobConfig, Emitter, Mapper, Reducer};
//!
//! /// Tokenize lines.
//! struct Tokenize;
//! impl Mapper for Tokenize {
//!     type InKey = u64;            // line number
//!     type InValue = String;       // line text
//!     type OutKey = String;        // word
//!     type OutValue = u64;         // count
//!     fn map(&self, _k: u64, line: String, out: &mut Emitter<String, u64>) {
//!         for w in line.split_whitespace() {
//!             out.emit(w.to_string(), 1);
//!         }
//!     }
//! }
//!
//! /// Sum counts.
//! struct Sum;
//! impl Reducer for Sum {
//!     type InKey = String;
//!     type InValue = u64;
//!     type OutKey = String;
//!     type OutValue = u64;
//!     fn reduce(&self, k: &String, vs: Vec<u64>, out: &mut Emitter<String, u64>) {
//!         out.emit(k.clone(), vs.into_iter().sum());
//!     }
//! }
//!
//! let input = vec![(0u64, "a b a".to_string()), (1, "b".to_string())];
//! let (out, metrics) = JobBuilder::new("wordcount", Tokenize, Sum)
//!     .config(JobConfig::default())
//!     .run(input);
//! assert_eq!(out, vec![("a".into(), 2), ("b".into(), 2)]);
//! assert_eq!(metrics.map_output_records, 4);
//! ```

pub mod cost;
pub mod counters;
pub mod dfs;
pub mod driver;
pub mod fault;
pub mod io_shim;
pub mod job;
pub mod plan;
pub mod record;
pub mod spill;
pub mod task;
pub mod wire;

pub use cost::ClusterSpec;
pub use counters::{Counters, JobMetrics, TaskTimes};
pub use dfs::Dfs;
pub use driver::{Driver, MemoryGovernor};
pub use fault::{AttemptOutcome, ChaosPlan, FaultPlan, Phase, TaskWastage};
pub use io_shim::{FaultFile, FaultFs, IoFaultPlan};
pub use job::{HashPartitioner, JobBuilder, JobConfig, MapInput, Partitioner};
pub use plan::{plan, IdentityMap, MapChain, Plan, PlanBuilder, ReduceStage, Snapshot, Stage};
pub use record::{checksum64, ShuffleSize};
pub use spill::{scan_frames, SegmentWriter, SpillDir, SpillSegment, SpilledRows};
pub use task::{Combiner, Emitter, FnMapper, FnReducer, Mapper, Reducer};
pub use wire::{decode, decode_framed, encode, encode_framed, Wire, WireError};
