//! An in-memory stand-in for HDFS.
//!
//! MapReduce pipelines chain jobs through the distributed file system; our
//! driver does the same through [`Dfs`], a typed in-memory namespace. Reads
//! hand out `Arc`s (no copy — HDFS reads are streamed, not duplicated), and
//! writes account bytes so pipelines can report materialization I/O (the
//! reason Basic-DDP *recomputes* distances in Step 2 instead of storing the
//! O(N²) distance matrix, §III-A).
//!
//! Besides the in-memory namespace, `Dfs` owns a **disk spill tier**: a
//! lazily created temp directory of [`crate::spill`] segment files where
//! the memory governor parks shuffle partitions and cached buckets that
//! exceed the budget. Spilled bytes are metered separately
//! ([`Dfs::spill_bytes_written`]/[`Dfs::spill_bytes_read`]) from in-memory
//! materialization, mirroring Hadoop's distinction between HDFS I/O and
//! local spill I/O.

use crate::io_shim::FaultFs;
use crate::record::ShuffleSize;
use crate::spill::{SegmentWriter, SpillDir};
use parking_lot::{Mutex, RwLock};
use std::any::Any;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Errors from DFS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    /// The path does not exist.
    NotFound(String),
    /// The path exists but holds a different record type.
    WrongType(String),
    /// The path already exists (HDFS files are write-once).
    AlreadyExists(String),
}

impl std::fmt::Display for DfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DfsError::NotFound(p) => write!(f, "dfs path not found: {p}"),
            DfsError::WrongType(p) => write!(f, "dfs path has a different record type: {p}"),
            DfsError::AlreadyExists(p) => write!(f, "dfs path already exists: {p}"),
        }
    }
}

impl std::error::Error for DfsError {}

struct File {
    records: Arc<dyn Any + Send + Sync>,
    bytes: u64,
}

/// The in-memory distributed file system.
///
/// ```
/// use mapreduce::Dfs;
/// let dfs = Dfs::new();
/// dfs.put("job1/out", vec![1u32, 2, 3]).unwrap();
/// assert_eq!(&*dfs.get::<u32>("job1/out").unwrap(), &vec![1, 2, 3]);
/// assert!(dfs.put("job1/out", vec![9u32]).is_err()); // write-once
/// ```
#[derive(Default)]
pub struct Dfs {
    files: RwLock<BTreeMap<String, File>>,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    /// Spill-tier directory, created on first spill.
    spill_dir: Mutex<Option<Arc<SpillDir>>>,
    spill_seq: AtomicU64,
    /// Spill accounting is split from the in-memory counters above and
    /// shared (`Arc`) with the segment handles that do the actual I/O.
    spill_bytes_written: Arc<AtomicU64>,
    spill_bytes_read: Arc<AtomicU64>,
    /// The fault domain spill-tier I/O flows through (defaults to the
    /// process-global [`FaultFs`]; drills swap in a seeded one).
    io: Mutex<FaultFs>,
}

impl Dfs {
    /// A fresh, empty namespace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes `records` to `path` (write-once; fails if the path exists).
    pub fn put<T>(&self, path: &str, records: Vec<T>) -> Result<(), DfsError>
    where
        T: ShuffleSize + Send + Sync + 'static,
    {
        let bytes: u64 = records.iter().map(ShuffleSize::shuffle_bytes).sum();
        let mut files = self.files.write();
        if files.contains_key(path) {
            return Err(DfsError::AlreadyExists(path.to_string()));
        }
        files.insert(
            path.to_string(),
            File {
                records: Arc::new(records),
                bytes,
            },
        );
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        Ok(())
    }

    /// Reads the records at `path`, sharing (not copying) the storage.
    pub fn get<T>(&self, path: &str) -> Result<Arc<Vec<T>>, DfsError>
    where
        T: Send + Sync + 'static,
    {
        let files = self.files.read();
        let file = files
            .get(path)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
        let records = file
            .records
            .clone()
            .downcast::<Vec<T>>()
            .map_err(|_| DfsError::WrongType(path.to_string()))?;
        self.bytes_read.fetch_add(file.bytes, Ordering::Relaxed);
        Ok(records)
    }

    /// Deletes `path`; true if it existed.
    pub fn remove(&self, path: &str) -> bool {
        self.files.write().remove(path).is_some()
    }

    /// Whether `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    /// All paths with the given prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.files
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Stored size of `path` in (estimated serialized) bytes.
    pub fn size(&self, path: &str) -> Result<u64, DfsError> {
        self.files
            .read()
            .get(path)
            .map(|f| f.bytes)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))
    }

    /// Total bytes written since creation.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total bytes read since creation.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Opens a new segment in the spill tier, creating the spill
    /// directory on first use. The returned writer (and the segment it
    /// finishes into) carries this namespace's spill byte counters.
    pub fn spill_segment(&self, label: &str) -> std::io::Result<SegmentWriter> {
        let dir = {
            let mut guard = self.spill_dir.lock();
            match &*guard {
                Some(d) => Arc::clone(d),
                None => {
                    let d = Arc::new(SpillDir::create("dfs")?);
                    *guard = Some(Arc::clone(&d));
                    d
                }
            }
        };
        let seq = self.spill_seq.fetch_add(1, Ordering::Relaxed);
        let name = format!("{}-{seq}.seg", label.replace('/', "_"));
        Ok(
            SegmentWriter::create_with(dir.segment_path(&name), self.io_fs())?.with_counters(
                Arc::clone(&self.spill_bytes_written),
                Arc::clone(&self.spill_bytes_read),
            ),
        )
    }

    /// Routes all further spill-tier I/O through `fs` (storage-fault
    /// drills).
    pub fn set_io_fs(&self, fs: FaultFs) {
        *self.io.lock() = fs;
    }

    /// The fault domain the spill tier currently writes through.
    pub fn io_fs(&self) -> FaultFs {
        self.io.lock().clone()
    }

    /// Record bytes written to the disk spill tier (metered separately
    /// from in-memory materialization).
    pub fn spill_bytes_written(&self) -> u64 {
        self.spill_bytes_written.load(Ordering::Relaxed)
    }

    /// Record bytes read back from the disk spill tier.
    pub fn spill_bytes_read(&self) -> u64 {
        self.spill_bytes_read.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let dfs = Dfs::new();
        dfs.put("a/b", vec![1u32, 2, 3]).unwrap();
        let got = dfs.get::<u32>("a/b").unwrap();
        assert_eq!(&*got, &vec![1, 2, 3]);
    }

    #[test]
    fn write_once_semantics() {
        let dfs = Dfs::new();
        dfs.put("x", vec![0u8]).unwrap();
        assert_eq!(
            dfs.put("x", vec![1u8]),
            Err(DfsError::AlreadyExists("x".into()))
        );
        assert!(dfs.remove("x"));
        dfs.put("x", vec![1u8]).unwrap();
        assert_eq!(&*dfs.get::<u8>("x").unwrap(), &vec![1]);
    }

    #[test]
    fn missing_and_wrong_type_errors() {
        let dfs = Dfs::new();
        assert_eq!(
            dfs.get::<u32>("nope").unwrap_err(),
            DfsError::NotFound("nope".into())
        );
        dfs.put("t", vec![1u32]).unwrap();
        assert_eq!(
            dfs.get::<u64>("t").unwrap_err(),
            DfsError::WrongType("t".into())
        );
    }

    #[test]
    fn byte_accounting() {
        let dfs = Dfs::new();
        dfs.put("nums", vec![1.0f64; 10]).unwrap(); // 80 bytes
        assert_eq!(dfs.size("nums").unwrap(), 80);
        assert_eq!(dfs.bytes_written(), 80);
        assert_eq!(dfs.bytes_read(), 0);
        let _ = dfs.get::<f64>("nums").unwrap();
        assert_eq!(dfs.bytes_read(), 80);
    }

    #[test]
    fn list_by_prefix_sorted() {
        let dfs = Dfs::new();
        dfs.put("job1/out", vec![0u8]).unwrap();
        dfs.put("job2/out", vec![0u8]).unwrap();
        dfs.put("job1/log", vec![0u8]).unwrap();
        assert_eq!(
            dfs.list("job1/"),
            vec!["job1/log".to_string(), "job1/out".to_string()]
        );
        assert_eq!(dfs.list("").len(), 3);
    }

    #[test]
    fn remove_missing_is_false() {
        let dfs = Dfs::new();
        assert!(!dfs.remove("ghost"));
    }

    #[test]
    fn spill_accounting_is_split_from_memory_accounting() {
        let dfs = Dfs::new();
        dfs.put("mem", vec![1.0f64; 4]).unwrap(); // 32 in-memory bytes
        let mut w = dfs.spill_segment("shuffle/job-a").unwrap();
        let batch = vec![(1u32, 2.0f64), (3, 4.0)]; // 24 record bytes
        let meta = w.write_frame(&batch).unwrap();
        let seg = w.finish().unwrap();
        assert_eq!(dfs.bytes_written(), 32);
        assert_eq!(dfs.spill_bytes_written(), 24);
        assert_eq!(dfs.spill_bytes_read(), 0);
        let back: Vec<(u32, f64)> = seg.read_frame(&meta).unwrap();
        assert_eq!(back, batch);
        assert_eq!(dfs.spill_bytes_read(), 24);
        // Distinct segments get distinct paths.
        let w2 = dfs.spill_segment("shuffle/job-a").unwrap();
        drop(w2);
    }
}
