//! User-defined task traits: [`Mapper`], [`Reducer`], [`Combiner`], and the
//! [`Emitter`] they write intermediate records through.

use crate::record::ShuffleSize;
use crate::wire::Wire;
use std::hash::Hash;

/// Marker bounds for intermediate keys: hashable (partitioning), ordered
/// (deterministic grouping), cloneable (combiner re-emission), sized
/// (shuffle accounting), wire-encodable (the disk spill tier serializes
/// intermediates with the [`Wire`] codec) and sendable across task
/// threads.
pub trait MrKey: Hash + Eq + Ord + Clone + Send + Sync + ShuffleSize + Wire {}
impl<T: Hash + Eq + Ord + Clone + Send + Sync + ShuffleSize + Wire> MrKey for T {}

/// Marker bounds for intermediate values. Like keys, values must be
/// wire-encodable so shuffle partitions can spill to disk under memory
/// pressure.
pub trait MrValue: Send + Sync + ShuffleSize + Wire {}
impl<T: Send + Sync + ShuffleSize + Wire> MrValue for T {}

/// Collects records emitted by a map, combine or reduce invocation.
#[derive(Debug)]
pub struct Emitter<K, V> {
    records: Vec<(K, V)>,
}

impl<K, V> Emitter<K, V> {
    /// A fresh, empty emitter.
    pub fn new() -> Self {
        Emitter {
            records: Vec::new(),
        }
    }

    /// Emits one intermediate record.
    #[inline]
    pub fn emit(&mut self, key: K, value: V) {
        self.records.push((key, value));
    }

    /// Number of records emitted so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Consumes the emitter, yielding the emitted records in order.
    pub fn into_records(self) -> Vec<(K, V)> {
        self.records
    }
}

impl<K, V> Default for Emitter<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// A user-defined map function.
///
/// One instance is shared (by reference) across all map task threads, so
/// implementations must be `Sync`; broadcast state (the paper's "distributed
/// cache", e.g. the global `rho` table in the delta jobs) lives in fields,
/// typically behind `Arc`.
pub trait Mapper: Sync {
    /// Input key type.
    type InKey: Send;
    /// Input value type.
    type InValue: Send;
    /// Intermediate key type.
    type OutKey: MrKey;
    /// Intermediate value type.
    type OutValue: MrValue;

    /// Processes one input record, emitting zero or more intermediate
    /// records.
    fn map(
        &self,
        key: Self::InKey,
        value: Self::InValue,
        out: &mut Emitter<Self::OutKey, Self::OutValue>,
    );
}

/// A user-defined reduce function.
///
/// Invoked once per distinct intermediate key with all of that key's values
/// (grouped and key-ordered by the shuffle).
pub trait Reducer: Sync {
    /// Intermediate key type (matches the mapper's `OutKey`).
    type InKey: MrKey;
    /// Intermediate value type (matches the mapper's `OutValue`).
    type InValue: MrValue;
    /// Output key type.
    type OutKey: Send;
    /// Output value type.
    type OutValue: Send;

    /// Reduces all values of one key.
    fn reduce(
        &self,
        key: &Self::InKey,
        values: Vec<Self::InValue>,
        out: &mut Emitter<Self::OutKey, Self::OutValue>,
    );
}

/// An optional map-side pre-aggregation, applied per map task before the
/// shuffle — Hadoop's combiner. It must be algebraically compatible with
/// the reducer (e.g. partial sums for a summing reducer).
pub trait Combiner: Sync {
    /// Intermediate key type.
    type Key: MrKey;
    /// Intermediate value type.
    type Value: MrValue;

    /// Combines one key's values produced by a single map task into fewer
    /// values.
    fn combine(&self, key: &Self::Key, values: Vec<Self::Value>) -> Vec<Self::Value>;
}

/// Adapts a closure into a [`Mapper`] for quick jobs and tests.
pub struct FnMapper<InK, InV, OutK, OutV, F>
where
    F: Fn(InK, InV, &mut Emitter<OutK, OutV>) + Sync,
{
    f: F,
    #[allow(clippy::type_complexity)]
    _marker: std::marker::PhantomData<fn(InK, InV) -> (OutK, OutV)>,
}

impl<InK, InV, OutK, OutV, F> FnMapper<InK, InV, OutK, OutV, F>
where
    F: Fn(InK, InV, &mut Emitter<OutK, OutV>) + Sync,
{
    /// Wraps `f` as a mapper.
    pub fn new(f: F) -> Self {
        FnMapper {
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<InK, InV, OutK, OutV, F> Mapper for FnMapper<InK, InV, OutK, OutV, F>
where
    InK: Send,
    InV: Send,
    OutK: MrKey,
    OutV: MrValue,
    F: Fn(InK, InV, &mut Emitter<OutK, OutV>) + Sync,
{
    type InKey = InK;
    type InValue = InV;
    type OutKey = OutK;
    type OutValue = OutV;

    fn map(&self, key: InK, value: InV, out: &mut Emitter<OutK, OutV>) {
        (self.f)(key, value, out)
    }
}

/// Adapts a closure into a [`Reducer`] for quick jobs and tests.
pub struct FnReducer<InK, InV, OutK, OutV, F>
where
    F: Fn(&InK, Vec<InV>, &mut Emitter<OutK, OutV>) + Sync,
{
    f: F,
    #[allow(clippy::type_complexity)]
    _marker: std::marker::PhantomData<fn(InK, InV) -> (OutK, OutV)>,
}

impl<InK, InV, OutK, OutV, F> FnReducer<InK, InV, OutK, OutV, F>
where
    F: Fn(&InK, Vec<InV>, &mut Emitter<OutK, OutV>) + Sync,
{
    /// Wraps `f` as a reducer.
    pub fn new(f: F) -> Self {
        FnReducer {
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<InK, InV, OutK, OutV, F> Reducer for FnReducer<InK, InV, OutK, OutV, F>
where
    InK: MrKey,
    InV: MrValue,
    OutK: Send,
    OutV: Send,
    F: Fn(&InK, Vec<InV>, &mut Emitter<OutK, OutV>) + Sync,
{
    type InKey = InK;
    type InValue = InV;
    type OutKey = OutK;
    type OutValue = OutV;

    fn reduce(&self, key: &InK, values: Vec<InV>, out: &mut Emitter<OutK, OutV>) {
        (self.f)(key, values, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitter_collects_in_order() {
        let mut e: Emitter<u32, u32> = Emitter::new();
        assert!(e.is_empty());
        e.emit(1, 10);
        e.emit(0, 20);
        assert_eq!(e.len(), 2);
        assert_eq!(e.into_records(), vec![(1, 10), (0, 20)]);
    }

    #[test]
    fn fn_mapper_and_reducer_adapters() {
        let m = FnMapper::new(|k: u32, v: u32, out: &mut Emitter<u32, u32>| {
            out.emit(k % 2, v * 2);
        });
        let mut e = Emitter::new();
        m.map(3, 5, &mut e);
        assert_eq!(e.into_records(), vec![(1, 10)]);

        let r = FnReducer::new(|k: &u32, vs: Vec<u32>, out: &mut Emitter<u32, u32>| {
            out.emit(*k, vs.into_iter().sum());
        });
        let mut e = Emitter::new();
        r.reduce(&1, vec![1, 2, 3], &mut e);
        assert_eq!(e.into_records(), vec![(1, 6)]);
    }
}
