//! Disk spill tier: length-prefixed segment files of checksummed frames.
//!
//! When a [`crate::driver::MemoryGovernor`] decides an intermediate no
//! longer fits the memory budget, the engine writes it to a *segment
//! file* and keeps only a small handle resident. A segment is a sequence
//! of frames, each
//!
//! ```text
//! [u64 LE frame length][ encode_framed(Vec<(K, V)>) ]
//! ```
//!
//! i.e. the same [`crate::wire`] codec the shuffle-integrity layer uses:
//! a `Vec` payload (4-byte count prefix + fixed-width records) followed
//! by an 8-byte FNV-1a trailer. Reusing the wire codec gives the spill
//! tier two properties for free: the on-disk byte count of a frame's
//! records **equals** their `ShuffleSize` accounting (so spilled and
//! resident partitions meter identically), and any torn or corrupted
//! frame is detected by checksum before its records reach a reducer.
//!
//! Frames are read back with positioned reads (`pread`), so one open
//! segment serves concurrent reduce tasks without seek coordination.
//! [`scan_frames`] additionally supports sequential recovery reads that
//! tolerate a torn tail — a process killed mid-spill leaves a segment
//! whose intact prefix is still usable.

use crate::io_shim::{FaultFile, FaultFs};
use crate::wire::{decode_framed, encode_framed, Wire, WireError};
use std::fs::File;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-frame framing overhead: 4-byte `Vec` count prefix + 8-byte
/// checksum trailer (the leading `u64` length word is accounted
/// separately by [`FrameMeta::frame_len`]).
const FRAME_OVERHEAD: u64 = 12;

/// Errors from spill-segment I/O.
#[derive(Debug)]
pub enum SpillError {
    /// Underlying file system error.
    Io(std::io::Error),
    /// The frame decoded to garbage (truncation or corruption).
    Wire(WireError),
}

impl std::fmt::Display for SpillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpillError::Io(e) => write!(f, "spill i/o error: {e}"),
            SpillError::Wire(e) => write!(f, "spill frame error: {e}"),
        }
    }
}

impl std::error::Error for SpillError {}

impl From<std::io::Error> for SpillError {
    fn from(e: std::io::Error) -> Self {
        SpillError::Io(e)
    }
}

impl From<WireError> for SpillError {
    fn from(e: WireError) -> Self {
        SpillError::Wire(e)
    }
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A process-private temporary directory holding spill segments; removed
/// recursively on drop (segments already deleted individually are fine).
pub struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    /// Creates a fresh directory under the system temp dir, namespaced by
    /// pid so concurrent test processes never collide.
    pub fn create(label: &str) -> std::io::Result<Self> {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("mr-spill-{}-{label}-{seq}", std::process::id()));
        std::fs::create_dir_all(&path)?;
        Ok(SpillDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Path for a segment named `name` inside this directory.
    pub fn segment_path(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Location and accounting for one frame inside a segment.
#[derive(Debug, Clone)]
pub struct FrameMeta {
    /// Byte offset of the frame's length word in the segment file.
    pub offset: u64,
    /// Length of the framed payload (excluding the 8-byte length word).
    pub frame_len: u32,
    /// Records in the frame.
    pub records: u32,
    /// Sum of the records' `ShuffleSize` bytes — by the wire length
    /// contract, exactly `frame_len - 12`.
    pub record_bytes: u64,
}

/// Appends frames to a new segment file.
pub struct SegmentWriter {
    file: FaultFile,
    path: PathBuf,
    offset: u64,
    written_counter: Option<Arc<AtomicU64>>,
    read_counter: Option<Arc<AtomicU64>>,
}

impl SegmentWriter {
    /// Creates a new segment at `path` (fails if it exists), with I/O
    /// routed through the process-global [`FaultFs`].
    pub fn create(path: PathBuf) -> std::io::Result<Self> {
        Self::create_with(path, FaultFs::default())
    }

    /// Creates a new segment whose I/O flows through `fs` — the
    /// injection point for storage-fault drills.
    pub fn create_with(path: PathBuf, fs: FaultFs) -> std::io::Result<Self> {
        let file = fs.create_new(&path)?;
        Ok(SegmentWriter {
            file,
            path,
            offset: 0,
            written_counter: None,
            read_counter: None,
        })
    }

    /// Attaches byte counters bumped on every frame write / later read
    /// (the `Dfs` spill accounting split).
    pub fn with_counters(mut self, written: Arc<AtomicU64>, read: Arc<AtomicU64>) -> Self {
        self.written_counter = Some(written);
        self.read_counter = Some(read);
        self
    }

    /// Writes one frame holding `batch`; returns its location.
    pub fn write_frame<T: Wire>(&mut self, batch: &Vec<T>) -> std::io::Result<FrameMeta> {
        let frame = encode_framed(batch);
        self.file.write_all(&(frame.len() as u64).to_le_bytes())?;
        self.file.write_all(&frame)?;
        let meta = FrameMeta {
            offset: self.offset,
            frame_len: frame.len() as u32,
            records: batch.len() as u32,
            record_bytes: frame.len() as u64 - FRAME_OVERHEAD,
        };
        self.offset += 8 + frame.len() as u64;
        if let Some(c) = &self.written_counter {
            c.fetch_add(meta.record_bytes, Ordering::Relaxed);
        }
        Ok(meta)
    }

    /// Total bytes written so far (including framing).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Finishes the segment, returning a read handle. The file is deleted
    /// when the handle drops.
    ///
    /// The final `sync_data` failure is *propagated*, not swallowed: a
    /// segment whose flush failed must not be treated as durable — the
    /// governor paths react by keeping the data resident instead.
    pub fn finish(mut self) -> std::io::Result<SpillSegment> {
        self.file.sync_data()?;
        Ok(SpillSegment {
            file: self.file,
            path: self.path,
            bytes: self.offset,
            read_counter: self.read_counter,
        })
    }
}

/// A finished, readable spill segment. Dropping the handle deletes the
/// file — segments are transient job state, not durable storage.
pub struct SpillSegment {
    file: FaultFile,
    path: PathBuf,
    bytes: u64,
    read_counter: Option<Arc<AtomicU64>>,
}

impl SpillSegment {
    /// Total file size in bytes (frames plus framing words).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Reads one frame back via a positioned read, verifying length word
    /// and checksum.
    pub fn read_frame<T: Wire>(&self, meta: &FrameMeta) -> Result<Vec<T>, SpillError> {
        let mut buf = vec![0u8; 8 + meta.frame_len as usize];
        self.file.read_exact_at(&mut buf, meta.offset)?;
        let len = u64::from_le_bytes(buf[..8].try_into().expect("length word"));
        if len != meta.frame_len as u64 {
            return Err(SpillError::Wire(WireError::Corrupt("frame length word")));
        }
        let rows = decode_framed::<Vec<T>>(&buf[8..])?;
        if let Some(c) = &self.read_counter {
            c.fetch_add(meta.record_bytes, Ordering::Relaxed);
        }
        Ok(rows)
    }
}

impl Drop for SpillSegment {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Outcome of a sequential recovery scan over a segment file.
#[derive(Debug)]
pub struct ScanOutcome<T> {
    /// Frames decoded intact, in write order.
    pub frames: Vec<Vec<T>>,
    /// Whether the file ended in a torn (incomplete or checksum-failing)
    /// tail frame — expected after a crash mid-spill. The intact prefix
    /// in `frames` is still valid.
    pub torn_tail: bool,
}

/// Sequentially scans a segment file, decoding every intact frame.
///
/// A clean segment yields all frames with `torn_tail == false`. A file
/// truncated or corrupted at the tail (killed writer) yields the intact
/// prefix with `torn_tail == true`. Corruption *before* the final frame
/// also stops the scan at the last intact frame: everything after an
/// undecodable frame is unaddressable since frame boundaries chain.
pub fn scan_frames<T: Wire>(path: &Path) -> std::io::Result<ScanOutcome<T>> {
    let mut file = File::open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let mut frames = Vec::new();
    let mut rest: &[u8] = &bytes;
    loop {
        if rest.is_empty() {
            return Ok(ScanOutcome {
                frames,
                torn_tail: false,
            });
        }
        if rest.len() < 8 {
            return Ok(ScanOutcome {
                frames,
                torn_tail: true,
            });
        }
        let (word, tail) = rest.split_at(8);
        let len = u64::from_le_bytes(word.try_into().expect("length word")) as usize;
        if tail.len() < len {
            return Ok(ScanOutcome {
                frames,
                torn_tail: true,
            });
        }
        let (frame, tail) = tail.split_at(len);
        match decode_framed::<Vec<T>>(frame) {
            Ok(rows) => frames.push(rows),
            Err(_) => {
                return Ok(ScanOutcome {
                    frames,
                    torn_tail: true,
                })
            }
        }
        rest = tail;
    }
}

/// Rows that live on disk, readable by range, with the element types
/// erased behind a closure so engine code needs no `Wire` bounds.
///
/// This backs spilled [`crate::plan::Snapshot`]s: a dataset several times
/// larger than the memory budget is written once as a segment and map
/// tasks decode only their chunk's frames.
pub struct SpilledRows<K, V> {
    len: usize,
    bytes: u64,
    #[allow(clippy::type_complexity)]
    reader: Box<dyn Fn(usize, usize) -> Vec<(K, V)> + Send + Sync>,
}

impl<K, V> SpilledRows<K, V> {
    /// Number of rows in the segment.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the segment holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total `ShuffleSize` bytes of the stored rows.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Decodes rows `[start, end)` from disk. Panics on out-of-bounds
    /// ranges or unreadable segments (both are engine bugs, not
    /// recoverable conditions — the segment is process-local state).
    pub fn read_range(&self, start: usize, end: usize) -> Vec<(K, V)> {
        assert!(start <= end && end <= self.len, "spill range out of bounds");
        (self.reader)(start, end)
    }

    /// Decodes the whole segment.
    pub fn read_all(&self) -> Vec<(K, V)> {
        self.read_range(0, self.len)
    }
}

impl<K, V> SpilledRows<K, V>
where
    K: Wire + Send + Sync + 'static,
    V: Wire + Send + Sync + 'static,
{
    /// Spills `batches` to a fresh private segment, consuming each batch
    /// as it arrives — the full row set is never resident. Empty batches
    /// are skipped.
    pub fn from_batches<I>(label: &str, batches: I) -> std::io::Result<Self>
    where
        I: IntoIterator<Item = Vec<(K, V)>>,
    {
        let dir = SpillDir::create(label)?;
        let mut writer = SegmentWriter::create(dir.segment_path("rows.seg"))?;
        // (first record index, frame) pairs for binary-searched range reads.
        let mut index: Vec<(usize, FrameMeta)> = Vec::new();
        let mut len = 0usize;
        let mut bytes = 0u64;
        for batch in batches {
            if batch.is_empty() {
                continue;
            }
            let meta = writer.write_frame(&batch)?;
            bytes += meta.record_bytes;
            index.push((len, meta));
            len += batch.len();
        }
        let seg = writer.finish()?;
        let dir = Arc::new(dir);
        let index = Arc::new(index);
        let seg = Arc::new(seg);
        let reader = Box::new(move |start: usize, end: usize| {
            let _keep_dir_alive = &dir;
            let mut out: Vec<(K, V)> = Vec::with_capacity(end - start);
            if start == end {
                return out;
            }
            // First frame whose range contains `start`.
            let mut i = match index.binary_search_by(|(first, _)| first.cmp(&start)) {
                Ok(i) => i,
                Err(i) => i - 1,
            };
            let mut frame_first = index[i].0;
            while frame_first < end && i < index.len() {
                let rows: Vec<(K, V)> = seg
                    .read_frame(&index[i].1)
                    .expect("spill segment read (process-local file)");
                let n = rows.len();
                let lo = start.saturating_sub(frame_first);
                let hi = n.min(end - frame_first);
                out.extend(rows.into_iter().skip(lo).take(hi - lo));
                frame_first += n;
                i += 1;
            }
            out
        });
        Ok(SpilledRows { len, bytes, reader })
    }
}

impl<K, V> std::fmt::Debug for SpilledRows<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpilledRows")
            .field("len", &self.len)
            .field("bytes", &self.bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ShuffleSize;

    fn rows(n: usize) -> Vec<(u32, Vec<f64>)> {
        (0..n).map(|i| (i as u32, vec![i as f64, -1.5])).collect()
    }

    #[test]
    fn segment_round_trip_with_accounting() {
        let dir = SpillDir::create("test").unwrap();
        let written = Arc::new(AtomicU64::new(0));
        let read = Arc::new(AtomicU64::new(0));
        let mut w = SegmentWriter::create(dir.segment_path("seg"))
            .unwrap()
            .with_counters(written.clone(), read.clone());
        let batch = rows(10);
        let expect_bytes: u64 = batch.iter().map(ShuffleSize::shuffle_bytes).sum();
        let meta = w.write_frame(&batch).unwrap();
        assert_eq!(meta.record_bytes, expect_bytes);
        assert_eq!(written.load(Ordering::Relaxed), expect_bytes);
        let seg = w.finish().unwrap();
        let back: Vec<(u32, Vec<f64>)> = seg.read_frame(&meta).unwrap();
        assert_eq!(back, batch);
        assert_eq!(read.load(Ordering::Relaxed), expect_bytes);
    }

    #[test]
    fn segment_file_deleted_on_drop() {
        let dir = SpillDir::create("test").unwrap();
        let path = dir.segment_path("seg");
        let mut w = SegmentWriter::create(path.clone()).unwrap();
        w.write_frame(&rows(3)).unwrap();
        let seg = w.finish().unwrap();
        assert!(path.exists());
        drop(seg);
        assert!(!path.exists());
    }

    #[test]
    fn scan_tolerates_torn_tail() {
        let dir = SpillDir::create("test").unwrap();
        let path = dir.segment_path("seg");
        let mut w = SegmentWriter::create(path.clone()).unwrap();
        for chunk in rows(30).chunks(10) {
            w.write_frame(&chunk.to_vec()).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        drop(w); // keep the file: drop the writer without finish()

        let clean = scan_frames::<(u32, Vec<f64>)>(&path).unwrap();
        assert!(!clean.torn_tail);
        assert_eq!(clean.frames.concat(), rows(30));

        // Truncate mid-final-frame: intact prefix + torn tail.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let torn = scan_frames::<(u32, Vec<f64>)>(&path).unwrap();
        assert!(torn.torn_tail);
        assert_eq!(torn.frames.concat(), rows(20));
    }

    #[test]
    fn spilled_rows_range_reads() {
        let data = rows(100);
        let spilled =
            SpilledRows::from_batches("test", data.chunks(7).map(|c| c.to_vec())).unwrap();
        assert_eq!(spilled.len(), 100);
        let expect_bytes: u64 = data.iter().map(ShuffleSize::shuffle_bytes).sum();
        assert_eq!(spilled.bytes(), expect_bytes);
        assert_eq!(spilled.read_all(), data);
        assert_eq!(spilled.read_range(0, 0), vec![]);
        assert_eq!(spilled.read_range(3, 11), data[3..11].to_vec());
        assert_eq!(spilled.read_range(96, 100), data[96..100].to_vec());
        // Chunk boundaries identical to resident slicing.
        for (s, e) in [(0, 25), (25, 50), (50, 75), (75, 100)] {
            assert_eq!(spilled.read_range(s, e), data[s..e].to_vec());
        }
    }
}
