//! Job counters and metrics, mirroring Hadoop's job counter report.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shard fan-out for the counter name map.
const COUNTER_SHARDS: usize = 16;

/// One shard of the name→cell map.
type CounterShard = RwLock<HashMap<String, Arc<AtomicU64>>>;

/// Named user counters, shareable across task threads.
///
/// Tasks that want to report algorithm-level statistics (e.g. candidate
/// pairs filtered by the EDDPC triangle-inequality test) capture a clone of
/// the job's `Counters` in their struct and call [`Counters::inc`].
///
/// The name→cell map is sharded by name hash, and resolving an existing
/// counter takes only a shard's *read* lock — many task threads looking up
/// (or `inc`ing) counters concurrently never serialize on one global lock;
/// the write lock is taken once per name, on creation.
#[derive(Debug, Clone)]
pub struct Counters {
    shards: Arc<[CounterShard; COUNTER_SHARDS]>,
}

impl Default for Counters {
    fn default() -> Self {
        Counters {
            shards: Arc::new(std::array::from_fn(|_| RwLock::new(HashMap::new()))),
        }
    }
}

impl Counters {
    /// A fresh, empty counter group.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, name: &str) -> &CounterShard {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        &self.shards[(h.finish() as usize) % COUNTER_SHARDS]
    }

    /// Increments `name` by `n`, creating the counter on first use.
    pub fn inc(&self, name: &str, n: u64) {
        self.handle(name).fetch_add(n, Ordering::Relaxed);
    }

    /// Returns a cheap handle to a single counter, avoiding the name lookup
    /// in hot loops. An existing counter resolves under a shared read lock.
    pub fn handle(&self, name: &str) -> Arc<AtomicU64> {
        let shard = self.shard(name);
        if let Some(c) = shard.read().get(name) {
            return c.clone();
        }
        shard
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone()
    }

    /// Current value of `name` (0 if never incremented).
    pub fn get(&self, name: &str) -> u64 {
        self.shard(name)
            .read()
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Snapshot of all counters, name-ordered.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for shard in self.shards.iter() {
            for (k, v) in shard.read().iter() {
                out.insert(k.clone(), v.load(Ordering::Relaxed));
            }
        }
        out
    }
}

/// Duration summary of one phase's task attempts (nanoseconds), derived
/// from the span layer's per-task measurements. All-zero when a job
/// predates task timing — the field deserializes via `#[serde(default)]`
/// from older metric dumps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskTimes {
    /// Task attempts measured.
    pub tasks: u64,
    /// Median task duration (ns, bucket upper bound).
    pub p50_ns: u64,
    /// 95th-percentile task duration (ns).
    pub p95_ns: u64,
    /// 99th-percentile task duration (ns).
    pub p99_ns: u64,
    /// Longest task attempt (ns, exact) — the straggler that bounds the
    /// phase's critical path.
    pub max_ns: u64,
}

impl TaskTimes {
    /// Merges two summaries the way [`JobMetrics::aggregate`] needs:
    /// attempt counts add, quantiles take the element-wise max (the
    /// aggregate answers "how bad did any constituent job's tasks get",
    /// not a recomputed cross-job distribution).
    pub fn merge(self, other: TaskTimes) -> TaskTimes {
        TaskTimes {
            tasks: self.tasks + other.tasks,
            p50_ns: self.p50_ns.max(other.p50_ns),
            p95_ns: self.p95_ns.max(other.p95_ns),
            p99_ns: self.p99_ns.max(other.p99_ns),
            max_ns: self.max_ns.max(other.max_ns),
        }
    }
}

/// Measured statistics of one completed MapReduce job.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct JobMetrics {
    /// Job name (for reports).
    pub name: String,
    /// Records fed to the map phase.
    pub map_input_records: u64,
    /// Records emitted by mappers (before any combiner).
    pub map_output_records: u64,
    /// Records after map-side combining (equals `map_output_records` when
    /// no combiner is configured).
    pub combine_output_records: u64,
    /// Records crossing the shuffle boundary.
    pub shuffle_records: u64,
    /// Estimated serialized bytes crossing the shuffle boundary — the
    /// paper's "shuffled data" (Figure 10(b)).
    pub shuffle_bytes: u64,
    /// Bytes that *would* have crossed the shuffle boundary but didn't,
    /// because the scheduler elided this stage's map+shuffle and reused a
    /// co-partitioned intermediate retained from an earlier stage. Kept
    /// separate from `shuffle_bytes` so Figure 10(b) accounting stays
    /// exact: the logical shuffle volume of a plan is
    /// `shuffle_bytes + shuffle_bytes_saved`. Defaults to 0 in metric
    /// dumps that predate plan execution.
    #[serde(default)]
    pub shuffle_bytes_saved: u64,
    /// Distinct keys seen by the reduce phase.
    pub reduce_input_groups: u64,
    /// Records emitted by reducers.
    pub reduce_output_records: u64,
    /// Size of the largest single reduce group (values under one key) —
    /// the skew signal behind the paper's Figure 12(a) observation that
    /// small `M` with large `pi` degrades runtime.
    pub max_reduce_group: u64,
    /// Records handled by the most loaded reduce task.
    pub max_reduce_task_records: u64,
    /// Task attempts wasted to injected failures and retried
    /// (see [`crate::fault::FaultPlan`]); 0 without fault injection.
    pub task_retries: u64,
    /// Task attempts whose output failed checksum verification and were
    /// retried (see [`crate::fault::ChaosPlan`]); 0 without chaos
    /// injection. Counted separately from `task_retries` so corruption
    /// and crash rates stay independently observable.
    #[serde(default)]
    pub corruption_retries: u64,
    /// Speculative task clones launched against stragglers.
    #[serde(default)]
    pub speculative_launched: u64,
    /// Speculative clones that finished before their straggling original
    /// — the wins that shortened the phase's critical path.
    #[serde(default)]
    pub speculative_wins: u64,
    /// Wasted work re-executed by speculative clones, in nanoseconds
    /// (every clone re-pays its task body, win or lose).
    #[serde(default)]
    pub speculative_work_ns: u64,
    /// Injected straggler delay actually slept, in nanoseconds (delay
    /// avoided by winning speculative clones is not included).
    #[serde(default)]
    pub straggler_delay_ns: u64,
    /// Bytes written to the DFS as stage checkpoints on behalf of this
    /// job's plan stage; 0 when checkpointing is off.
    #[serde(default)]
    pub checkpoint_bytes: u64,
    /// Peak resident heap bytes observed while the job (stage) ran, as
    /// measured by the instrumenting global allocator
    /// (`obsv::alloc`). 0 when heap accounting is disabled or for
    /// metric dumps that predate the telemetry plane.
    #[serde(default)]
    pub peak_resident_bytes: u64,
    /// Shuffle bytes this job moved to the disk spill tier under memory
    /// pressure (map-side bucket spills plus spilled retention copies);
    /// 0 without a memory budget.
    #[serde(default)]
    pub spill_bytes: u64,
    /// Nanoseconds this job's reduce tasks spent stalled at the memory
    /// governor's admission gate; 0 without a memory budget.
    #[serde(default)]
    pub backpressure_stall_ns: u64,
    /// Wall-clock duration of the job on the host machine.
    #[serde(with = "duration_secs")]
    pub wall_time: Duration,
    /// Wall-clock duration of the map (+ combine + partition) phase.
    #[serde(with = "duration_secs")]
    pub map_time: Duration,
    /// Wall-clock duration of the sort/group + reduce phase.
    #[serde(with = "duration_secs")]
    pub reduce_time: Duration,
    /// Wall-clock duration of the shuffle merge (per-reducer bucket
    /// concatenation + byte accounting).
    #[serde(with = "duration_secs", default)]
    pub shuffle_time: Duration,
    /// Per-attempt duration summary of the map tasks.
    #[serde(default)]
    pub map_task_times: TaskTimes,
    /// Per-attempt duration summary of the reduce tasks.
    #[serde(default)]
    pub reduce_task_times: TaskTimes,
    /// User counter snapshot at job completion.
    pub user: BTreeMap<String, u64>,
}

mod duration_secs {
    use serde::{Deserialize, Deserializer, Serializer};
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(d.as_secs_f64())
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        let secs = f64::deserialize(d)?;
        Ok(Duration::from_secs_f64(secs))
    }
}

impl JobMetrics {
    /// Sums the cost-relevant counters of a sequence of jobs (e.g. all four
    /// LSH-DDP jobs) into one aggregate; `wall_time`s add, names join with
    /// `+`.
    pub fn aggregate<'a>(jobs: impl IntoIterator<Item = &'a JobMetrics>) -> JobMetrics {
        let mut out = JobMetrics::default();
        let mut names = Vec::new();
        for j in jobs {
            names.push(j.name.clone());
            out.map_input_records += j.map_input_records;
            out.map_output_records += j.map_output_records;
            out.combine_output_records += j.combine_output_records;
            out.shuffle_records += j.shuffle_records;
            out.shuffle_bytes += j.shuffle_bytes;
            out.shuffle_bytes_saved += j.shuffle_bytes_saved;
            out.reduce_input_groups += j.reduce_input_groups;
            out.reduce_output_records += j.reduce_output_records;
            out.max_reduce_group = out.max_reduce_group.max(j.max_reduce_group);
            out.max_reduce_task_records =
                out.max_reduce_task_records.max(j.max_reduce_task_records);
            out.task_retries += j.task_retries;
            out.corruption_retries += j.corruption_retries;
            out.speculative_launched += j.speculative_launched;
            out.speculative_wins += j.speculative_wins;
            out.speculative_work_ns += j.speculative_work_ns;
            out.straggler_delay_ns += j.straggler_delay_ns;
            out.checkpoint_bytes += j.checkpoint_bytes;
            // Stages run sequentially against the same heap, so the
            // pipeline's peak is the worst single stage, not a sum.
            out.peak_resident_bytes = out.peak_resident_bytes.max(j.peak_resident_bytes);
            out.spill_bytes += j.spill_bytes;
            out.backpressure_stall_ns += j.backpressure_stall_ns;
            out.wall_time += j.wall_time;
            out.map_time += j.map_time;
            out.reduce_time += j.reduce_time;
            out.shuffle_time += j.shuffle_time;
            out.map_task_times = out.map_task_times.merge(j.map_task_times);
            out.reduce_task_times = out.reduce_task_times.merge(j.reduce_task_times);
            for (k, v) in &j.user {
                *out.user.entry(k.clone()).or_insert(0) += v;
            }
        }
        out.name = names.join("+");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_increment_and_snapshot() {
        let c = Counters::new();
        c.inc("pairs", 3);
        c.inc("pairs", 2);
        c.inc("hits", 1);
        assert_eq!(c.get("pairs"), 5);
        assert_eq!(c.get("missing"), 0);
        let snap = c.snapshot();
        assert_eq!(snap["pairs"], 5);
        assert_eq!(snap["hits"], 1);
    }

    #[test]
    fn counter_handles_share_state() {
        let c = Counters::new();
        let h = c.handle("x");
        h.fetch_add(7, std::sync::atomic::Ordering::Relaxed);
        assert_eq!(c.get("x"), 7);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = Counters::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cc = c.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        cc.inc("n", 1);
                    }
                });
            }
        });
        assert_eq!(c.get("n"), 800);
    }

    #[test]
    fn hot_handle_lookups_do_not_serialize_across_threads() {
        // Regression test for the old single-Mutex map: 8 threads
        // resolving handles for disjoint *and* shared names concurrently
        // must all make progress under read locks and lose no updates.
        // Uses `handle`/`inc` directly (not a pre-resolved handle) so the
        // lookup path itself is what's being hammered.
        const THREADS: usize = 8;
        const ITERS: u64 = 20_000;
        let c = Counters::new();
        // Pre-create the shared name so every thread takes the read path.
        c.inc("shared", 0);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let cc = c.clone();
                s.spawn(move || {
                    let own = format!("thread-{t}");
                    for _ in 0..ITERS {
                        cc.inc("shared", 1);
                        cc.handle(&own).fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(c.get("shared"), THREADS as u64 * ITERS);
        for t in 0..THREADS {
            assert_eq!(c.get(&format!("thread-{t}")), ITERS);
        }
        assert_eq!(c.snapshot().len(), THREADS + 1);
    }

    #[test]
    fn task_times_merge_adds_counts_and_maxes_quantiles() {
        let a = TaskTimes {
            tasks: 4,
            p50_ns: 100,
            p95_ns: 200,
            p99_ns: 300,
            max_ns: 400,
        };
        let b = TaskTimes {
            tasks: 2,
            p50_ns: 150,
            p95_ns: 180,
            p99_ns: 350,
            max_ns: 390,
        };
        let m = a.merge(b);
        assert_eq!(m.tasks, 6);
        assert_eq!(m.p50_ns, 150);
        assert_eq!(m.p95_ns, 200);
        assert_eq!(m.p99_ns, 350);
        assert_eq!(m.max_ns, 400);
    }

    #[test]
    fn job_metrics_load_from_pre_task_times_dumps() {
        // Backward compat: metric dumps written before the task-time and
        // shuffle-time fields existed must still deserialize, with the
        // missing fields defaulting. Serialize a current JobMetrics to the
        // Value tree, strip the new fields (emulating an old dump), and
        // load it back.
        #[derive(Debug)]
        struct E(String);
        impl std::fmt::Display for E {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", self.0)
            }
        }
        impl serde::de::Error for E {
            fn custom<T: std::fmt::Display>(msg: T) -> Self {
                E(msg.to_string())
            }
        }

        let current = JobMetrics {
            name: "legacy".into(),
            shuffle_bytes: 123,
            shuffle_bytes_saved: 55,
            wall_time: Duration::from_millis(7),
            shuffle_time: Duration::from_millis(2),
            map_task_times: TaskTimes {
                tasks: 3,
                max_ns: 99,
                ..Default::default()
            },
            ..Default::default()
        };
        let serde::Value::Map(fields) = serde::to_value(&current) else {
            panic!("JobMetrics must serialize to a map");
        };
        let old_dump: Vec<(String, serde::Value)> = fields
            .into_iter()
            .filter(|(k, _)| {
                !matches!(
                    k.as_str(),
                    "shuffle_time"
                        | "map_task_times"
                        | "reduce_task_times"
                        | "shuffle_bytes_saved"
                        | "corruption_retries"
                        | "speculative_launched"
                        | "speculative_wins"
                        | "speculative_work_ns"
                        | "straggler_delay_ns"
                        | "checkpoint_bytes"
                        | "peak_resident_bytes"
                        | "spill_bytes"
                        | "backpressure_stall_ns"
                )
            })
            .collect();
        let loaded: JobMetrics =
            serde::from_value::<_, E>(serde::Value::Map(old_dump)).expect("old dump must load");
        assert_eq!(loaded.name, "legacy");
        assert_eq!(loaded.shuffle_bytes, 123);
        assert_eq!(loaded.shuffle_bytes_saved, 0);
        assert_eq!(loaded.corruption_retries, 0);
        assert_eq!(loaded.speculative_launched, 0);
        assert_eq!(loaded.checkpoint_bytes, 0);
        assert_eq!(loaded.peak_resident_bytes, 0);
        assert_eq!(loaded.spill_bytes, 0);
        assert_eq!(loaded.backpressure_stall_ns, 0);
        assert_eq!(loaded.wall_time, Duration::from_millis(7));
        assert_eq!(loaded.shuffle_time, Duration::ZERO);
        assert_eq!(loaded.map_task_times, TaskTimes::default());
        assert_eq!(loaded.reduce_task_times, TaskTimes::default());
    }

    #[test]
    fn metrics_aggregate_sums_fields() {
        let a = JobMetrics {
            name: "j1".into(),
            shuffle_bytes: 100,
            shuffle_records: 10,
            wall_time: Duration::from_millis(5),
            ..Default::default()
        };
        let mut b = a.clone();
        b.name = "j2".into();
        let agg = JobMetrics::aggregate([&a, &b]);
        assert_eq!(agg.name, "j1+j2");
        assert_eq!(agg.shuffle_bytes, 200);
        assert_eq!(agg.shuffle_records, 20);
        assert_eq!(agg.wall_time, Duration::from_millis(10));
    }

    #[test]
    fn metrics_aggregate_merges_user_counters() {
        let mut a = JobMetrics::default();
        a.user.insert("dist".into(), 5);
        let mut b = JobMetrics::default();
        b.user.insert("dist".into(), 7);
        b.user.insert("other".into(), 1);
        let agg = JobMetrics::aggregate([&a, &b]);
        assert_eq!(agg.user["dist"], 12);
        assert_eq!(agg.user["other"], 1);
    }
}
