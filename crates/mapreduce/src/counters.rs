//! Job counters and metrics, mirroring Hadoop's job counter report.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Named user counters, shareable across task threads.
///
/// Tasks that want to report algorithm-level statistics (e.g. candidate
/// pairs filtered by the EDDPC triangle-inequality test) capture a clone of
/// the job's `Counters` in their struct and call [`Counters::inc`].
#[derive(Debug, Clone, Default)]
pub struct Counters {
    inner: Arc<Mutex<BTreeMap<String, Arc<AtomicU64>>>>,
}

impl Counters {
    /// A fresh, empty counter group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments `name` by `n`, creating the counter on first use.
    pub fn inc(&self, name: &str, n: u64) {
        self.handle(name).fetch_add(n, Ordering::Relaxed);
    }

    /// Returns a cheap handle to a single counter, avoiding the name lookup
    /// in hot loops.
    pub fn handle(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = self.inner.lock();
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone()
    }

    /// Current value of `name` (0 if never incremented).
    pub fn get(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Snapshot of all counters, name-ordered.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.inner
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }
}

/// Measured statistics of one completed MapReduce job.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct JobMetrics {
    /// Job name (for reports).
    pub name: String,
    /// Records fed to the map phase.
    pub map_input_records: u64,
    /// Records emitted by mappers (before any combiner).
    pub map_output_records: u64,
    /// Records after map-side combining (equals `map_output_records` when
    /// no combiner is configured).
    pub combine_output_records: u64,
    /// Records crossing the shuffle boundary.
    pub shuffle_records: u64,
    /// Estimated serialized bytes crossing the shuffle boundary — the
    /// paper's "shuffled data" (Figure 10(b)).
    pub shuffle_bytes: u64,
    /// Distinct keys seen by the reduce phase.
    pub reduce_input_groups: u64,
    /// Records emitted by reducers.
    pub reduce_output_records: u64,
    /// Size of the largest single reduce group (values under one key) —
    /// the skew signal behind the paper's Figure 12(a) observation that
    /// small `M` with large `pi` degrades runtime.
    pub max_reduce_group: u64,
    /// Records handled by the most loaded reduce task.
    pub max_reduce_task_records: u64,
    /// Task attempts wasted to injected failures and retried
    /// (see [`crate::fault::FaultPlan`]); 0 without fault injection.
    pub task_retries: u64,
    /// Wall-clock duration of the job on the host machine.
    #[serde(with = "duration_secs")]
    pub wall_time: Duration,
    /// Wall-clock duration of the map (+ combine + partition) phase.
    #[serde(with = "duration_secs")]
    pub map_time: Duration,
    /// Wall-clock duration of the sort/group + reduce phase.
    #[serde(with = "duration_secs")]
    pub reduce_time: Duration,
    /// Wall-clock duration of the shuffle merge (per-reducer bucket
    /// concatenation + byte accounting).
    #[serde(with = "duration_secs", default)]
    pub shuffle_time: Duration,
    /// User counter snapshot at job completion.
    pub user: BTreeMap<String, u64>,
}

mod duration_secs {
    use serde::{Deserialize, Deserializer, Serializer};
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(d.as_secs_f64())
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        let secs = f64::deserialize(d)?;
        Ok(Duration::from_secs_f64(secs))
    }
}

impl JobMetrics {
    /// Sums the cost-relevant counters of a sequence of jobs (e.g. all four
    /// LSH-DDP jobs) into one aggregate; `wall_time`s add, names join with
    /// `+`.
    pub fn aggregate<'a>(jobs: impl IntoIterator<Item = &'a JobMetrics>) -> JobMetrics {
        let mut out = JobMetrics::default();
        let mut names = Vec::new();
        for j in jobs {
            names.push(j.name.clone());
            out.map_input_records += j.map_input_records;
            out.map_output_records += j.map_output_records;
            out.combine_output_records += j.combine_output_records;
            out.shuffle_records += j.shuffle_records;
            out.shuffle_bytes += j.shuffle_bytes;
            out.reduce_input_groups += j.reduce_input_groups;
            out.reduce_output_records += j.reduce_output_records;
            out.max_reduce_group = out.max_reduce_group.max(j.max_reduce_group);
            out.max_reduce_task_records =
                out.max_reduce_task_records.max(j.max_reduce_task_records);
            out.task_retries += j.task_retries;
            out.wall_time += j.wall_time;
            out.map_time += j.map_time;
            out.reduce_time += j.reduce_time;
            out.shuffle_time += j.shuffle_time;
            for (k, v) in &j.user {
                *out.user.entry(k.clone()).or_insert(0) += v;
            }
        }
        out.name = names.join("+");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_increment_and_snapshot() {
        let c = Counters::new();
        c.inc("pairs", 3);
        c.inc("pairs", 2);
        c.inc("hits", 1);
        assert_eq!(c.get("pairs"), 5);
        assert_eq!(c.get("missing"), 0);
        let snap = c.snapshot();
        assert_eq!(snap["pairs"], 5);
        assert_eq!(snap["hits"], 1);
    }

    #[test]
    fn counter_handles_share_state() {
        let c = Counters::new();
        let h = c.handle("x");
        h.fetch_add(7, std::sync::atomic::Ordering::Relaxed);
        assert_eq!(c.get("x"), 7);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = Counters::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cc = c.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        cc.inc("n", 1);
                    }
                });
            }
        });
        assert_eq!(c.get("n"), 800);
    }

    #[test]
    fn metrics_aggregate_sums_fields() {
        let a = JobMetrics {
            name: "j1".into(),
            shuffle_bytes: 100,
            shuffle_records: 10,
            wall_time: Duration::from_millis(5),
            ..Default::default()
        };
        let mut b = a.clone();
        b.name = "j2".into();
        let agg = JobMetrics::aggregate([&a, &b]);
        assert_eq!(agg.name, "j1+j2");
        assert_eq!(agg.shuffle_bytes, 200);
        assert_eq!(agg.shuffle_records, 20);
        assert_eq!(agg.wall_time, Duration::from_millis(10));
    }

    #[test]
    fn metrics_aggregate_merges_user_counters() {
        let mut a = JobMetrics::default();
        a.user.insert("dist".into(), 5);
        let mut b = JobMetrics::default();
        b.user.insert("dist".into(), 7);
        b.user.insert("other".into(), 1);
        let agg = JobMetrics::aggregate([&a, &b]);
        assert_eq!(agg.user["dist"], 12);
        assert_eq!(agg.user["other"], 1);
    }
}
