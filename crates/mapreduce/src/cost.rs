//! Cluster cost model: converts measured job counters into a simulated wall
//! time for an arbitrary cluster size.
//!
//! The paper evaluates on two clusters — a 5-node local cluster (4 slaves,
//! i5-4690) and 64 m1.medium EC2 instances. We run the actual MapReduce
//! computation on one machine, but the job counters (shuffled bytes,
//! records, distance computations) are *exact*, so a linear cost model
//! reproduces cluster-level runtimes and, crucially, their ratios:
//!
//! ```text
//! time(job) = startup
//!           + cpu_work / (workers * cpu_rate)
//!           + shuffle_bytes / (workers * net_rate)
//!           + records * per_record / workers
//! ```
//!
//! Basic-DDP's quadratic shuffle and distance terms dominate exactly as on
//! real Hadoop, which is what produces the paper's 70× EC2 gap.

use crate::counters::JobMetrics;
use serde::{Deserialize, Serialize};

/// A linear cost model of a shared-nothing cluster.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of worker machines (Hadoop slaves).
    pub workers: usize,
    /// Distance computations per second *per worker*. A 4-dim Euclidean
    /// distance is ~10 ns on a 2010s-era core; high-dimensional points are
    /// proportionally slower, which `dims_factor` captures.
    pub distances_per_sec: f64,
    /// Aggregate shuffle bandwidth per worker, bytes/second (network +
    /// serialization + disk spill, the effective Hadoop shuffle rate).
    pub shuffle_bytes_per_sec: f64,
    /// Fixed per-record processing overhead, seconds (deserialization,
    /// context switches).
    pub per_record_secs: f64,
    /// Fixed startup cost of one MapReduce job, seconds (JVM spin-up,
    /// scheduling); Hadoop 1.x jobs pay ~10–20 s.
    pub job_startup_secs: f64,
}

impl ClusterSpec {
    /// The paper's local cluster: 1 master + 4 slaves, i5-4690, GbE,
    /// Hadoop 1.2.1. The effective rates reflect the Hadoop stack, not
    /// raw hardware: ~5×10⁷ 4-dim distance evaluations/s per core under
    /// the JVM, and ~10 MB/s effective shuffle per node once
    /// serialization, sort spills and HTTP fetch are accounted — shuffle
    /// is the dominant term, exactly as the paper's Figure 10 shows.
    pub fn local_cluster() -> Self {
        ClusterSpec {
            workers: 4,
            distances_per_sec: 5.0e7,
            shuffle_bytes_per_sec: 10.0e6,
            per_record_secs: 1.0e-6,
            job_startup_secs: 15.0,
        }
    }

    /// The paper's EC2 cluster: 64 m1.medium instances (1 vCPU, moderate
    /// network) — roughly half the local cluster's per-worker rates.
    pub fn ec2_m1_medium(workers: usize) -> Self {
        ClusterSpec {
            workers,
            distances_per_sec: 2.5e7,
            shuffle_bytes_per_sec: 6.0e6,
            per_record_secs: 2.0e-6,
            job_startup_secs: 20.0,
        }
    }

    /// Simulated wall time of one job, given its metrics and the number of
    /// distance computations it performed (`dist`), with a dimensionality
    /// scale factor `dims_factor` (= point dimensionality / 4.0, clamped to
    /// at least 1) applied to distance cost.
    pub fn simulate_job(&self, m: &JobMetrics, dist: u64, dims_factor: f64) -> f64 {
        assert!(self.workers > 0, "cluster must have at least one worker");
        let w = self.workers as f64;
        let cpu = dist as f64 * dims_factor.max(1.0) / (self.distances_per_sec * w);
        let net = m.shuffle_bytes as f64 / (self.shuffle_bytes_per_sec * w);
        let rec = (m.map_input_records + m.shuffle_records + m.reduce_output_records) as f64
            * self.per_record_secs
            / w;
        self.job_startup_secs + cpu + net + rec
    }

    /// Simulated wall time of a whole pipeline: per-job startup costs plus
    /// the summed work terms. `jobs` yields `(metrics, distance_count)`
    /// pairs.
    pub fn simulate_pipeline<'a>(
        &self,
        jobs: impl IntoIterator<Item = (&'a JobMetrics, u64)>,
        dims_factor: f64,
    ) -> f64 {
        jobs.into_iter()
            .map(|(m, d)| self.simulate_job(m, d, dims_factor))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(shuffle_bytes: u64, records: u64) -> JobMetrics {
        JobMetrics {
            name: "j".into(),
            map_input_records: records,
            shuffle_records: records,
            shuffle_bytes,
            ..Default::default()
        }
    }

    #[test]
    fn startup_dominates_empty_job() {
        let spec = ClusterSpec::local_cluster();
        let t = spec.simulate_job(&job(0, 0), 0, 1.0);
        assert!((t - spec.job_startup_secs).abs() < 1e-9);
    }

    #[test]
    fn time_scales_inversely_with_workers() {
        let m = job(1_000_000_000, 1_000_000);
        let few = ClusterSpec {
            workers: 4,
            ..ClusterSpec::ec2_m1_medium(4)
        };
        let many = ClusterSpec {
            workers: 64,
            ..ClusterSpec::ec2_m1_medium(64)
        };
        let t_few = few.simulate_job(&m, 10_000_000_000, 1.0) - few.job_startup_secs;
        let t_many = many.simulate_job(&m, 10_000_000_000, 1.0) - many.job_startup_secs;
        assert!(
            (t_few / t_many - 16.0).abs() < 1e-6,
            "work terms scale 1/workers"
        );
    }

    #[test]
    fn quadratic_vs_linear_work_produces_large_ratio() {
        // Basic-DDP on N = 1M: ~N²/2 distances and ~N*(n_blocks+1)/2 point
        // shuffles. LSH-DDP: ~N*avg_partition distances, 2M copies shuffled.
        let n: u64 = 1_000_000;
        let spec = ClusterSpec::ec2_m1_medium(64);
        let basic_dist = n * n / 2;
        let basic = job(n * 500 * 60, n * 50);
        let lsh_dist = n * 2000;
        let lsh = job(n * 2 * 10 * 60, n * 20);
        let t_basic = spec.simulate_job(&basic, basic_dist, 14.0);
        let t_lsh = spec.simulate_job(&lsh, lsh_dist, 14.0);
        let speedup = t_basic / t_lsh;
        assert!(speedup > 20.0, "expected a large speedup, got {speedup}");
    }

    #[test]
    fn pipeline_sums_jobs() {
        let spec = ClusterSpec::local_cluster();
        let a = job(1000, 10);
        let b = job(2000, 20);
        let t = spec.simulate_pipeline([(&a, 100), (&b, 200)], 1.0);
        let expected = spec.simulate_job(&a, 100, 1.0) + spec.simulate_job(&b, 200, 1.0);
        assert!((t - expected).abs() < 1e-12);
    }

    #[test]
    fn dims_factor_clamps_to_one() {
        let spec = ClusterSpec::local_cluster();
        let m = job(0, 0);
        let lo = spec.simulate_job(&m, 1_000_000, 0.25);
        let one = spec.simulate_job(&m, 1_000_000, 1.0);
        assert_eq!(lo, one);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let spec = ClusterSpec {
            workers: 0,
            ..ClusterSpec::local_cluster()
        };
        let _ = spec.simulate_job(&job(0, 0), 0, 1.0);
    }
}
