//! Task-level fault injection and retry — MapReduce's hallmark
//! fault-tolerance behavior.
//!
//! Hadoop reschedules a failed task attempt on another worker, up to
//! `mapred.map.max.attempts` (default 4) before failing the whole job.
//! Because a task is a pure function of its input split, retries are
//! invisible in the output; only wasted work shows up in the counters.
//!
//! [`FaultPlan`] injects deterministic failures: attempt `a` of task `t`
//! in phase `p` fails iff a seeded hash lands under the configured
//! per-mille rate. The engine re-runs the task (re-paying its cost —
//! the wasted attempts are real work, as on a real cluster), counts the
//! retries in [`crate::JobMetrics::task_retries`], and panics like
//! Hadoop's job-kill if a task exhausts its attempts.

use serde::{Deserialize, Serialize};

/// Which phase a task belongs to (used in failure hashing so map and
/// reduce attempts fail independently).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Map (+ combine + partition) tasks.
    Map,
    /// Sort/group + reduce tasks.
    Reduce,
}

/// Deterministic failure-injection plan.
///
/// ```
/// use mapreduce::{FaultPlan, Phase};
/// let plan = FaultPlan::new(300, 42); // 30% of attempts fail
/// let (value, retries) = plan.run_task(Phase::Map, 7, || 2 + 2);
/// assert_eq!(value, 4);
/// assert!(retries < plan.max_attempts);
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Failure probability per task attempt, in per-mille (0–1000).
    pub fail_per_mille: u32,
    /// Attempts per task before the job is failed (Hadoop default: 4).
    pub max_attempts: u32,
    /// Hash seed: same plan + same job shape = same failures.
    pub seed: u64,
}

impl FaultPlan {
    /// A plan failing roughly `fail_per_mille`/1000 of attempts, 4
    /// attempts per task.
    pub fn new(fail_per_mille: u32, seed: u64) -> Self {
        assert!(
            fail_per_mille < 1000,
            "a rate of 1000 would fail every attempt"
        );
        FaultPlan {
            fail_per_mille,
            max_attempts: 4,
            seed,
        }
    }

    /// Whether the given attempt of a task fails.
    pub fn fails(&self, phase: Phase, task: usize, attempt: u32) -> bool {
        if self.fail_per_mille == 0 {
            return false;
        }
        let p = match phase {
            Phase::Map => 0x6d61u64,
            Phase::Reduce => 0x7265u64,
        };
        let mut z = self
            .seed
            .wrapping_add(p.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((task as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add((attempt as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % 1000) < self.fail_per_mille as u64
    }

    /// Number of failing attempts before the first success, or `None`
    /// when every allowed attempt fails (job kill). The engine uses this
    /// to account wasted attempts without needing to re-run task bodies
    /// (tasks are deterministic, so a retry reproduces the same output).
    pub fn attempts_before_success(&self, phase: Phase, task: usize) -> Option<u32> {
        (0..self.max_attempts).find(|&a| !self.fails(phase, task, a))
    }

    /// Runs `work` under the plan: retries while injected attempts fail,
    /// returns the successful result together with the number of wasted
    /// attempts.
    ///
    /// # Panics
    /// Panics (job kill) when a task exhausts `max_attempts`.
    pub fn run_task<T>(&self, phase: Phase, task: usize, mut work: impl FnMut() -> T) -> (T, u32) {
        let mut retries = 0;
        for attempt in 0..self.max_attempts {
            // The attempt's work happens whether or not it then "fails" —
            // a real failed attempt has already burned the cycles.
            let result = work();
            if self.fails(phase, task, attempt) {
                retries += 1;
                continue;
            }
            return (result, retries);
        }
        panic!(
            "{phase:?} task {task} failed {} consecutive attempts; job killed \
             (like Hadoop after mapred.max.attempts)",
            self.max_attempts
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fails() {
        let plan = FaultPlan::new(0, 1);
        for t in 0..100 {
            assert!(!plan.fails(Phase::Map, t, 0));
        }
        let (v, retries) = plan.run_task(Phase::Map, 0, || 42);
        assert_eq!((v, retries), (42, 0));
    }

    #[test]
    fn failure_rate_is_roughly_honored() {
        let plan = FaultPlan::new(200, 9);
        let failures = (0..10_000)
            .filter(|&t| plan.fails(Phase::Map, t, 0))
            .count();
        assert!(
            (1500..2500).contains(&failures),
            "expected ~2000/10000 failures, got {failures}"
        );
    }

    #[test]
    fn failures_are_deterministic_and_phase_dependent() {
        let plan = FaultPlan::new(300, 7);
        for t in 0..50 {
            for a in 0..4 {
                assert_eq!(plan.fails(Phase::Map, t, a), plan.fails(Phase::Map, t, a));
            }
        }
        // Map and reduce schedules differ somewhere.
        let differs =
            (0..200).any(|t| plan.fails(Phase::Map, t, 0) != plan.fails(Phase::Reduce, t, 0));
        assert!(differs);
    }

    #[test]
    fn run_task_counts_retries_and_succeeds() {
        let plan = FaultPlan::new(400, 3);
        let mut executed = 0u32;
        let (v, retries) = plan.run_task(Phase::Map, 11, || {
            executed += 1;
            "done"
        });
        let _ = v;
        assert_eq!(executed, retries + 1, "every attempt pays its work");
    }

    #[test]
    #[should_panic(expected = "job killed")]
    fn exhausted_attempts_kill_the_job() {
        // Rate 999 with 4 attempts: find a task whose four attempts all
        // fail under this seed, then run it.
        let plan = FaultPlan {
            fail_per_mille: 999,
            max_attempts: 4,
            seed: 5,
        };
        let doomed = (0..10_000)
            .find(|&t| (0..4).all(|a| plan.fails(Phase::Map, t, a)))
            .expect("a doomed task exists at rate 0.999");
        let _ = plan.run_task(Phase::Map, doomed, || ());
    }

    #[test]
    fn attempts_before_success_matches_fails_schedule() {
        let plan = FaultPlan::new(500, 13);
        for t in 0..500 {
            match plan.attempts_before_success(Phase::Map, t) {
                Some(a) => {
                    assert!(!plan.fails(Phase::Map, t, a));
                    for earlier in 0..a {
                        assert!(plan.fails(Phase::Map, t, earlier));
                    }
                }
                None => {
                    for a in 0..4 {
                        assert!(plan.fails(Phase::Map, t, a));
                    }
                }
            }
        }
    }

    #[test]
    fn mutable_closures_are_supported_via_cell() {
        // run_task takes Fn; interior mutability covers counting needs.
        let plan = FaultPlan::new(100, 2);
        let count = std::cell::Cell::new(0u32);
        let ((), retries) = plan.run_task(Phase::Reduce, 3, || {
            count.set(count.get() + 1);
        });
        assert_eq!(count.get(), retries + 1);
    }
}
