//! Task-level fault injection and retry — MapReduce's hallmark
//! fault-tolerance behavior.
//!
//! Hadoop reschedules a failed task attempt on another worker, up to
//! `mapred.map.max.attempts` (default 4) before failing the whole job.
//! Because a task is a pure function of its input split, retries are
//! invisible in the output; only wasted work shows up in the counters.
//!
//! [`FaultPlan`] injects deterministic failures: attempt `a` of task `t`
//! in phase `p` fails iff a seeded hash lands under the configured
//! per-mille rate. The engine re-runs the task (re-paying its cost —
//! the wasted attempts are real work, as on a real cluster), counts the
//! retries in [`crate::JobMetrics::task_retries`], and panics like
//! Hadoop's job-kill if a task exhausts its attempts.
//!
//! [`ChaosPlan`] extends the taxonomy from task failures to everything
//! else the hardware can throw at a job:
//!
//! * **Stragglers** — a seeded subset of tasks is charged a slowdown
//!   multiplier on its measured runtime (capped so tests stay fast); the
//!   engine answers with speculative re-execution.
//! * **Record corruption** — a seeded subset of attempts produces output
//!   that fails its wire checksum (see [`crate::wire::encode_framed`])
//!   and is retried like a failed attempt.
//! * **Permanent partition loss** — a seeded subset of partitions in a
//!   named scope never comes back; callers with redundancy (LSH-DDP's
//!   `M` layouts) degrade gracefully instead of dying.
//!
//! Every schedule is a pure function of `(seed, phase, task, attempt)`,
//! so a chaos run is exactly reproducible and — because tasks are
//! deterministic — bit-identical in output to the fault-free run
//! whenever no task exhausts its attempts.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Which phase a task belongs to (used in failure hashing so map and
/// reduce attempts fail independently).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Map (+ combine + partition) tasks.
    Map,
    /// Sort/group + reduce tasks.
    Reduce,
}

/// Deterministic failure-injection plan.
///
/// ```
/// use mapreduce::{FaultPlan, Phase};
/// let plan = FaultPlan::new(300, 42); // 30% of attempts fail
/// let (value, retries) = plan.run_task(Phase::Map, 7, || 2 + 2);
/// assert_eq!(value, 4);
/// assert!(retries < plan.max_attempts);
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Failure probability per task attempt, in per-mille (0–1000).
    pub fail_per_mille: u32,
    /// Attempts per task before the job is failed (Hadoop default: 4).
    pub max_attempts: u32,
    /// Hash seed: same plan + same job shape = same failures.
    pub seed: u64,
}

impl FaultPlan {
    /// A plan failing roughly `fail_per_mille`/1000 of attempts, 4
    /// attempts per task.
    pub fn new(fail_per_mille: u32, seed: u64) -> Self {
        assert!(
            fail_per_mille < 1000,
            "a rate of 1000 would fail every attempt"
        );
        FaultPlan {
            fail_per_mille,
            max_attempts: 4,
            seed,
        }
    }

    /// Whether the given attempt of a task fails.
    pub fn fails(&self, phase: Phase, task: usize, attempt: u32) -> bool {
        if self.fail_per_mille == 0 {
            return false;
        }
        let z = chaos_hash(self.seed, phase_salt(phase), task as u64, attempt as u64);
        (z % 1000) < self.fail_per_mille as u64
    }

    /// Number of failing attempts before the first success, or `None`
    /// when every allowed attempt fails (job kill). The engine uses this
    /// to account wasted attempts without needing to re-run task bodies
    /// (tasks are deterministic, so a retry reproduces the same output).
    pub fn attempts_before_success(&self, phase: Phase, task: usize) -> Option<u32> {
        (0..self.max_attempts).find(|&a| !self.fails(phase, task, a))
    }

    /// Runs `work` under the plan: retries while injected attempts fail,
    /// returns the successful result together with the number of wasted
    /// attempts.
    ///
    /// Driven by [`FaultPlan::attempts_before_success`] — the same
    /// schedule the engine uses for its attempt accounting — so the doc
    /// example here and the engine counters cannot drift apart.
    ///
    /// # Panics
    /// Panics (job kill) when a task exhausts `max_attempts`.
    pub fn run_task<T>(&self, phase: Phase, task: usize, mut work: impl FnMut() -> T) -> (T, u32) {
        match self.attempts_before_success(phase, task) {
            Some(wasted) => {
                // Each failed attempt has already burned its cycles by the
                // time the failure surfaces, so every wasted attempt pays
                // for a full run of the work.
                for _ in 0..wasted {
                    let _ = work();
                }
                (work(), wasted)
            }
            None => panic!(
                "{phase:?} task {task} failed {} consecutive attempts; job killed \
                 (like Hadoop after mapred.max.attempts)",
                self.max_attempts
            ),
        }
    }
}

fn phase_salt(phase: Phase) -> u64 {
    match phase {
        Phase::Map => 0x6d61u64,
        Phase::Reduce => 0x7265u64,
    }
}

/// The splitmix64-style mixer behind every chaos schedule: a pure
/// function of `(seed, a, b, c)` with well-spread low bits. Shared
/// with the storage-fault schedules in [`crate::io_shim`].
pub(crate) fn chaos_hash(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(c.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What an injected attempt did: succeeded, crashed, or produced output
/// whose checksum does not verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// Attempt completes and its output verifies.
    Ok,
    /// Attempt crashes (classic task failure).
    Fail,
    /// Attempt completes but its output fails checksum verification;
    /// the engine discards it and retries, like a failure.
    Corrupt,
}

/// Wasted work charged to a task before its first good attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskWastage {
    /// Attempts that crashed outright.
    pub failed: u32,
    /// Attempts whose output was detected corrupt via checksum.
    pub corrupt: u32,
}

impl TaskWastage {
    /// Total wasted attempts (each re-ran the full task body).
    pub fn total(&self) -> u32 {
        self.failed + self.corrupt
    }
}

/// Deterministic whole-cluster failure plan: task failures plus
/// stragglers, record corruption, and permanent partition loss.
///
/// A [`FaultPlan`] covers only crash-style task failures; `ChaosPlan`
/// embeds one and layers the rest of the taxonomy on top. All schedules
/// share the fault plan's seed, salted per failure class, so one seed
/// reproduces an entire chaotic run.
///
/// ```
/// use mapreduce::{ChaosPlan, Phase};
/// let chaos = ChaosPlan::new(100, 42).with_stragglers(250, 4.0, 20);
/// // Schedules are pure functions of the seed:
/// assert_eq!(
///     chaos.is_straggler(Phase::Map, 3),
///     chaos.is_straggler(Phase::Map, 3),
/// );
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Crash-style task failures (rate, attempt budget, seed).
    pub fault: FaultPlan,
    /// Fraction of tasks (per mille) charged a straggler slowdown.
    #[serde(default)]
    pub straggler_per_mille: u32,
    /// Runtime multiplier for straggler tasks; values `<= 1` disable the
    /// extra delay.
    #[serde(default)]
    pub straggler_slowdown: f64,
    /// Upper bound on the injected delay per straggler task, in
    /// milliseconds (`0` = uncapped). Keeps chaos tests fast.
    #[serde(default)]
    pub straggler_cap_ms: u64,
    /// Fraction of attempts (per mille) whose output is corrupted in
    /// flight and caught by checksum verification.
    #[serde(default)]
    pub corrupt_per_mille: u32,
    /// Fraction of partitions (per mille) permanently lost per scope —
    /// see [`ChaosPlan::loses_partition`].
    #[serde(default)]
    pub partition_loss_per_mille: u32,
}

impl From<FaultPlan> for ChaosPlan {
    fn from(fault: FaultPlan) -> Self {
        ChaosPlan {
            fault,
            straggler_per_mille: 0,
            straggler_slowdown: 0.0,
            straggler_cap_ms: 0,
            corrupt_per_mille: 0,
            partition_loss_per_mille: 0,
        }
    }
}

impl ChaosPlan {
    /// A chaos plan with only crash-style failures enabled, matching
    /// `FaultPlan::new(fail_per_mille, seed)`.
    pub fn new(fail_per_mille: u32, seed: u64) -> Self {
        FaultPlan::new(fail_per_mille, seed).into()
    }

    /// Enables straggler injection: `per_mille` of tasks run `slowdown`×
    /// their natural time, with the extra delay capped at `cap_ms`.
    pub fn with_stragglers(mut self, per_mille: u32, slowdown: f64, cap_ms: u64) -> Self {
        assert!(per_mille <= 1000, "straggler rate is per mille");
        self.straggler_per_mille = per_mille;
        self.straggler_slowdown = slowdown;
        self.straggler_cap_ms = cap_ms;
        self
    }

    /// Enables record corruption at `per_mille` of attempts.
    pub fn with_corruption(mut self, per_mille: u32) -> Self {
        assert!(
            per_mille < 1000,
            "a rate of 1000 would corrupt every attempt"
        );
        self.corrupt_per_mille = per_mille;
        self
    }

    /// Enables permanent partition loss at `per_mille` of partitions.
    pub fn with_partition_loss(mut self, per_mille: u32) -> Self {
        assert!(per_mille <= 1000, "loss rate is per mille");
        self.partition_loss_per_mille = per_mille;
        self
    }

    /// The shared chaos seed.
    pub fn seed(&self) -> u64 {
        self.fault.seed
    }

    /// Whether this plan injects nothing at all.
    pub fn is_noop(&self) -> bool {
        self.fault.fail_per_mille == 0
            && self.straggler_per_mille == 0
            && self.corrupt_per_mille == 0
            && self.partition_loss_per_mille == 0
    }

    /// Outcome of one attempt: crash failures take precedence over
    /// corruption (a crashed attempt never ships output to verify).
    pub fn attempt_outcome(&self, phase: Phase, task: usize, attempt: u32) -> AttemptOutcome {
        if self.fault.fails(phase, task, attempt) {
            return AttemptOutcome::Fail;
        }
        if self.corrupt_per_mille > 0 {
            let z = chaos_hash(
                self.fault.seed ^ 0x636f_7272, // "corr"
                phase_salt(phase),
                task as u64,
                attempt as u64,
            );
            if (z % 1000) < self.corrupt_per_mille as u64 {
                return AttemptOutcome::Corrupt;
            }
        }
        AttemptOutcome::Ok
    }

    /// Wasted attempts before the first verified success, or `None` when
    /// every allowed attempt fails or corrupts (job kill). Mirrors
    /// [`FaultPlan::attempts_before_success`] over the full taxonomy.
    pub fn task_wastage(&self, phase: Phase, task: usize) -> Option<TaskWastage> {
        let mut w = TaskWastage::default();
        for attempt in 0..self.fault.max_attempts {
            match self.attempt_outcome(phase, task, attempt) {
                AttemptOutcome::Ok => return Some(w),
                AttemptOutcome::Fail => w.failed += 1,
                AttemptOutcome::Corrupt => w.corrupt += 1,
            }
        }
        None
    }

    /// Whether a task is a straggler (charged the slowdown multiplier).
    pub fn is_straggler(&self, phase: Phase, task: usize) -> bool {
        if self.straggler_per_mille == 0 {
            return false;
        }
        let z = chaos_hash(
            self.fault.seed ^ 0x7374_7261, // "stra"
            phase_salt(phase),
            task as u64,
            0,
        );
        (z % 1000) < self.straggler_per_mille as u64
    }

    /// Extra delay charged to a straggler whose natural runtime was
    /// `base`: `base * (slowdown - 1)`, capped at `straggler_cap_ms`.
    pub fn straggler_delay(&self, base: Duration) -> Duration {
        let factor = (self.straggler_slowdown - 1.0).max(0.0);
        let extra = base.mul_f64(factor);
        if self.straggler_cap_ms == 0 {
            extra
        } else {
            extra.min(Duration::from_millis(self.straggler_cap_ms))
        }
    }

    /// Whether partition `index` of the named `scope` (e.g. one LSH
    /// layout's hash) is permanently lost. Loss is stable for the whole
    /// run: every job that asks gets the same answer, modeling a dead
    /// node whose partitions never come back.
    pub fn loses_partition(&self, scope: u64, index: usize) -> bool {
        if self.partition_loss_per_mille == 0 {
            return false;
        }
        let z = chaos_hash(
            self.fault.seed ^ 0x6c6f_7373, // "loss"
            scope,
            index as u64,
            0,
        );
        (z % 1000) < self.partition_loss_per_mille as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fails() {
        let plan = FaultPlan::new(0, 1);
        for t in 0..100 {
            assert!(!plan.fails(Phase::Map, t, 0));
        }
        let (v, retries) = plan.run_task(Phase::Map, 0, || 42);
        assert_eq!((v, retries), (42, 0));
    }

    #[test]
    fn failure_rate_is_roughly_honored() {
        let plan = FaultPlan::new(200, 9);
        let failures = (0..10_000)
            .filter(|&t| plan.fails(Phase::Map, t, 0))
            .count();
        assert!(
            (1500..2500).contains(&failures),
            "expected ~2000/10000 failures, got {failures}"
        );
    }

    #[test]
    fn failures_are_deterministic_and_phase_dependent() {
        let plan = FaultPlan::new(300, 7);
        for t in 0..50 {
            for a in 0..4 {
                assert_eq!(plan.fails(Phase::Map, t, a), plan.fails(Phase::Map, t, a));
            }
        }
        // Map and reduce schedules differ somewhere.
        let differs =
            (0..200).any(|t| plan.fails(Phase::Map, t, 0) != plan.fails(Phase::Reduce, t, 0));
        assert!(differs);
    }

    #[test]
    fn run_task_counts_retries_and_succeeds() {
        let plan = FaultPlan::new(400, 3);
        let mut executed = 0u32;
        let (v, retries) = plan.run_task(Phase::Map, 11, || {
            executed += 1;
            "done"
        });
        let _ = v;
        assert_eq!(executed, retries + 1, "every attempt pays its work");
    }

    #[test]
    #[should_panic(expected = "job killed")]
    fn exhausted_attempts_kill_the_job() {
        // Rate 999 with 4 attempts: find a task whose four attempts all
        // fail under this seed, then run it.
        let plan = FaultPlan {
            fail_per_mille: 999,
            max_attempts: 4,
            seed: 5,
        };
        let doomed = (0..10_000)
            .find(|&t| (0..4).all(|a| plan.fails(Phase::Map, t, a)))
            .expect("a doomed task exists at rate 0.999");
        let _ = plan.run_task(Phase::Map, doomed, || ());
    }

    #[test]
    fn attempts_before_success_matches_fails_schedule() {
        let plan = FaultPlan::new(500, 13);
        for t in 0..500 {
            match plan.attempts_before_success(Phase::Map, t) {
                Some(a) => {
                    assert!(!plan.fails(Phase::Map, t, a));
                    for earlier in 0..a {
                        assert!(plan.fails(Phase::Map, t, earlier));
                    }
                }
                None => {
                    for a in 0..4 {
                        assert!(plan.fails(Phase::Map, t, a));
                    }
                }
            }
        }
    }

    #[test]
    fn mutable_closures_are_supported_via_cell() {
        // run_task takes FnMut, so a plain `mut` counter works too (see
        // run_task_counts_retries_and_succeeds); a Cell covers closures
        // that must stay Fn for other reasons.
        let plan = FaultPlan::new(100, 2);
        let count = std::cell::Cell::new(0u32);
        let ((), retries) = plan.run_task(Phase::Reduce, 3, || {
            count.set(count.get() + 1);
        });
        assert_eq!(count.get(), retries + 1);
    }

    #[test]
    fn run_task_matches_attempts_before_success() {
        let plan = FaultPlan::new(450, 21);
        for t in 0..200 {
            if let Some(wasted) = plan.attempts_before_success(Phase::Map, t) {
                let (_, retries) = plan.run_task(Phase::Map, t, || ());
                assert_eq!(retries, wasted, "task {t}");
            }
        }
    }

    #[test]
    fn chaos_with_fault_only_matches_fault_plan() {
        let chaos = ChaosPlan::new(300, 7);
        assert!(!chaos.is_straggler(Phase::Map, 0));
        for t in 0..200 {
            let w = chaos.task_wastage(Phase::Map, t);
            let f = chaos.fault.attempts_before_success(Phase::Map, t);
            assert_eq!(w.map(|w| w.failed), f, "task {t}");
            assert_eq!(w.map(|w| w.corrupt), f.map(|_| 0), "task {t}");
        }
    }

    #[test]
    fn chaos_schedules_are_deterministic_and_independent() {
        let chaos = ChaosPlan::new(200, 11)
            .with_stragglers(300, 4.0, 10)
            .with_corruption(150);
        for t in 0..100 {
            assert_eq!(
                chaos.is_straggler(Phase::Map, t),
                chaos.is_straggler(Phase::Map, t)
            );
            assert_eq!(
                chaos.attempt_outcome(Phase::Reduce, t, 1),
                chaos.attempt_outcome(Phase::Reduce, t, 1)
            );
        }
        // Straggler and failure schedules disagree somewhere: different salts.
        let differs = (0..500)
            .any(|t| chaos.is_straggler(Phase::Map, t) != chaos.fault.fails(Phase::Map, t, 0));
        assert!(differs);
    }

    #[test]
    fn corruption_rate_is_roughly_honored() {
        let chaos = ChaosPlan::new(0, 17).with_corruption(200);
        let corrupt = (0..10_000)
            .filter(|&t| chaos.attempt_outcome(Phase::Map, t, 0) == AttemptOutcome::Corrupt)
            .count();
        assert!(
            (1500..2500).contains(&corrupt),
            "expected ~2000/10000 corruptions, got {corrupt}"
        );
    }

    #[test]
    fn crash_takes_precedence_over_corruption() {
        let chaos = ChaosPlan::new(999, 3).with_corruption(999);
        // Nearly every attempt fails; none of the failing ones may report
        // Corrupt (a crashed attempt ships no output).
        for t in 0..200 {
            if chaos.fault.fails(Phase::Map, t, 0) {
                assert_eq!(
                    chaos.attempt_outcome(Phase::Map, t, 0),
                    AttemptOutcome::Fail
                );
            }
        }
    }

    #[test]
    fn straggler_delay_is_capped() {
        let chaos = ChaosPlan::new(0, 1).with_stragglers(1000, 10.0, 5);
        let d = chaos.straggler_delay(Duration::from_secs(1));
        assert_eq!(d, Duration::from_millis(5));
        let small = chaos.straggler_delay(Duration::from_micros(100));
        assert_eq!(small, Duration::from_micros(900));
    }

    #[test]
    fn partition_loss_is_stable_and_scoped() {
        let chaos = ChaosPlan::new(0, 5).with_partition_loss(400);
        let lost: Vec<bool> = (0..32).map(|i| chaos.loses_partition(99, i)).collect();
        let again: Vec<bool> = (0..32).map(|i| chaos.loses_partition(99, i)).collect();
        assert_eq!(lost, again, "loss is permanent");
        assert!(
            lost.iter().any(|&l| l),
            "rate 0.4 over 32 partitions loses some"
        );
        assert!(!lost.iter().all(|&l| l), "and keeps some");
        let other: Vec<bool> = (0..32).map(|i| chaos.loses_partition(100, i)).collect();
        assert_ne!(lost, other, "scopes fail independently");
    }

    #[test]
    fn noop_chaos_detected() {
        assert!(ChaosPlan::new(0, 9).is_noop());
        assert!(!ChaosPlan::new(1, 9).is_noop());
        assert!(!ChaosPlan::new(0, 9).with_stragglers(1, 2.0, 1).is_noop());
    }

    #[test]
    fn task_wastage_none_when_all_attempts_bad() {
        let chaos = ChaosPlan::new(999, 5);
        let doomed = (0..10_000)
            .find(|&t| (0..4).all(|a| chaos.fault.fails(Phase::Map, t, a)))
            .expect("a doomed task exists at rate 0.999");
        assert_eq!(chaos.task_wastage(Phase::Map, doomed), None);
    }
}
