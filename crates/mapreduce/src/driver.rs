//! The driver program: the scheduler that executes dataflow plans.
//!
//! A MapReduce algorithm is usually a *pipeline* — the paper's LSH-DDP is
//! four jobs plus a centralized step. [`Driver`] is the master-node side of
//! that: it owns the [`Dfs`], executes [`Plan`]s stage by stage (recording
//! every stage's [`JobMetrics`] automatically), applies the cross-stage
//! optimizations the plan layer declares — co-partitioned shuffle elision
//! and map-stage fusion, see [`crate::plan`] — and reports pipeline-level
//! aggregates (total shuffle bytes, bytes saved by elision, total distance
//! computations) and cost-model runtimes.
//!
//! ## Bounded-memory execution
//!
//! A driver built with [`Driver::with_mem_budget`] carries a
//! [`MemoryGovernor`]: an admission controller that keeps the resident
//! footprint of in-flight shuffle data under a byte budget. Map tasks
//! charge their partitioned output against the budget and spill completed
//! buckets to the [`Dfs`] disk tier when over it; reduce tasks pass
//! through an admission gate that delays decoding spilled partitions until
//! enough charged bytes have been released. The governor never reorders
//! records — spilling moves a task's output to disk wholesale and streams
//! it back in the same task/bucket order, so budgeted and unbudgeted runs
//! are bit-identical.

use crate::cost::ClusterSpec;
use crate::counters::JobMetrics;
use crate::dfs::Dfs;
use crate::job::MapInput;
use crate::plan::{CheckpointCtx, ExecCtx, PartitionCache, Plan};
use crate::spill::SegmentWriter;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

/// Admission controller for bounded-memory plan execution.
///
/// Tracks the bytes of shuffle data currently resident in memory
/// ("charged"), decides when map output should spill to the [`Dfs`] disk
/// tier, and gates reduce-side decode of spilled partitions so that
/// concurrent reduce tasks cannot collectively blow the budget. A budget
/// of `0` is a deterministic always-spill mode used by tests: every
/// governed map task spills and reduce admission serializes.
///
/// Exported telemetry (process-global registry): counter
/// `mem.spill_bytes`, gauge `mem.budget_bytes`, histogram
/// `mem.backpressure_stall_ns`.
pub struct MemoryGovernor {
    budget: u64,
    dfs: Arc<Dfs>,
    /// Bytes of shuffle data currently charged as memory-resident.
    resident: AtomicU64,
    /// Total bytes moved to the disk tier under pressure.
    spilled: AtomicU64,
    /// Total nanoseconds tasks spent stalled at the admission gate.
    stall_ns: AtomicU64,
    /// Set when a spill write failed with ENOSPC: the spill tier is out
    /// of disk, so the run degrades to resident execution instead of
    /// retrying a full disk on every task (counter
    /// `spill.enospc_fallbacks`, plus a `--stats` warning line).
    spill_disabled: AtomicBool,
    /// ENOSPC fallbacks recorded on this governor.
    enospc_fallbacks: AtomicU64,
    /// Number of currently admitted reduce tasks; the condvar wakes
    /// waiters when one retires or charged bytes are released.
    active: Mutex<usize>,
    cv: Condvar,
}

impl MemoryGovernor {
    /// A governor enforcing `budget` bytes over `dfs`'s spill tier.
    pub fn new(budget: u64, dfs: Arc<Dfs>) -> Self {
        MemoryGovernor {
            budget,
            dfs,
            resident: AtomicU64::new(0),
            spilled: AtomicU64::new(0),
            stall_ns: AtomicU64::new(0),
            spill_disabled: AtomicBool::new(false),
            enospc_fallbacks: AtomicU64::new(0),
            active: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// The configured budget in bytes (0 = always spill).
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes of shuffle data currently charged as resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// Total bytes spilled to disk under pressure so far.
    pub fn spill_bytes(&self) -> u64 {
        self.spilled.load(Ordering::Relaxed)
    }

    /// Total nanoseconds spent stalled at the admission gate so far.
    pub fn stall_ns(&self) -> u64 {
        self.stall_ns.load(Ordering::Relaxed)
    }

    /// Charges `bytes` of freshly materialized shuffle data.
    pub(crate) fn charge(&self, bytes: u64) {
        if bytes > 0 {
            self.resident.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Releases `bytes` previously charged (saturating: a release can race
    /// a concurrent spill of the same logical data, and under-counting
    /// pressure is safer than wrapping).
    pub(crate) fn uncharge(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let _ = self
            .resident
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(bytes))
            });
        // Released bytes may unblock admission waiters.
        drop(self.active.lock().unwrap());
        self.cv.notify_all();
    }

    /// Whether a completed map task's output should move to disk now.
    /// Spilling starts at the *half-budget* high watermark, not at the
    /// budget itself: data waiting for the shuffle must leave headroom for
    /// the reduce phase's decoded buckets and working sets, which is what
    /// keeps the whole-process peak near the budget instead of at
    /// `budget + working set`.
    pub(crate) fn should_spill(&self) -> bool {
        if self.spill_disabled.load(Ordering::Relaxed) {
            return false;
        }
        if self.budget == 0 {
            return true;
        }
        let watermark = self.budget / 2;
        if self.resident.load(Ordering::Relaxed) > watermark {
            return true;
        }
        // When the heap profiler is live, the whole process heap counts —
        // it sees allocations (dataset, index structures) the shuffle
        // accounting can't.
        obsv::alloc::accounting_enabled() && obsv::alloc::current_bytes() > watermark
    }

    /// Whether the spill tier has been disabled for this run (ENOSPC
    /// degradation): the run continues resident instead of aborting.
    pub fn spill_disabled(&self) -> bool {
        self.spill_disabled.load(Ordering::Relaxed)
    }

    /// ENOSPC fallbacks recorded so far (0 or 1 per governor: the first
    /// one disables the tier).
    pub fn enospc_fallbacks(&self) -> u64 {
        self.enospc_fallbacks.load(Ordering::Relaxed)
    }

    /// Reacts to a failed spill write. The caller has already fallen
    /// back to keeping the data resident (correctness never depends on
    /// the disk); this decides whether the *tier* stays usable. ENOSPC
    /// is persistent — retrying it on every subsequent task would only
    /// burn syscalls on a full disk — so it disables the tier for the
    /// rest of the run and counts a `spill.enospc_fallbacks`. Transient
    /// errors (e.g. an EIO that survived the shim's retries) leave the
    /// tier enabled: the next spill may well succeed.
    pub(crate) fn note_spill_error(&self, e: &std::io::Error) {
        if crate::io_shim::is_enospc(e) && !self.spill_disabled.swap(true, Ordering::Relaxed) {
            self.enospc_fallbacks.fetch_add(1, Ordering::Relaxed);
            obsv::metrics::global()
                .counter("spill.enospc_fallbacks")
                .inc(1);
        }
    }

    /// Records `bytes` moved to the disk tier.
    pub(crate) fn note_spill(&self, bytes: u64) {
        self.spilled.fetch_add(bytes, Ordering::Relaxed);
        obsv::metrics::global()
            .counter("mem.spill_bytes")
            .inc(bytes);
    }

    /// Opens a spill segment in the driver DFS's disk tier.
    pub(crate) fn segment(&self, label: &str) -> std::io::Result<SegmentWriter> {
        self.dfs.spill_segment(label)
    }

    /// Admission gate for one reduce task that needs to decode
    /// `decode_bytes` of spilled data back into memory (and already holds
    /// `release_mem_bytes` of charged resident parts). Blocks while other
    /// admitted tasks hold the budget; a lone task is always admitted, so
    /// the gate cannot deadlock. The returned guard releases both charges
    /// and retires the admission slot when dropped.
    ///
    /// The reservation is `DECODE_HEADROOM x decode_bytes`, not the raw
    /// decode size: a reduce task's real footprint is the decoded records
    /// plus the sort/group value copies plus whatever the reducer builds
    /// from them (flattened coordinate buffers, spatial indexes) — all
    /// proportional to the decoded bytes. Reserving only the decode size
    /// would let concurrent tasks collectively overshoot the budget by
    /// exactly that working-set multiple.
    pub(crate) fn admit(
        self: &Arc<Self>,
        decode_bytes: u64,
        release_mem_bytes: u64,
        job_stall: &AtomicU64,
    ) -> AdmitGuard {
        /// Empirical resident-bytes-per-decoded-byte of a reduce task:
        /// the decoded `Vec`, the grouped value copies, one
        /// reducer-built derived structure of similar size, and slack
        /// for allocator rounding on the three of them.
        const DECODE_HEADROOM: u64 = 4;
        let reserve = decode_bytes.saturating_mul(DECODE_HEADROOM);
        let start = Instant::now();
        let mut waited = false;
        {
            let mut active = self.active.lock().unwrap();
            while *active > 0
                && self
                    .resident
                    .load(Ordering::Relaxed)
                    .saturating_add(reserve)
                    > self.budget
            {
                // Timed wait: releases also arrive via `uncharge` on the
                // map side, whose notify can race this check.
                active = self
                    .cv
                    .wait_timeout(active, Duration::from_millis(2))
                    .unwrap()
                    .0;
                waited = true;
            }
            *active += 1;
            // Charge under the lock so concurrent waiters see the new
            // resident total before they re-check.
            self.charge(reserve);
        }
        if waited {
            let ns = start.elapsed().as_nanos() as u64;
            job_stall.fetch_add(ns, Ordering::Relaxed);
            self.stall_ns.fetch_add(ns, Ordering::Relaxed);
            obsv::metrics::global()
                .histogram("mem.backpressure_stall_ns")
                .record(ns);
        }
        AdmitGuard {
            governor: Arc::clone(self),
            release: reserve.saturating_add(release_mem_bytes),
        }
    }

    /// Bounded pacing hook for the executor: briefly delays the next
    /// chunk while the process is over budget, giving in-flight releases
    /// a chance to land. Never blocks indefinitely (the scheduler must
    /// keep making progress to produce those releases).
    pub fn pace_chunk(&self) {
        if self.budget == 0 {
            return;
        }
        let start = Instant::now();
        let mut paced = false;
        for _ in 0..4 {
            let over = self.resident.load(Ordering::Relaxed) > self.budget
                || (obsv::alloc::accounting_enabled()
                    && obsv::alloc::current_bytes() > self.budget);
            if !over {
                break;
            }
            std::thread::sleep(Duration::from_micros(500));
            paced = true;
        }
        if paced {
            let ns = start.elapsed().as_nanos() as u64;
            self.stall_ns.fetch_add(ns, Ordering::Relaxed);
            obsv::metrics::global()
                .histogram("mem.backpressure_stall_ns")
                .record(ns);
        }
    }
}

impl std::fmt::Debug for MemoryGovernor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryGovernor")
            .field("budget", &self.budget)
            .field("resident", &self.resident_bytes())
            .field("spilled", &self.spill_bytes())
            .finish()
    }
}

/// RAII admission slot handed out by [`MemoryGovernor::admit`].
pub(crate) struct AdmitGuard {
    governor: Arc<MemoryGovernor>,
    release: u64,
}

impl Drop for AdmitGuard {
    fn drop(&mut self) {
        self.governor.uncharge(self.release);
        let mut active = self.governor.active.lock().unwrap();
        *active = active.saturating_sub(1);
        drop(active);
        self.governor.cv.notify_all();
    }
}

/// The governor the executor's chunk gate paces against. `Weak` so a
/// dropped driver stops pacing instead of leaking its governor.
static ACTIVE_GOVERNOR: std::sync::Mutex<Weak<MemoryGovernor>> = std::sync::Mutex::new(Weak::new());
static CHUNK_GATE_INSTALLED: OnceLock<()> = OnceLock::new();

fn register_chunk_gate(governor: &Arc<MemoryGovernor>) {
    *ACTIVE_GOVERNOR.lock().unwrap() = Arc::downgrade(governor);
    CHUNK_GATE_INSTALLED.get_or_init(|| {
        rayon::set_chunk_admission_gate(Box::new(|| {
            let gov = ACTIVE_GOVERNOR.lock().unwrap().upgrade();
            if let Some(gov) = gov {
                gov.pace_chunk();
            }
        }));
    });
}

/// Pipeline driver: plan scheduler + DFS handle + job history.
///
/// The retained-partition cache lives on the driver, not on individual
/// plans, so a co-partitioning contract can span plan segments — pipelines
/// routinely interleave driver-side assembly (e.g. broadcasting aggregated
/// ρ values) between two plans that read the same snapshot.
pub struct Driver {
    dfs: Arc<Dfs>,
    history: Vec<JobMetrics>,
    cache: PartitionCache,
    elision: bool,
    checkpoints: bool,
    governor: Option<Arc<MemoryGovernor>>,
}

impl Driver {
    /// A fresh driver with an empty DFS, empty history, shuffle elision
    /// enabled, stage checkpointing disabled, and no memory budget.
    pub fn new() -> Self {
        Driver {
            dfs: Arc::new(Dfs::new()),
            history: Vec::new(),
            cache: PartitionCache::default(),
            elision: true,
            checkpoints: false,
            governor: None,
        }
    }

    /// Bounds the resident footprint of in-flight shuffle data to `bytes`,
    /// spilling to the DFS disk tier under pressure. `0` means
    /// always-spill (deterministic stress mode for tests). Outputs are
    /// bit-identical with or without a budget; only memory residency and
    /// wall time change.
    pub fn with_mem_budget(mut self, bytes: u64) -> Self {
        let governor = Arc::new(MemoryGovernor::new(bytes, Arc::clone(&self.dfs)));
        obsv::metrics::global()
            .gauge("mem.budget_bytes")
            .set(bytes.min(i64::MAX as u64) as i64);
        register_chunk_gate(&governor);
        self.governor = Some(governor);
        self
    }

    /// The memory governor, if a budget was configured.
    pub fn mem_governor(&self) -> Option<&Arc<MemoryGovernor>> {
        self.governor.as_ref()
    }

    /// Enables or disables co-partitioned shuffle elision. Outputs are
    /// bit-identical either way; disabling exists for A/B measurement and
    /// paranoia.
    pub fn with_elision(mut self, on: bool) -> Self {
        self.elision = on;
        self
    }

    /// Whether the scheduler elides co-partitioned shuffles.
    pub fn elision(&self) -> bool {
        self.elision
    }

    /// Enables or disables stage-granular checkpointing.
    ///
    /// When on, every stage of [`Self::run_plan`] materializes its output
    /// rows into the driver's [`Dfs`] under `ckpt/<plan>/<stage>` right
    /// after completing, and a stage finding its own checkpoint already
    /// materialized (because a previous run of the same plan on this
    /// driver was killed mid-flight) skips execution and resumes from the
    /// stored rows. Checkpoints only survive *kills*: a plan that runs to
    /// completion clears its own, so re-running a finished plan recomputes
    /// from scratch. The bytes written are reported per stage as
    /// [`JobMetrics::checkpoint_bytes`].
    pub fn with_checkpoints(mut self, on: bool) -> Self {
        self.checkpoints = on;
        self
    }

    /// Whether stage checkpointing is on.
    pub fn checkpoints(&self) -> bool {
        self.checkpoints
    }

    /// Replaces the driver's DFS with a caller-supplied one. This is how
    /// a restarted driver sees the checkpoints a killed predecessor left
    /// behind: both are built over the same shared [`Dfs`]. An existing
    /// memory governor is rebound so its spill tier lands in the new DFS
    /// regardless of builder-call order.
    pub fn with_dfs(mut self, dfs: Arc<Dfs>) -> Self {
        self.dfs = dfs;
        if let Some(gov) = self.governor.take() {
            let rebound = Arc::new(MemoryGovernor::new(gov.budget(), Arc::clone(&self.dfs)));
            register_chunk_gate(&rebound);
            self.governor = Some(rebound);
        }
        self
    }

    /// The driver's distributed file system.
    pub fn dfs(&self) -> &Arc<Dfs> {
        &self.dfs
    }

    /// Executes a plan: runs every stage through the engine's phase
    /// machinery, auto-records each stage's [`JobMetrics`] into the
    /// history, and applies shuffle elision where stages declared
    /// co-partitioning contracts. Returns the final stage's output rows.
    pub fn run_plan<K, V>(&mut self, plan: Plan<K, V>) -> Vec<(K, V)>
    where
        K: Clone + 'static,
        V: Clone + 'static,
    {
        let Plan {
            name,
            source,
            source_id,
            stages,
            ..
        } = plan;
        let _plan_span = obsv::span!("plan", name.clone());
        let mut rows = source;
        let mut source = source_id;
        for (idx, stage) in stages.into_iter().enumerate() {
            let mut ctx = ExecCtx {
                elide: self.elision,
                cache: &mut self.cache,
                history: &mut self.history,
                checkpoint: self.checkpoints.then(|| CheckpointCtx {
                    dfs: Arc::clone(&self.dfs),
                    plan: name.clone(),
                    stage: idx,
                }),
                governor: self.governor.clone(),
            };
            let (next, next_source) = stage(&mut ctx, rows, source);
            rows = next;
            source = next_source;
        }
        // The plan completed: its checkpoints have served their purpose.
        // Clearing them here means checkpoints only ever survive a kill,
        // so a deliberate re-run of a finished plan starts fresh.
        if self.checkpoints {
            for path in self.dfs.list(&format!("ckpt/{name}/")) {
                self.dfs.remove(&path);
            }
        }
        let out = rows
            .downcast::<MapInput<K, V>>()
            .expect("plan output row type mismatch");
        match *out {
            MapInput::Owned(v) => v,
            MapInput::Shared(arc) => Arc::try_unwrap(arc).unwrap_or_else(|a| (*a).clone()),
            MapInput::Spilled(rows) => rows.read_all(),
        }
    }

    /// Consumes the driver, returning the recorded job history.
    pub fn into_history(self) -> Vec<JobMetrics> {
        self.history
    }

    /// Metrics of every job run so far, in order.
    pub fn history(&self) -> &[JobMetrics] {
        &self.history
    }

    /// Aggregate metrics over the whole pipeline.
    pub fn totals(&self) -> JobMetrics {
        JobMetrics::aggregate(self.history.iter())
    }

    /// Total shuffled bytes across all jobs — the paper's Figure 10(b)
    /// quantity.
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.history.iter().map(|m| m.shuffle_bytes).sum()
    }

    /// Total bytes that never crossed the shuffle boundary because the
    /// scheduler elided co-partitioned stages — the counterpart of
    /// [`Self::total_shuffle_bytes`] in Figure 10(b) accounting.
    pub fn total_shuffle_bytes_saved(&self) -> u64 {
        self.history.iter().map(|m| m.shuffle_bytes_saved).sum()
    }

    /// Sum of a user counter across all jobs (e.g. `"distances"`).
    pub fn total_user_counter(&self, name: &str) -> u64 {
        self.history
            .iter()
            .map(|m| m.user.get(name).copied().unwrap_or(0))
            .sum()
    }

    /// Simulated pipeline runtime on `spec`, charging the user counter
    /// `dist_counter` of each job as its distance work.
    ///
    /// Note: user counters are cumulative snapshots taken at each job's
    /// completion, so per-job increments are reconstructed by differencing
    /// consecutive snapshots.
    pub fn simulate(&self, spec: &ClusterSpec, dist_counter: &str, dims_factor: f64) -> f64 {
        let mut prev = 0u64;
        let mut total = 0.0;
        for m in &self.history {
            let snap = m.user.get(dist_counter).copied().unwrap_or(prev);
            let delta = snap.saturating_sub(prev);
            prev = snap.max(prev);
            total += spec.simulate_job(m, delta, dims_factor);
        }
        total
    }
}

impl Default for Driver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::time::Duration;

    fn job(name: &str, bytes: u64, dist_snapshot: u64) -> JobMetrics {
        let mut user = BTreeMap::new();
        user.insert("distances".to_string(), dist_snapshot);
        JobMetrics {
            name: name.into(),
            shuffle_bytes: bytes,
            wall_time: Duration::from_millis(1),
            user,
            ..Default::default()
        }
    }

    #[test]
    fn history_and_totals() {
        // `run_plan` is the only public recording path; these unit tests
        // of the history/aggregation mechanics seed it directly.
        let mut d = Driver::new();
        d.history.push(job("a", 100, 10));
        d.history.push(job("b", 300, 25));
        assert_eq!(d.history().len(), 2);
        assert_eq!(d.total_shuffle_bytes(), 400);
        assert_eq!(d.totals().shuffle_bytes, 400);
    }

    #[test]
    fn cumulative_counter_differencing() {
        let mut d = Driver::new();
        d.history.push(job("a", 0, 10));
        d.history.push(job("b", 0, 25)); // +15 in job b
        let spec = ClusterSpec {
            workers: 1,
            distances_per_sec: 1.0,
            shuffle_bytes_per_sec: 1.0,
            per_record_secs: 0.0,
            job_startup_secs: 0.0,
        };
        // 10 + 15 = 25 distance-seconds total.
        let t = d.simulate(&spec, "distances", 1.0);
        assert!((t - 25.0).abs() < 1e-9);
    }

    #[test]
    fn dfs_is_shared() {
        let d = Driver::new();
        d.dfs().put("x", vec![1u8]).unwrap();
        assert!(d.dfs().exists("x"));
    }
}
