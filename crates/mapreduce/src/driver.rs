//! The driver program: the scheduler that executes dataflow plans.
//!
//! A MapReduce algorithm is usually a *pipeline* — the paper's LSH-DDP is
//! four jobs plus a centralized step. [`Driver`] is the master-node side of
//! that: it owns the [`Dfs`], executes [`Plan`]s stage by stage (recording
//! every stage's [`JobMetrics`] automatically), applies the cross-stage
//! optimizations the plan layer declares — co-partitioned shuffle elision
//! and map-stage fusion, see [`crate::plan`] — and reports pipeline-level
//! aggregates (total shuffle bytes, bytes saved by elision, total distance
//! computations) and cost-model runtimes.

use crate::cost::ClusterSpec;
use crate::counters::JobMetrics;
use crate::dfs::Dfs;
use crate::job::MapInput;
use crate::plan::{CheckpointCtx, ExecCtx, PartitionCache, Plan};
use std::sync::Arc;

/// Pipeline driver: plan scheduler + DFS handle + job history.
///
/// The retained-partition cache lives on the driver, not on individual
/// plans, so a co-partitioning contract can span plan segments — pipelines
/// routinely interleave driver-side assembly (e.g. broadcasting aggregated
/// ρ values) between two plans that read the same snapshot.
pub struct Driver {
    dfs: Arc<Dfs>,
    history: Vec<JobMetrics>,
    cache: PartitionCache,
    elision: bool,
    checkpoints: bool,
}

impl Driver {
    /// A fresh driver with an empty DFS, empty history, shuffle elision
    /// enabled, and stage checkpointing disabled.
    pub fn new() -> Self {
        Driver {
            dfs: Arc::new(Dfs::new()),
            history: Vec::new(),
            cache: PartitionCache::default(),
            elision: true,
            checkpoints: false,
        }
    }

    /// Enables or disables co-partitioned shuffle elision. Outputs are
    /// bit-identical either way; disabling exists for A/B measurement and
    /// paranoia.
    pub fn with_elision(mut self, on: bool) -> Self {
        self.elision = on;
        self
    }

    /// Whether the scheduler elides co-partitioned shuffles.
    pub fn elision(&self) -> bool {
        self.elision
    }

    /// Enables or disables stage-granular checkpointing.
    ///
    /// When on, every stage of [`Self::run_plan`] materializes its output
    /// rows into the driver's [`Dfs`] under `ckpt/<plan>/<stage>` right
    /// after completing, and a stage finding its own checkpoint already
    /// materialized (because a previous run of the same plan on this
    /// driver was killed mid-flight) skips execution and resumes from the
    /// stored rows. Checkpoints only survive *kills*: a plan that runs to
    /// completion clears its own, so re-running a finished plan recomputes
    /// from scratch. The bytes written are reported per stage as
    /// [`JobMetrics::checkpoint_bytes`].
    pub fn with_checkpoints(mut self, on: bool) -> Self {
        self.checkpoints = on;
        self
    }

    /// Whether stage checkpointing is on.
    pub fn checkpoints(&self) -> bool {
        self.checkpoints
    }

    /// Replaces the driver's DFS with a caller-supplied one. This is how
    /// a restarted driver sees the checkpoints a killed predecessor left
    /// behind: both are built over the same shared [`Dfs`].
    pub fn with_dfs(mut self, dfs: Arc<Dfs>) -> Self {
        self.dfs = dfs;
        self
    }

    /// The driver's distributed file system.
    pub fn dfs(&self) -> &Arc<Dfs> {
        &self.dfs
    }

    /// Executes a plan: runs every stage through the engine's phase
    /// machinery, auto-records each stage's [`JobMetrics`] into the
    /// history, and applies shuffle elision where stages declared
    /// co-partitioning contracts. Returns the final stage's output rows.
    pub fn run_plan<K, V>(&mut self, plan: Plan<K, V>) -> Vec<(K, V)>
    where
        K: Clone + 'static,
        V: Clone + 'static,
    {
        let Plan {
            name,
            source,
            source_id,
            stages,
            ..
        } = plan;
        let _plan_span = obsv::span!("plan", name.clone());
        let mut rows = source;
        let mut source = source_id;
        for (idx, stage) in stages.into_iter().enumerate() {
            let mut ctx = ExecCtx {
                elide: self.elision,
                cache: &mut self.cache,
                history: &mut self.history,
                checkpoint: self.checkpoints.then(|| CheckpointCtx {
                    dfs: Arc::clone(&self.dfs),
                    plan: name.clone(),
                    stage: idx,
                }),
            };
            let (next, next_source) = stage(&mut ctx, rows, source);
            rows = next;
            source = next_source;
        }
        // The plan completed: its checkpoints have served their purpose.
        // Clearing them here means checkpoints only ever survive a kill,
        // so a deliberate re-run of a finished plan starts fresh.
        if self.checkpoints {
            for path in self.dfs.list(&format!("ckpt/{name}/")) {
                self.dfs.remove(&path);
            }
        }
        let out = rows
            .downcast::<MapInput<K, V>>()
            .expect("plan output row type mismatch");
        match *out {
            MapInput::Owned(v) => v,
            MapInput::Shared(arc) => Arc::try_unwrap(arc).unwrap_or_else(|a| (*a).clone()),
        }
    }

    /// Consumes the driver, returning the recorded job history.
    pub fn into_history(self) -> Vec<JobMetrics> {
        self.history
    }

    /// Metrics of every job run so far, in order.
    pub fn history(&self) -> &[JobMetrics] {
        &self.history
    }

    /// Aggregate metrics over the whole pipeline.
    pub fn totals(&self) -> JobMetrics {
        JobMetrics::aggregate(self.history.iter())
    }

    /// Total shuffled bytes across all jobs — the paper's Figure 10(b)
    /// quantity.
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.history.iter().map(|m| m.shuffle_bytes).sum()
    }

    /// Total bytes that never crossed the shuffle boundary because the
    /// scheduler elided co-partitioned stages — the counterpart of
    /// [`Self::total_shuffle_bytes`] in Figure 10(b) accounting.
    pub fn total_shuffle_bytes_saved(&self) -> u64 {
        self.history.iter().map(|m| m.shuffle_bytes_saved).sum()
    }

    /// Sum of a user counter across all jobs (e.g. `"distances"`).
    pub fn total_user_counter(&self, name: &str) -> u64 {
        self.history
            .iter()
            .map(|m| m.user.get(name).copied().unwrap_or(0))
            .sum()
    }

    /// Simulated pipeline runtime on `spec`, charging the user counter
    /// `dist_counter` of each job as its distance work.
    ///
    /// Note: user counters are cumulative snapshots taken at each job's
    /// completion, so per-job increments are reconstructed by differencing
    /// consecutive snapshots.
    pub fn simulate(&self, spec: &ClusterSpec, dist_counter: &str, dims_factor: f64) -> f64 {
        let mut prev = 0u64;
        let mut total = 0.0;
        for m in &self.history {
            let snap = m.user.get(dist_counter).copied().unwrap_or(prev);
            let delta = snap.saturating_sub(prev);
            prev = snap.max(prev);
            total += spec.simulate_job(m, delta, dims_factor);
        }
        total
    }
}

impl Default for Driver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::time::Duration;

    fn job(name: &str, bytes: u64, dist_snapshot: u64) -> JobMetrics {
        let mut user = BTreeMap::new();
        user.insert("distances".to_string(), dist_snapshot);
        JobMetrics {
            name: name.into(),
            shuffle_bytes: bytes,
            wall_time: Duration::from_millis(1),
            user,
            ..Default::default()
        }
    }

    #[test]
    fn history_and_totals() {
        // `run_plan` is the only public recording path; these unit tests
        // of the history/aggregation mechanics seed it directly.
        let mut d = Driver::new();
        d.history.push(job("a", 100, 10));
        d.history.push(job("b", 300, 25));
        assert_eq!(d.history().len(), 2);
        assert_eq!(d.total_shuffle_bytes(), 400);
        assert_eq!(d.totals().shuffle_bytes, 400);
    }

    #[test]
    fn cumulative_counter_differencing() {
        let mut d = Driver::new();
        d.history.push(job("a", 0, 10));
        d.history.push(job("b", 0, 25)); // +15 in job b
        let spec = ClusterSpec {
            workers: 1,
            distances_per_sec: 1.0,
            shuffle_bytes_per_sec: 1.0,
            per_record_secs: 0.0,
            job_startup_secs: 0.0,
        };
        // 10 + 15 = 25 distance-seconds total.
        let t = d.simulate(&spec, "distances", 1.0);
        assert!((t - 25.0).abs() < 1e-9);
    }

    #[test]
    fn dfs_is_shared() {
        let d = Driver::new();
        d.dfs().put("x", vec![1u8]).unwrap();
        assert!(d.dfs().exists("x"));
    }
}
