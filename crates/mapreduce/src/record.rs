//! Serialized-size accounting for shuffled records.
//!
//! Hadoop measures shuffle cost in bytes of serialized intermediate data.
//! Our engine keeps records as native Rust values, so each key/value type
//! reports the size its natural wire encoding would have via
//! [`ShuffleSize`]. The estimates use fixed-width encodings (no varint
//! compression), matching the paper's own accounting (`e = 8` bytes per
//! double, §V-A).

/// FNV-1a 64-bit checksum over a record's serialized bytes.
///
/// This is the integrity check behind the framed wire codec
/// ([`crate::wire::encode_framed`]): corruption of any serialized record
/// in flight is detected before the record is handed to a reducer, the
/// same role Hadoop's IFile CRC plays for shuffle segments. FNV-1a is
/// byte-order-stable and dependency-free; it is an integrity check, not
/// a cryptographic one.
pub fn checksum64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Estimated serialized size of a value in bytes.
///
/// Implementations should return the size of a straightforward fixed-width
/// binary encoding: numeric types their width, sequences a 4-byte length
/// prefix plus element sizes.
pub trait ShuffleSize {
    /// Size of this value's serialized form in bytes.
    fn shuffle_bytes(&self) -> u64;
}

macro_rules! impl_fixed {
    ($($t:ty => $n:expr),* $(,)?) => {
        $(
            impl ShuffleSize for $t {
                #[inline]
                fn shuffle_bytes(&self) -> u64 {
                    $n
                }
            }
        )*
    };
}

impl_fixed!(
    u8 => 1, i8 => 1,
    u16 => 2, i16 => 2,
    u32 => 4, i32 => 4, f32 => 4,
    u64 => 8, i64 => 8, f64 => 8,
    usize => 8, isize => 8,
    bool => 1,
    () => 0,
);

impl ShuffleSize for String {
    #[inline]
    fn shuffle_bytes(&self) -> u64 {
        4 + self.len() as u64
    }
}

impl<T: ShuffleSize> ShuffleSize for Vec<T> {
    #[inline]
    fn shuffle_bytes(&self) -> u64 {
        4 + self.iter().map(ShuffleSize::shuffle_bytes).sum::<u64>()
    }
}

impl<T: ShuffleSize> ShuffleSize for Box<[T]> {
    #[inline]
    fn shuffle_bytes(&self) -> u64 {
        4 + self.iter().map(ShuffleSize::shuffle_bytes).sum::<u64>()
    }
}

impl<T: ShuffleSize> ShuffleSize for Option<T> {
    #[inline]
    fn shuffle_bytes(&self) -> u64 {
        1 + self.as_ref().map_or(0, ShuffleSize::shuffle_bytes)
    }
}

impl<A: ShuffleSize, B: ShuffleSize> ShuffleSize for (A, B) {
    #[inline]
    fn shuffle_bytes(&self) -> u64 {
        self.0.shuffle_bytes() + self.1.shuffle_bytes()
    }
}

impl<A: ShuffleSize, B: ShuffleSize, C: ShuffleSize> ShuffleSize for (A, B, C) {
    #[inline]
    fn shuffle_bytes(&self) -> u64 {
        self.0.shuffle_bytes() + self.1.shuffle_bytes() + self.2.shuffle_bytes()
    }
}

impl<A: ShuffleSize, B: ShuffleSize, C: ShuffleSize, D: ShuffleSize> ShuffleSize for (A, B, C, D) {
    #[inline]
    fn shuffle_bytes(&self) -> u64 {
        self.0.shuffle_bytes()
            + self.1.shuffle_bytes()
            + self.2.shuffle_bytes()
            + self.3.shuffle_bytes()
    }
}

impl<T: ShuffleSize + ?Sized> ShuffleSize for &T {
    #[inline]
    fn shuffle_bytes(&self) -> u64 {
        (**self).shuffle_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(0u8.shuffle_bytes(), 1);
        assert_eq!(0u32.shuffle_bytes(), 4);
        assert_eq!(0.0f64.shuffle_bytes(), 8);
        assert_eq!(true.shuffle_bytes(), 1);
        assert_eq!(().shuffle_bytes(), 0);
    }

    #[test]
    fn string_has_length_prefix() {
        assert_eq!(String::new().shuffle_bytes(), 4);
        assert_eq!("hello".to_string().shuffle_bytes(), 9);
    }

    #[test]
    fn vec_of_f64_matches_paper_accounting() {
        // A 57-dimensional BigCross point: 4 + 57*8 bytes.
        let coords = vec![0.0f64; 57];
        assert_eq!(coords.shuffle_bytes(), 4 + 57 * 8);
    }

    #[test]
    fn nested_and_tuple_sizes() {
        let v: Vec<Vec<u16>> = vec![vec![1, 2], vec![]];
        assert_eq!(v.shuffle_bytes(), 4 + (4 + 4) + 4);
        let t = (1u32, "ab".to_string(), 2.0f64);
        assert_eq!(t.shuffle_bytes(), 4 + 6 + 8);
    }

    #[test]
    fn option_sizes() {
        let some: Option<u64> = Some(7);
        let none: Option<u64> = None;
        assert_eq!(some.shuffle_bytes(), 9);
        assert_eq!(none.shuffle_bytes(), 1);
    }

    #[test]
    fn reference_delegates() {
        let s = "xy".to_string();
        let r: &String = &s;
        assert_eq!(ShuffleSize::shuffle_bytes(&r), s.shuffle_bytes());
    }

    #[test]
    fn checksum_known_vectors() {
        // FNV-1a 64 reference values.
        assert_eq!(checksum64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(checksum64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn checksum_detects_single_bit_flips() {
        let data = b"density peaks in mapreduce".to_vec();
        let base = checksum64(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(checksum64(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
