//! Injectable storage-fault shim for the durability tier.
//!
//! Every durable write path in the system — the ingest WAL, spill
//! segments, governed checkpoint spills, and model artifacts — performs
//! its file I/O through a [`FaultFs`] handle. With no fault plan armed
//! the handle is a thin passthrough over `std::fs` (bit-identical
//! output, one branch per op). With an [`IoFaultPlan`] armed, each
//! operation consults a deterministic per-op schedule (the same
//! splitmix64 per-mille style as [`crate::fault::ChaosPlan`]) that can:
//!
//! * return a **transient `EIO`** — absorbed by the shim's bounded
//!   retry-with-backoff policy (`io.retries` counter), surfacing only
//!   after [`MAX_ATTEMPTS`] consecutive failures (`io.give_ups`);
//! * return a **persistent `ENOSPC`** — never retried (retrying a full
//!   disk is pointless); callers see it via `raw_os_error() == 28` and
//!   may degrade (see the [`crate::driver::MemoryGovernor`] resident
//!   fallback);
//! * simulate a **power cut** (`crash`): the in-flight write is
//!   dropped, data written but never fsynced on the open handle is
//!   truncated away, and every subsequent op on the same `FaultFs`
//!   fails — the storage analogue of killing the process, so a harness
//!   can "restart" and verify recovery;
//! * simulate a **torn power cut** (`torn`): like `crash`, but a
//!   prefix of the in-flight write reaches the disk first — the
//!   classic torn tail every recovery path must truncate.
//!
//! Crash verdicts are detectable with [`is_crash`]; injected and real
//! ENOSPC alike with [`is_enospc`]. The `crash_at` field pins the power
//! cut to one specific op index, which is what lets the crash-
//! consistency drill *enumerate* every I/O operation of a workflow and
//! kill each one in turn (ALICE-style).
//!
//! ## Durability model
//!
//! A simulated power cut drops the unsynced suffix of the file the
//! faulted handle currently has open (tracked as `synced_len`, advanced
//! by `sync_data`/`sync_all`). Files already closed keep their contents
//! — the model assumes sync-on-close, which every durability path here
//! satisfies by fsyncing before handing out a handle or acknowledging a
//! write. Directory-entry loss (a created file vanishing because the
//! parent dir was never fsynced) is *not* simulated; the dir-fsync
//! calls are still routed through the shim so they participate in op
//! counting and can themselves fault.

use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Attempts per op before a transient fault is surfaced to the caller.
pub const MAX_ATTEMPTS: u32 = 4;

const EIO: i32 = 5;
const ENOSPC: i32 = 28;

/// Deterministic per-op fault schedule (per-mille rates, mirroring
/// [`crate::fault::ChaosPlan`]). All-zero = passthrough.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IoFaultPlan {
    /// Seed of every schedule below.
    pub seed: u64,
    /// Transient `EIO` rate per op *attempt* — hashed on `(op, attempt)`,
    /// so a retry of the same op can succeed.
    #[serde(default)]
    pub eio_per_mille: u16,
    /// Persistent `ENOSPC` rate per op — hashed on the op alone, so
    /// retries cannot help (the disk stays full).
    #[serde(default)]
    pub enospc_per_mille: u16,
    /// Clean power-cut rate per op: unsynced data is truncated away.
    #[serde(default)]
    pub crash_per_mille: u16,
    /// Torn power-cut rate per op: half the in-flight write lands first.
    #[serde(default)]
    pub torn_per_mille: u16,
    /// Pin a power cut to exactly this op index (the drill's crash-point
    /// enumerator). Flavor chosen by [`Self::crash_torn`].
    #[serde(default)]
    pub crash_at: Option<u64>,
    /// Whether [`Self::crash_at`] tears the in-flight write instead of
    /// cutting cleanly.
    #[serde(default)]
    pub crash_torn: bool,
}

impl IoFaultPlan {
    /// Whether this plan can ever inject anything.
    pub fn armed(&self) -> bool {
        self.eio_per_mille > 0
            || self.enospc_per_mille > 0
            || self.crash_per_mille > 0
            || self.torn_per_mille > 0
            || self.crash_at.is_some()
    }

    fn roll(&self, salt: u64, op: u64, attempt: u64, rate: u16) -> bool {
        rate > 0 && crate::fault::chaos_hash(self.seed ^ salt, op, attempt, 0) % 1000 < rate as u64
    }

    fn verdict(&self, op: u64, attempt: u32, kind: OpKind) -> Verdict {
        if self.crash_at == Some(op) {
            return Verdict::Crash {
                torn: self.crash_torn,
            };
        }
        // "torn"/"cras"/"nosp"/"eio " ASCII salts: one schedule per class.
        if self.roll(0x746f_726e, op, 0, self.torn_per_mille) {
            return Verdict::Crash { torn: true };
        }
        if self.roll(0x6372_6173, op, 0, self.crash_per_mille) {
            return Verdict::Crash { torn: false };
        }
        // A full disk fails allocations — writes, creates, renames —
        // never reads.
        if kind == OpKind::Write && self.roll(0x6e6f_7370, op, 0, self.enospc_per_mille) {
            return Verdict::Enospc;
        }
        if self.roll(0x6569_6f20, op, attempt as u64 + 1, self.eio_per_mille) {
            return Verdict::Eio;
        }
        Verdict::Ok
    }

    /// Parses a `key=value` spec, e.g.
    /// `seed=7,eio=200,enospc=5,crash=3,torn=3,crash-at=42,crash-torn`.
    pub fn parse(spec: &str) -> Result<IoFaultPlan, String> {
        let mut plan = IoFaultPlan::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, val) = match part.split_once('=') {
                Some((k, v)) => (k.trim(), Some(v.trim())),
                None => (part.trim(), None),
            };
            let num = |v: Option<&str>| -> Result<u64, String> {
                v.ok_or_else(|| format!("io fault plan: `{key}` needs a value"))?
                    .parse::<u64>()
                    .map_err(|_| format!("io fault plan: bad number in `{part}`"))
            };
            match key {
                "seed" => plan.seed = num(val)?,
                "eio" => plan.eio_per_mille = num(val)? as u16,
                "enospc" => plan.enospc_per_mille = num(val)? as u16,
                "crash" => plan.crash_per_mille = num(val)? as u16,
                "torn" => plan.torn_per_mille = num(val)? as u16,
                "crash-at" => plan.crash_at = Some(num(val)?),
                "crash-torn" => plan.crash_torn = true,
                other => return Err(format!("io fault plan: unknown key `{other}`")),
            }
        }
        Ok(plan)
    }
}

/// Whether an op allocates storage (subject to ENOSPC) or only reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Read,
    Write,
}

/// What the schedule decided for one op attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Ok,
    Eio,
    Enospc,
    Crash { torn: bool },
}

/// Gate outcome for one logical op, after the retry policy ran.
enum Gate {
    /// Execute the real operation.
    Proceed,
    /// Surface this error (injected EIO give-up or ENOSPC).
    Fail(io::Error),
    /// Power cut: apply the side effect, then fail all further ops.
    Crash { op: u64, torn: bool },
}

/// Payload of an injected power-cut error; detect with [`is_crash`].
#[derive(Debug)]
pub struct InjectedCrash {
    /// Global op index at which the simulated power cut fired
    /// (`u64::MAX` for ops attempted after the cut).
    pub op: u64,
}

impl std::fmt::Display for InjectedCrash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected storage crash (power cut at io op {})", self.op)
    }
}

impl std::error::Error for InjectedCrash {}

/// Whether `e` is a simulated power cut from a [`FaultFs`].
pub fn is_crash(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|r| r.is::<InjectedCrash>())
}

/// Whether `e` is ENOSPC — injected or real.
pub fn is_enospc(e: &io::Error) -> bool {
    e.raw_os_error() == Some(ENOSPC)
}

struct FsState {
    plan: Mutex<Option<IoFaultPlan>>,
    /// Fast-path gate: false = pure passthrough.
    armed: AtomicBool,
    ops: AtomicU64,
    crashed: AtomicBool,
    retries: AtomicU64,
    injected: AtomicU64,
    give_ups: AtomicU64,
}

/// A cloneable handle to one fault domain: every clone shares the op
/// counter, fault plan, and crashed flag. [`FaultFs::real`] (and the
/// process [`FaultFs::global`] until a plan is installed) is a pure
/// passthrough over `std::fs`.
#[derive(Clone)]
pub struct FaultFs {
    inner: Arc<FsState>,
}

impl Default for FaultFs {
    /// The process-global handle — so constructors that default their
    /// fs (`Wal::open`, `ClusterModel::save`, `Dfs`) pick up a plan
    /// installed by [`install_global_plan`] (the CLI's
    /// `--io-fault-plan`).
    fn default() -> Self {
        FaultFs::global().clone()
    }
}

/// Arms the process-global [`FaultFs`] with `plan`. Everything that
/// defaulted its fs (WAL, spill tier, model saves) starts faulting.
pub fn install_global_plan(plan: IoFaultPlan) {
    let fs = FaultFs::global();
    *fs.inner.plan.lock() = Some(plan);
    fs.inner.armed.store(plan.armed(), Ordering::Relaxed);
}

impl FaultFs {
    fn with_state(plan: Option<IoFaultPlan>) -> Self {
        let armed = plan.map(|p| p.armed()).unwrap_or(false);
        FaultFs {
            inner: Arc::new(FsState {
                plan: Mutex::new(plan),
                armed: AtomicBool::new(armed),
                ops: AtomicU64::new(0),
                crashed: AtomicBool::new(false),
                retries: AtomicU64::new(0),
                injected: AtomicU64::new(0),
                give_ups: AtomicU64::new(0),
            }),
        }
    }

    /// A passthrough handle that never faults.
    pub fn real() -> Self {
        FaultFs::with_state(None)
    }

    /// A handle driven by `plan`.
    pub fn with_plan(plan: IoFaultPlan) -> Self {
        FaultFs::with_state(Some(plan))
    }

    /// The process-global handle (passthrough until
    /// [`install_global_plan`]).
    pub fn global() -> &'static FaultFs {
        static GLOBAL: OnceLock<FaultFs> = OnceLock::new();
        GLOBAL.get_or_init(FaultFs::real)
    }

    /// Ops gated through this domain so far (only counted while armed).
    pub fn ops(&self) -> u64 {
        self.inner.ops.load(Ordering::Relaxed)
    }

    /// Whether a simulated power cut has fired: every further op fails.
    pub fn crashed(&self) -> bool {
        self.inner.crashed.load(Ordering::Relaxed)
    }

    /// Transient-fault retries absorbed so far.
    pub fn retries(&self) -> u64 {
        self.inner.retries.load(Ordering::Relaxed)
    }

    /// Faults injected so far (every class).
    pub fn injected_faults(&self) -> u64 {
        self.inner.injected.load(Ordering::Relaxed)
    }

    /// Ops that surfaced a fault to the caller after exhausting policy.
    pub fn give_ups(&self) -> u64 {
        self.inner.give_ups.load(Ordering::Relaxed)
    }

    fn armed(&self) -> bool {
        self.inner.armed.load(Ordering::Relaxed)
    }

    fn note_injected(&self) {
        self.inner.injected.fetch_add(1, Ordering::Relaxed);
        obsv::metrics::global().counter("io.injected_faults").inc(1);
    }

    /// Runs the retry policy for one logical op. The real operation has
    /// not happened yet when this returns — injected failures replace
    /// it, they don't follow it.
    fn gate(&self, kind: OpKind) -> Gate {
        if !self.armed() {
            return Gate::Proceed;
        }
        if self.crashed() {
            return Gate::Fail(io::Error::other(InjectedCrash { op: u64::MAX }));
        }
        let Some(plan) = *self.inner.plan.lock() else {
            return Gate::Proceed;
        };
        let op = self.inner.ops.fetch_add(1, Ordering::Relaxed);
        for attempt in 0..MAX_ATTEMPTS {
            match plan.verdict(op, attempt, kind) {
                Verdict::Ok => return Gate::Proceed,
                Verdict::Eio => {
                    self.note_injected();
                    if attempt + 1 == MAX_ATTEMPTS {
                        self.inner.give_ups.fetch_add(1, Ordering::Relaxed);
                        obsv::metrics::global().counter("io.give_ups").inc(1);
                        return Gate::Fail(io::Error::from_raw_os_error(EIO));
                    }
                    self.inner.retries.fetch_add(1, Ordering::Relaxed);
                    obsv::metrics::global().counter("io.retries").inc(1);
                    // Bounded backoff: 20/40/80 µs — models the policy
                    // without slowing fault-dense proptests.
                    std::thread::sleep(Duration::from_micros(20 << attempt.min(4)));
                }
                Verdict::Enospc => {
                    self.note_injected();
                    self.inner.give_ups.fetch_add(1, Ordering::Relaxed);
                    obsv::metrics::global().counter("io.give_ups").inc(1);
                    return Gate::Fail(io::Error::from_raw_os_error(ENOSPC));
                }
                Verdict::Crash { torn } => {
                    self.note_injected();
                    self.inner.crashed.store(true, Ordering::Relaxed);
                    return Gate::Crash { op, torn };
                }
            }
        }
        unreachable!("retry loop returns on every verdict")
    }

    /// Gates an op with no crash side effect (opens, renames, reads,
    /// dir syncs — a power cut before any of these simply means the op
    /// never happened).
    fn run_plain<T>(&self, kind: OpKind, mut work: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        match self.gate(kind) {
            Gate::Proceed => work(),
            Gate::Fail(e) => Err(e),
            Gate::Crash { op, .. } => Err(io::Error::other(InjectedCrash { op })),
        }
    }

    fn wrap(&self, file: File, path: &Path, len: u64) -> FaultFile {
        FaultFile {
            file,
            path: path.to_path_buf(),
            fs: self.clone(),
            len,
            synced_len: len,
        }
    }

    /// Creates a new file, failing if it exists (spill segments).
    pub fn create_new(&self, path: &Path) -> io::Result<FaultFile> {
        let file = self.run_plain(OpKind::Write, || {
            OpenOptions::new()
                .read(true)
                .write(true)
                .create_new(true)
                .open(path)
        })?;
        Ok(self.wrap(file, path, 0))
    }

    /// Creates (truncating) a file (model tmp artifacts).
    pub fn create(&self, path: &Path) -> io::Result<FaultFile> {
        let file = self.run_plain(OpKind::Write, || {
            OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)
        })?;
        Ok(self.wrap(file, path, 0))
    }

    /// Opens read+append, creating if absent (the WAL). Existing bytes
    /// are treated as already durable.
    pub fn open_append(&self, path: &Path) -> io::Result<FaultFile> {
        let file = self.run_plain(OpKind::Write, || {
            OpenOptions::new()
                .read(true)
                .create(true)
                .append(true)
                .open(path)
        })?;
        let len = file.metadata()?.len();
        Ok(self.wrap(file, path, len))
    }

    /// Reads a whole file (model load, recovery scans).
    pub fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.run_plain(OpKind::Read, || std::fs::read(path))
    }

    /// Renames `from` over `to`. A power cut here leaves `to` untouched
    /// — the atomic-save commit point.
    pub fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.run_plain(OpKind::Write, || std::fs::rename(from, to))
    }

    /// Fsyncs a directory so a create/rename/truncate of an entry in it
    /// is durable.
    pub fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        let dir = if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        };
        self.run_plain(OpKind::Write, || File::open(dir).and_then(|d| d.sync_all()))
    }
}

impl std::fmt::Debug for FaultFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultFs")
            .field("armed", &self.armed())
            .field("ops", &self.ops())
            .field("crashed", &self.crashed())
            .finish()
    }
}

/// A file handle whose operations flow through a [`FaultFs`]. Tracks
/// the last fsynced length so a simulated power cut can drop exactly
/// the unsynced suffix.
pub struct FaultFile {
    file: File,
    path: PathBuf,
    fs: FaultFs,
    len: u64,
    synced_len: u64,
}

impl FaultFile {
    /// The file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current logical length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Power-cut side effect: drop everything after the last fsync; a
    /// torn cut lets half of the in-flight write land first.
    fn power_cut(&mut self, torn: bool, in_flight: &[u8]) {
        let _ = self.file.set_len(self.synced_len);
        if torn && in_flight.len() >= 2 {
            let half = &in_flight[..in_flight.len() / 2];
            let _ = self.file.write_all_at(half, self.synced_len);
        }
        self.len = self.synced_len;
    }

    /// Appends `buf` at the end of the file.
    pub fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.fs.gate(OpKind::Write) {
            Gate::Proceed => {
                self.file.write_all(buf)?;
                self.len += buf.len() as u64;
                Ok(())
            }
            Gate::Fail(e) => Err(e),
            Gate::Crash { op, torn } => {
                self.power_cut(torn, buf);
                Err(io::Error::other(InjectedCrash { op }))
            }
        }
    }

    /// Fsyncs file data; on success the current length becomes the
    /// power-cut floor.
    pub fn sync_data(&mut self) -> io::Result<()> {
        match self.fs.gate(OpKind::Write) {
            Gate::Proceed => {
                self.file.sync_data()?;
                self.synced_len = self.len;
                Ok(())
            }
            Gate::Fail(e) => Err(e),
            Gate::Crash { op, .. } => {
                self.power_cut(false, &[]);
                Err(io::Error::other(InjectedCrash { op }))
            }
        }
    }

    /// Fsyncs data and metadata (size changes included).
    pub fn sync_all(&mut self) -> io::Result<()> {
        match self.fs.gate(OpKind::Write) {
            Gate::Proceed => {
                self.file.sync_all()?;
                self.synced_len = self.len;
                Ok(())
            }
            Gate::Fail(e) => Err(e),
            Gate::Crash { op, .. } => {
                self.power_cut(false, &[]);
                Err(io::Error::other(InjectedCrash { op }))
            }
        }
    }

    /// Truncates to `n` bytes (WAL torn-tail repair / retirement).
    pub fn set_len(&mut self, n: u64) -> io::Result<()> {
        let file = &self.file;
        self.fs.run_plain(OpKind::Write, || file.set_len(n))?;
        self.len = n;
        self.synced_len = self.synced_len.min(n);
        Ok(())
    }

    /// Positioned read of exactly `buf.len()` bytes at `offset`.
    pub fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        let file = &self.file;
        self.fs
            .run_plain(OpKind::Read, || file.read_exact_at(buf, offset))
    }

    /// Reads the whole file from the start (WAL replay). The cursor is
    /// left wherever the read ends; append-mode writes are unaffected.
    pub fn read_all(&mut self) -> io::Result<Vec<u8>> {
        let file = &mut self.file;
        self.fs.run_plain(OpKind::Read, || {
            let mut bytes = Vec::new();
            file.seek(SeekFrom::Start(0))?;
            file.read_to_end(&mut bytes)?;
            Ok(bytes)
        })
    }
}

impl std::fmt::Debug for FaultFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultFile")
            .field("path", &self.path)
            .field("len", &self.len)
            .field("synced_len", &self.synced_len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("io-shim-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::remove_file(&path).ok();
        path
    }

    #[test]
    fn passthrough_is_bit_identical_to_direct_io() {
        let path = tmp("pass.bin");
        let fs = FaultFs::real();
        let mut f = fs.create_new(&path).unwrap();
        f.write_all(b"hello ").unwrap();
        f.write_all(b"world").unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"hello world");
        assert_eq!(fs.ops(), 0, "unarmed shim must not even count ops");
        assert_eq!(fs.injected_faults(), 0);
    }

    #[test]
    fn transient_eio_is_absorbed_by_retry() {
        // eio=400: individual attempts fail often, but 4 attempts pass
        // with probability 1 - 0.4^4 ≈ 0.974 per op; over 50 ops some
        // retries certainly fire and most ops succeed.
        let fs = FaultFs::with_plan(IoFaultPlan {
            seed: 11,
            eio_per_mille: 400,
            ..Default::default()
        });
        let path = tmp("eio.bin");
        let mut ok = 0;
        if let Ok(mut f) = fs.create_new(&path) {
            for _ in 0..50 {
                if f.write_all(b"x").is_ok() {
                    ok += 1;
                }
            }
        }
        assert!(ok > 30, "retries should absorb most transient faults");
        assert!(fs.retries() > 0, "the schedule should have injected");
    }

    #[test]
    fn enospc_is_not_retried() {
        let fs = FaultFs::with_plan(IoFaultPlan {
            seed: 3,
            enospc_per_mille: 1000,
            ..Default::default()
        });
        let path = tmp("nospc.bin");
        let e = fs.create_new(&path).unwrap_err();
        assert!(is_enospc(&e));
        assert!(!is_crash(&e));
        assert_eq!(fs.retries(), 0);
        assert_eq!(fs.give_ups(), 1);
    }

    #[test]
    fn crash_at_drops_unsynced_data_and_poisons_the_domain() {
        let path = tmp("crash.bin");
        // Ops: 0=create 1=write(a) 2=sync 3=write(b) 4=write(c); crash
        // at op 4 must keep "aaaa" (synced) and drop "bbbb" (unsynced).
        let fs = FaultFs::with_plan(IoFaultPlan {
            seed: 0,
            crash_at: Some(4),
            ..Default::default()
        });
        let mut f = fs.create_new(&path).unwrap();
        f.write_all(b"aaaa").unwrap();
        f.sync_data().unwrap();
        f.write_all(b"bbbb").unwrap();
        let e = f.write_all(b"cccc").unwrap_err();
        assert!(is_crash(&e));
        assert!(fs.crashed());
        assert_eq!(std::fs::read(&path).unwrap(), b"aaaa");
        // The domain is dead: further ops fail without touching disk.
        assert!(is_crash(&f.write_all(b"dddd").unwrap_err()));
        assert!(is_crash(&fs.read(&path).unwrap_err()));
        assert_eq!(std::fs::read(&path).unwrap(), b"aaaa");
    }

    #[test]
    fn torn_crash_leaves_half_the_inflight_write() {
        let path = tmp("torn.bin");
        let fs = FaultFs::with_plan(IoFaultPlan {
            seed: 0,
            crash_at: Some(2),
            crash_torn: true,
            ..Default::default()
        });
        let mut f = fs.create_new(&path).unwrap();
        f.write_all(b"aaaa").unwrap(); // op 1, unsynced
        let e = f.write_all(b"bbbb").unwrap_err(); // op 2: torn cut
        assert!(is_crash(&e));
        // Unsynced "aaaa" is gone; half of "bbbb" landed at offset 0.
        assert_eq!(std::fs::read(&path).unwrap(), b"bb");
    }

    #[test]
    fn plan_spec_round_trip() {
        let plan = IoFaultPlan::parse("seed=7,eio=200,enospc=5,crash-at=42,crash-torn").unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.eio_per_mille, 200);
        assert_eq!(plan.enospc_per_mille, 5);
        assert_eq!(plan.crash_at, Some(42));
        assert!(plan.crash_torn);
        assert!(plan.armed());
        assert!(IoFaultPlan::parse("bogus=1").is_err());
        assert!(!IoFaultPlan::parse("seed=9").unwrap().armed());
    }

    #[test]
    fn schedule_is_deterministic() {
        let plan = IoFaultPlan {
            seed: 42,
            eio_per_mille: 100,
            enospc_per_mille: 10,
            crash_per_mille: 5,
            ..Default::default()
        };
        for op in 0..200 {
            assert_eq!(
                plan.verdict(op, 0, OpKind::Write),
                plan.verdict(op, 0, OpKind::Write)
            );
            assert_eq!(
                plan.verdict(op, 0, OpKind::Read),
                plan.verdict(op, 0, OpKind::Read)
            );
            assert_ne!(
                plan.verdict(op, 0, OpKind::Read),
                Verdict::Enospc,
                "reads are never short on disk space"
            );
        }
    }
}
