//! Typed dataflow plans: declarative multi-stage pipelines with stage
//! fusion and co-partitioned shuffle elision.
//!
//! A [`Plan`] is a linear sequence of [`Stage`] nodes, each wrapping a
//! mapper, reducer, optional combiner and partitioner together with the
//! stage's declared contracts. Pipelines *describe* their dataflow with
//! the builder here and hand the plan to [`Driver::run_plan`], which is
//! the scheduler: it executes the stages through the same phase machinery
//! as [`JobBuilder::run`], records every stage's [`JobMetrics`]
//! automatically, and applies two cross-stage optimizations the
//! hand-chained `JobBuilder` style cannot express:
//!
//! * **Stage fusion.** Adjacent map-only stages ([`PlanBuilder::map_stage`])
//!   are fused at plan-build time into a single [`MapChain`] mapper, so the
//!   fused stage makes one pass over its input — each record flows through
//!   the whole chain (and the downstream stage's map-side combiner) without
//!   materializing any intermediate stage output.
//!
//! * **Co-partitioned shuffle elision.** Two stages that declare the same
//!   [`Stage::co_partitioned`] token promise they apply the *same
//!   deterministic mapper and partitioner to the same input rows* (the
//!   paper's LSH-DDP pipeline does exactly this: the ρ-local and δ-local
//!   jobs both re-partition the identical point snapshot by the identical
//!   LSH layout). The scheduler retains the first stage's post-shuffle
//!   partitions and feeds them straight into the later stage's reduce,
//!   skipping its map *and* shuffle entirely. The bytes that did not cross
//!   the (simulated) network are reported as
//!   [`JobMetrics::shuffle_bytes_saved`], keeping the paper's Figure 10(b)
//!   accounting exact. Because the retained buckets are byte-for-byte what
//!   the elided stage's own map+shuffle would have produced, outputs are
//!   bit-identical with elision on or off.
//!
//! A [`Snapshot`] is the third leg: one immutable, `Arc`-shared input
//! materialization that any number of plans (and stages) read without
//! copying it up front — records are cloned lazily inside the parallel map
//! tasks.
//!
//! [`Driver::run_plan`]: crate::driver::Driver::run_plan
//! [`JobBuilder::run`]: crate::job::JobBuilder::run

use crate::counters::{Counters, JobMetrics};
use crate::dfs::Dfs;
use crate::driver::MemoryGovernor;
use crate::job::{HashPartitioner, JobBuilder, JobConfig, MapInput, Partitioner, ReduceBucket};
use crate::record::ShuffleSize;
use crate::spill::SpilledRows;
use crate::task::{Combiner, Emitter, Mapper, MrKey, MrValue, Reducer};
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic ids identifying "the same input rows" across plans: a
/// [`Snapshot`] keeps its id for life, every other row set gets a fresh
/// one, so a co-partitioning contract can verify that producer and
/// consumer really read the same input.
static NEXT_SOURCE: AtomicU64 = AtomicU64::new(1);

fn fresh_source_id() -> u64 {
    NEXT_SOURCE.fetch_add(1, Ordering::Relaxed)
}

/// Where a snapshot's rows actually live: resident in memory, or parked
/// in disk spill segments and streamed back per map-task chunk.
enum SnapRows<K, V> {
    Resident(Arc<Vec<(K, V)>>),
    Spilled(Arc<SpilledRows<K, V>>),
}

impl<K, V> Clone for SnapRows<K, V> {
    fn clone(&self) -> Self {
        match self {
            SnapRows::Resident(a) => SnapRows::Resident(Arc::clone(a)),
            SnapRows::Spilled(s) => SnapRows::Spilled(Arc::clone(s)),
        }
    }
}

/// An immutable input materialization shared by every stage and plan of a
/// pipeline. Cloning a `Snapshot` clones an `Arc`, not the rows; map tasks
/// clone only the records of their own chunk, in parallel.
///
/// A snapshot is usually memory-resident ([`Snapshot::new`]) but can also
/// wrap a [`SpilledRows`] handle ([`Snapshot::from_spilled`]): the row set
/// then lives in disk segments and every stage reading it decodes only its
/// own map-task chunks — the input never needs to be resident at once.
pub struct Snapshot<K, V> {
    rows: SnapRows<K, V>,
    id: u64,
}

impl<K, V> Clone for Snapshot<K, V> {
    fn clone(&self) -> Self {
        Snapshot {
            rows: self.rows.clone(),
            id: self.id,
        }
    }
}

impl<K, V> Snapshot<K, V> {
    /// Wraps one materialized row set for sharing.
    pub fn new(rows: Vec<(K, V)>) -> Self {
        Snapshot {
            rows: SnapRows::Resident(Arc::new(rows)),
            id: fresh_source_id(),
        }
    }

    /// Wraps a spilled row set: stages stream their chunks from disk
    /// instead of reading resident memory.
    pub fn from_spilled(rows: SpilledRows<K, V>) -> Self {
        Snapshot {
            rows: SnapRows::Spilled(Arc::new(rows)),
            id: fresh_source_id(),
        }
    }

    /// The shared rows. Panics for a spilled snapshot — its rows are not
    /// resident; use [`Snapshot::len`] and plan execution instead.
    pub fn rows(&self) -> &[(K, V)] {
        match &self.rows {
            SnapRows::Resident(a) => a,
            SnapRows::Spilled(_) => {
                panic!("Snapshot::rows on a spilled snapshot: rows are not resident")
            }
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.rows {
            SnapRows::Resident(a) => a.len(),
            SnapRows::Spilled(s) => s.len(),
        }
    }

    /// Whether the snapshot holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the rows live in the disk spill tier.
    pub fn is_spilled(&self) -> bool {
        matches!(self.rows, SnapRows::Spilled(_))
    }
}

/// Two mappers fused into one pass: `second` consumes `first`'s emissions
/// record by record, so the first stage's full output is never
/// materialized. Built by [`PlanBuilder::map_stage`]; usable directly with
/// [`JobBuilder`] too.
pub struct MapChain<A, B> {
    first: A,
    second: B,
}

impl<A, B> MapChain<A, B>
where
    A: Mapper,
    B: Mapper<InKey = A::OutKey, InValue = A::OutValue>,
{
    /// Chains `first` then `second`.
    pub fn new(first: A, second: B) -> Self {
        MapChain { first, second }
    }
}

impl<A, B> Mapper for MapChain<A, B>
where
    A: Mapper,
    B: Mapper<InKey = A::OutKey, InValue = A::OutValue>,
{
    type InKey = A::InKey;
    type InValue = A::InValue;
    type OutKey = B::OutKey;
    type OutValue = B::OutValue;

    fn map(&self, key: A::InKey, value: A::InValue, out: &mut Emitter<B::OutKey, B::OutValue>) {
        let mut mid = Emitter::new();
        self.first.map(key, value, &mut mid);
        for (k, v) in mid.into_records() {
            self.second.map(k, v, out);
        }
    }
}

/// The no-op mapper a reducer-only stage runs when no map-only stages
/// precede it — the "aggregate" jobs of the DDP pipelines.
pub struct IdentityMap<K, V>(PhantomData<fn() -> (K, V)>);

impl<K, V> IdentityMap<K, V> {
    /// A fresh identity mapper.
    pub fn new() -> Self {
        IdentityMap(PhantomData)
    }
}

impl<K, V> Default for IdentityMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: MrKey, V: MrValue> Mapper for IdentityMap<K, V> {
    type InKey = K;
    type InValue = V;
    type OutKey = K;
    type OutValue = V;

    fn map(&self, key: K, value: V, out: &mut Emitter<K, V>) {
        out.emit(key, value);
    }
}

/// A pending map-only chain accumulated by [`PlanBuilder::map_stage`],
/// waiting to be fused into the next full stage.
pub struct Pending<A>(A);

/// Build-time fusion: how the pending map-only chain (`Self`) absorbs the
/// next stage's mapper `M`, yielding the mapper the stage actually runs.
/// `K`/`V` are the row types entering the chain.
pub trait FusePending<K, V, M: Mapper>: Sized {
    /// The fused mapper: consumes `(K, V)` rows, produces `M`'s output.
    type Fused: Mapper<InKey = K, InValue = V, OutKey = M::OutKey, OutValue = M::OutValue>;

    /// Fuses the chain with `next`.
    fn fuse(self, next: M) -> Self::Fused;
}

impl<K, V, M> FusePending<K, V, M> for ()
where
    M: Mapper<InKey = K, InValue = V>,
{
    type Fused = M;

    fn fuse(self, next: M) -> M {
        next
    }
}

impl<K, V, A, M> FusePending<K, V, M> for Pending<A>
where
    A: Mapper<InKey = K, InValue = V>,
    M: Mapper<InKey = A::OutKey, InValue = A::OutValue>,
{
    type Fused = MapChain<A, M>;

    fn fuse(self, next: M) -> MapChain<A, M> {
        MapChain::new(self.0, next)
    }
}

/// How the pending chain becomes a stage's mapper when the next stage is
/// reducer-only ([`PlanBuilder::reduce_stage`]): the chain itself if one
/// is pending, the zero-cost [`IdentityMap`] otherwise.
pub trait PendingMapper<K, V>: Sized {
    /// The mapper the reducer-only stage runs.
    type M: Mapper<InKey = K, InValue = V>;

    /// Consumes the pending state.
    fn into_mapper(self) -> Self::M;
}

impl<K: MrKey, V: MrValue> PendingMapper<K, V> for () {
    type M = IdentityMap<K, V>;

    fn into_mapper(self) -> IdentityMap<K, V> {
        IdentityMap::new()
    }
}

impl<A: Mapper> PendingMapper<A::InKey, A::InValue> for Pending<A> {
    type M = A;

    fn into_mapper(self) -> A {
        self.0
    }
}

/// One full dataflow node: a mapper and reducer plus the optional
/// combiner, partitioner, parallelism config, user counters, declared
/// partitioning contract, and a metrics-finalize hook.
pub struct Stage<M, R>
where
    M: Mapper,
    R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
{
    name: String,
    mapper: M,
    reducer: R,
    combiner: Option<Box<dyn Combiner<Key = M::OutKey, Value = M::OutValue> + Send + Sync>>,
    partitioner: Box<dyn Partitioner<M::OutKey>>,
    config: JobConfig,
    counters: Option<Counters>,
    contract: Option<String>,
    finalize: Option<FinalizeHook>,
}

impl<M, R> Stage<M, R>
where
    M: Mapper,
    R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
{
    /// A stage named `name` running `mapper` then `reducer`, with the
    /// default hash partitioner and default parallelism.
    pub fn new(name: impl Into<String>, mapper: M, reducer: R) -> Self {
        Stage {
            name: name.into(),
            mapper,
            reducer,
            combiner: None,
            partitioner: Box::new(HashPartitioner),
            config: JobConfig::default(),
            counters: None,
            contract: None,
            finalize: None,
        }
    }

    /// Installs a map-side combiner. The engine always runs combiners
    /// inside the map tasks, so on a fused stage the whole
    /// map-chain → combine pass happens in one sweep per task.
    pub fn combiner<C>(mut self, combiner: C) -> Self
    where
        C: Combiner<Key = M::OutKey, Value = M::OutValue> + Send + Sync + 'static,
    {
        self.combiner = Some(Box::new(combiner));
        self
    }

    /// Replaces the default hash partitioner.
    pub fn partitioner<P>(mut self, partitioner: P) -> Self
    where
        P: Partitioner<M::OutKey> + 'static,
    {
        self.partitioner = Box::new(partitioner);
        self
    }

    /// Sets the parallelism config.
    pub fn config(mut self, config: JobConfig) -> Self {
        assert!(
            config.map_tasks > 0 && config.reduce_tasks > 0,
            "task counts must be positive"
        );
        self.config = config;
        self
    }

    /// Attaches user counters whose snapshot is included in the stage's
    /// metrics.
    pub fn counters(mut self, counters: Counters) -> Self {
        self.counters = Some(counters);
        self
    }

    /// Declares this stage's map output partitioning under `token`.
    ///
    /// **Contract:** every stage declaring the same token applies the same
    /// deterministic mapper and partitioner, with the same task counts, to
    /// the same input rows. The scheduler retains the first such stage's
    /// post-shuffle partitions and elides the map+shuffle of later ones
    /// (reporting the skipped volume as `shuffle_bytes_saved`). The
    /// declared-type parts of the contract — key/value types, task counts,
    /// partitioner identity, input source — are verified at run time and a
    /// mismatch falls back to full execution; sameness of the mapper is
    /// the caller's promise.
    pub fn co_partitioned(mut self, token: impl Into<String>) -> Self {
        self.contract = Some(token.into());
        self
    }

    /// Runs `f` on the stage's recorded metrics right before the scheduler
    /// appends them to the driver history — the hook for pipeline-level
    /// bookkeeping such as cumulative distance-counter snapshots.
    pub fn finalize(mut self, f: impl FnOnce(&mut JobMetrics) + 'static) -> Self {
        self.finalize = Some(Box::new(f));
        self
    }
}

/// A reducer-only dataflow node: its mapper is whatever map-only chain
/// precedes it in the plan (or the identity). This is the natural shape of
/// the DDP "aggregate" stages — and of any stage fused behind
/// [`PlanBuilder::map_stage`] without paying an identity hop per record.
pub struct ReduceStage<R: Reducer> {
    name: String,
    reducer: R,
    combiner: Option<Box<dyn Combiner<Key = R::InKey, Value = R::InValue> + Send + Sync>>,
    partitioner: Box<dyn Partitioner<R::InKey>>,
    config: JobConfig,
    counters: Option<Counters>,
    contract: Option<String>,
    finalize: Option<FinalizeHook>,
}

impl<R: Reducer> ReduceStage<R> {
    /// A reducer-only stage named `name`.
    pub fn new(name: impl Into<String>, reducer: R) -> Self {
        ReduceStage {
            name: name.into(),
            reducer,
            combiner: None,
            partitioner: Box::new(HashPartitioner),
            config: JobConfig::default(),
            counters: None,
            contract: None,
            finalize: None,
        }
    }

    /// Installs a map-side combiner (see [`Stage::combiner`]).
    pub fn combiner<C>(mut self, combiner: C) -> Self
    where
        C: Combiner<Key = R::InKey, Value = R::InValue> + Send + Sync + 'static,
    {
        self.combiner = Some(Box::new(combiner));
        self
    }

    /// Replaces the default hash partitioner.
    pub fn partitioner<P>(mut self, partitioner: P) -> Self
    where
        P: Partitioner<R::InKey> + 'static,
    {
        self.partitioner = Box::new(partitioner);
        self
    }

    /// Sets the parallelism config.
    pub fn config(mut self, config: JobConfig) -> Self {
        assert!(
            config.map_tasks > 0 && config.reduce_tasks > 0,
            "task counts must be positive"
        );
        self.config = config;
        self
    }

    /// Attaches user counters (see [`Stage::counters`]).
    pub fn counters(mut self, counters: Counters) -> Self {
        self.counters = Some(counters);
        self
    }

    /// Declares the stage's partitioning contract (see
    /// [`Stage::co_partitioned`]).
    pub fn co_partitioned(mut self, token: impl Into<String>) -> Self {
        self.contract = Some(token.into());
        self
    }

    /// Metrics-finalize hook (see [`Stage::finalize`]).
    pub fn finalize(mut self, f: impl FnOnce(&mut JobMetrics) + 'static) -> Self {
        self.finalize = Some(Box::new(f));
        self
    }
}

/// Boxed rows flowing between erased stages: a `MapInput<K, V>` behind
/// `dyn Any`. The typed builder guarantees every downcast succeeds.
type Rows = Box<dyn Any>;

/// Metrics hook run right before a stage's metrics are recorded.
type FinalizeHook = Box<dyn FnOnce(&mut JobMetrics)>;

/// Retained post-shuffle buckets plus the shuffle volume they represent.
type TakenBuckets<K, V> = (Vec<ReduceBucket<K, V>>, u64);

/// One type-erased, ready-to-run stage.
type StageRun = Box<dyn FnOnce(&mut ExecCtx<'_>, Rows, u64) -> (Rows, u64)>;

/// What the scheduler hands each stage: the elision switch, the retained
/// partition cache, the metrics history to append to, (when stage
/// checkpointing is on) where to materialize this stage's output, and
/// (when a memory budget is set) the governor enforcing it.
pub(crate) struct ExecCtx<'a> {
    pub(crate) elide: bool,
    pub(crate) cache: &'a mut PartitionCache,
    pub(crate) history: &'a mut Vec<JobMetrics>,
    pub(crate) checkpoint: Option<CheckpointCtx>,
    pub(crate) governor: Option<Arc<MemoryGovernor>>,
}

/// Where a stage materializes its output when checkpointing is enabled:
/// the driver's DFS, under `ckpt/<plan>/<stage index>`.
pub(crate) struct CheckpointCtx {
    pub(crate) dfs: Arc<Dfs>,
    pub(crate) plan: String,
    pub(crate) stage: usize,
}

impl CheckpointCtx {
    fn path(&self) -> String {
        format!("ckpt/{}/{}", self.plan, self.stage)
    }
}

/// A stage's checkpointed output rows, stored as one DFS record so the
/// key/value types only need `Send + Sync + Clone`, not per-type
/// [`ShuffleSize`] impls. The reported size is a `size_of`-based estimate —
/// good enough for recovery-overhead accounting.
///
/// The rows are `Arc`-shared with the stage's own output: checkpointing a
/// stage does not double its peak footprint, the DFS record and the rows
/// flowing to the next stage are one allocation.
struct CheckpointRows<K, V> {
    rows: Arc<Vec<(K, V)>>,
}

impl<K, V> ShuffleSize for CheckpointRows<K, V> {
    fn shuffle_bytes(&self) -> u64 {
        (self.rows.len() * std::mem::size_of::<(K, V)>()) as u64
    }
}

/// The verified half of a co-partitioning contract: intermediate key/value
/// types, task counts, partitioner identity, and the identity of the input
/// rows the map ran over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ContractKey {
    kv: (TypeId, TypeId),
    map_tasks: usize,
    reduce_tasks: usize,
    partitioner: &'static str,
    source: u64,
}

struct CacheEntry {
    buckets: Box<dyn Any>,
    key: ContractKey,
    shuffle_bytes: u64,
}

/// Retained post-shuffle partitions, keyed by contract token. Owned by the
/// driver so a contract can span plans (pipelines interleave driver-side
/// broadcast assembly between plan segments). An entry is consumed by its
/// first eligible consumer.
#[derive(Default)]
pub(crate) struct PartitionCache {
    entries: HashMap<String, CacheEntry>,
}

impl PartitionCache {
    fn take<K: 'static, V: 'static>(
        &mut self,
        token: &str,
        key: &ContractKey,
    ) -> Option<TakenBuckets<K, V>> {
        if self.entries.get(token)?.key != *key {
            return None;
        }
        let entry = self.entries.remove(token).expect("entry checked above");
        let buckets = entry
            .buckets
            .downcast::<Vec<ReduceBucket<K, V>>>()
            .expect("bucket type verified by ContractKey");
        Some((*buckets, entry.shuffle_bytes))
    }

    fn retain<K: 'static, V: 'static>(
        &mut self,
        token: String,
        key: ContractKey,
        buckets: Vec<ReduceBucket<K, V>>,
        shuffle_bytes: u64,
    ) {
        self.entries.insert(
            token,
            CacheEntry {
                buckets: Box::new(buckets),
                key,
                shuffle_bytes,
            },
        );
    }
}

/// A built, ready-to-execute dataflow plan producing `(K, V)` rows. Hand
/// it to [`Driver::run_plan`](crate::driver::Driver::run_plan).
pub struct Plan<K, V> {
    pub(crate) name: String,
    pub(crate) source: Rows,
    pub(crate) source_id: u64,
    pub(crate) stages: Vec<StageRun>,
    pub(crate) _out: PhantomData<fn() -> (K, V)>,
}

/// Starts describing a plan named `name`; pick the input with
/// [`PlanInit::rows`] or [`PlanInit::snapshot`].
pub fn plan(name: impl Into<String>) -> PlanInit {
    PlanInit { name: name.into() }
}

/// A named plan waiting for its input source.
pub struct PlanInit {
    name: String,
}

impl PlanInit {
    /// Feeds the plan an owned row set.
    pub fn rows<K: 'static, V: 'static>(self, rows: Vec<(K, V)>) -> PlanBuilder<K, V, ()> {
        PlanBuilder {
            name: self.name,
            source: Box::new(MapInput::Owned(rows)),
            source_id: fresh_source_id(),
            stages: Vec::new(),
            pending: (),
            _rows: PhantomData,
        }
    }

    /// Feeds the plan a shared snapshot — many plans can read the same
    /// materialization, and co-partitioning contracts recognize it as the
    /// same source across plans.
    pub fn snapshot<K: 'static, V: 'static>(self, snap: &Snapshot<K, V>) -> PlanBuilder<K, V, ()> {
        let source: Rows = match &snap.rows {
            SnapRows::Resident(a) => Box::new(MapInput::Shared(Arc::clone(a))),
            SnapRows::Spilled(s) => Box::new(MapInput::Spilled(Arc::clone(s))),
        };
        PlanBuilder {
            name: self.name,
            source,
            source_id: snap.id,
            stages: Vec::new(),
            pending: (),
            _rows: PhantomData,
        }
    }
}

/// Typed plan builder. `K`/`V` are the row types entering the pending
/// map-only chain `P` (`()` when nothing is pending — then they are simply
/// the current row types). The types thread through every `stage` call,
/// so a mis-chained plan is a compile error, not a runtime surprise.
pub struct PlanBuilder<K, V, P> {
    name: String,
    source: Rows,
    source_id: u64,
    stages: Vec<StageRun>,
    pending: P,
    _rows: PhantomData<fn() -> (K, V)>,
}

impl<K, V, P> PlanBuilder<K, V, P> {
    /// Appends a map-only stage. It does not run on its own: the scheduler
    /// fuses it (and any further map-only stages) into the next full stage,
    /// which then makes a single pass doing chain → combine → partition
    /// per map task.
    pub fn map_stage<M>(self, mapper: M) -> PlanBuilder<K, V, Pending<P::Fused>>
    where
        M: Mapper,
        P: FusePending<K, V, M>,
    {
        PlanBuilder {
            name: self.name,
            source: self.source,
            source_id: self.source_id,
            stages: self.stages,
            pending: Pending(self.pending.fuse(mapper)),
            _rows: PhantomData,
        }
    }

    /// Appends a full map+reduce stage, fusing any pending map-only chain
    /// in front of its mapper.
    pub fn stage<M, R>(mut self, stage: Stage<M, R>) -> PlanBuilder<R::OutKey, R::OutValue, ()>
    where
        M: Mapper + 'static,
        R: Reducer<InKey = M::OutKey, InValue = M::OutValue> + 'static,
        P: FusePending<K, V, M>,
        P::Fused: 'static,
        K: Clone + Send + Sync + 'static,
        V: Clone + Send + Sync + 'static,
        M::OutKey: 'static,
        M::OutValue: Clone + 'static,
        R::OutKey: Clone + Send + Sync + 'static,
        R::OutValue: Clone + Send + Sync + 'static,
    {
        let fused = self.pending.fuse(stage.mapper);
        push_stage::<P::Fused, R>(
            &mut self.stages,
            stage.name,
            fused,
            stage.reducer,
            stage.combiner,
            stage.partitioner,
            stage.config,
            stage.counters,
            stage.contract,
            stage.finalize,
        );
        PlanBuilder {
            name: self.name,
            source: self.source,
            source_id: self.source_id,
            stages: self.stages,
            pending: (),
            _rows: PhantomData,
        }
    }

    /// Appends a reducer-only stage: the pending map-only chain (or the
    /// identity) becomes its mapper directly — no per-record identity hop.
    pub fn reduce_stage<R>(
        mut self,
        stage: ReduceStage<R>,
    ) -> PlanBuilder<R::OutKey, R::OutValue, ()>
    where
        R: Reducer + 'static,
        P: PendingMapper<K, V>,
        P::M: Mapper<OutKey = R::InKey, OutValue = R::InValue> + 'static,
        K: Clone + Send + Sync + 'static,
        V: Clone + Send + Sync + 'static,
        R::InKey: 'static,
        R::InValue: Clone + 'static,
        R::OutKey: Clone + Send + Sync + 'static,
        R::OutValue: Clone + Send + Sync + 'static,
    {
        let mapper = self.pending.into_mapper();
        push_stage::<P::M, R>(
            &mut self.stages,
            stage.name,
            mapper,
            stage.reducer,
            stage.combiner,
            stage.partitioner,
            stage.config,
            stage.counters,
            stage.contract,
            stage.finalize,
        );
        PlanBuilder {
            name: self.name,
            source: self.source,
            source_id: self.source_id,
            stages: self.stages,
            pending: (),
            _rows: PhantomData,
        }
    }
}

impl<K: 'static, V: 'static> PlanBuilder<K, V, ()> {
    /// Finishes the plan. Only available with no pending map-only stage —
    /// a trailing `map_stage` has no reducer to fuse into, which this
    /// turns into a compile error.
    pub fn build(self) -> Plan<K, V> {
        Plan {
            name: self.name,
            source: self.source,
            source_id: self.source_id,
            stages: self.stages,
            _out: PhantomData,
        }
    }
}

/// Erases one configured stage into a [`StageRun`] closure.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn push_stage<M, R>(
    stages: &mut Vec<StageRun>,
    name: String,
    mapper: M,
    reducer: R,
    combiner: Option<Box<dyn Combiner<Key = M::OutKey, Value = M::OutValue> + Send + Sync>>,
    partitioner: Box<dyn Partitioner<M::OutKey>>,
    config: JobConfig,
    counters: Option<Counters>,
    contract: Option<String>,
    finalize: Option<FinalizeHook>,
) where
    M: Mapper + 'static,
    M::InKey: Clone + Sync + 'static,
    M::InValue: Clone + Sync + 'static,
    M::OutKey: 'static,
    M::OutValue: Clone + 'static,
    R: Reducer<InKey = M::OutKey, InValue = M::OutValue> + 'static,
    R::OutKey: Clone + Send + Sync + 'static,
    R::OutValue: Clone + Send + Sync + 'static,
{
    stages.push(Box::new(move |ctx, rows, source| {
        // Resume path: a materialized checkpoint for this stage means a
        // previous (killed) run already completed it. Skip execution
        // entirely and continue from the stored output; downstream
        // co-partitioning contracts see a fresh source id and fall back
        // to full execution, which keeps them correct.
        if let Some(ck) = ctx.checkpoint.as_ref() {
            if let Ok(stored) = ck
                .dfs
                .get::<CheckpointRows<R::OutKey, R::OutValue>>(&ck.path())
            {
                let mut metrics = JobMetrics {
                    name: name.clone(),
                    ..Default::default()
                };
                metrics.user.insert("resumed_from_checkpoint".into(), 1);
                ctx.history.push(metrics);
                // Share the checkpointed rows instead of copying them: the
                // next stage's map tasks clone only their own chunks.
                let out = Arc::clone(&stored[0].rows);
                return (Box::new(MapInput::Shared(out)) as Rows, fresh_source_id());
            }
        }
        let input = *rows
            .downcast::<MapInput<M::InKey, M::InValue>>()
            .unwrap_or_else(|_| panic!("plan stage '{name}': input row type mismatch"));
        let mut builder = JobBuilder::new(name, mapper, reducer)
            .config(config)
            .boxed_partitioner(partitioner);
        if let Some(c) = combiner {
            builder = builder.boxed_combiner(c);
        }
        if let Some(c) = counters {
            builder = builder.counters(c);
        }
        let (out, mut metrics) = execute_stage(ctx, builder, contract.as_deref(), input, source);
        if let Some(f) = finalize {
            f(&mut metrics);
        }
        // The stage output is Arc-shared between the checkpoint record and
        // the rows handed to the next stage: checkpointing must not double
        // the stage's peak footprint. The driver unwraps (or, if a
        // checkpoint still holds a reference, clones) at plan exit.
        let out = Arc::new(out);
        if let Some(ck) = ctx.checkpoint.as_ref() {
            let data = CheckpointRows {
                rows: Arc::clone(&out),
            };
            let bytes = data.shuffle_bytes();
            let path = ck.path();
            ck.dfs.remove(&path);
            ck.dfs
                .put(&path, vec![data])
                .expect("checkpoint namespace is driver-owned");
            metrics.checkpoint_bytes = bytes;
            obsv::global().counter("checkpoint_bytes").inc(bytes);
        }
        ctx.history.push(metrics);
        (Box::new(MapInput::Shared(out)) as Rows, fresh_source_id())
    }));
}

/// Runs one stage through the engine's phase machinery, inside the same
/// `"job"` span `JobBuilder::run` opens, applying the co-partitioning
/// contract: retain the post-shuffle partitions the first time a token is
/// seen, elide map+shuffle (reduce straight off the retained buckets) on a
/// verified later use. Fault injection applies to whatever phases actually
/// run, so an elided stage still exercises reduce-side retries.
#[allow(clippy::type_complexity)]
fn execute_stage<M, R>(
    ctx: &mut ExecCtx<'_>,
    builder: JobBuilder<M, R>,
    contract: Option<&str>,
    input: MapInput<M::InKey, M::InValue>,
    source: u64,
) -> (Vec<(R::OutKey, R::OutValue)>, JobMetrics)
where
    M: Mapper,
    M::InKey: Clone + Sync,
    M::InValue: Clone + Sync,
    M::OutKey: 'static,
    M::OutValue: Clone + 'static,
    R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
{
    let name = builder.job_name().to_string();
    let elide = ctx.elide;
    let cache = &mut *ctx.cache;
    let governor = ctx.governor.clone();
    let builder = match &governor {
        Some(g) => builder.with_governor(Arc::clone(g)),
        None => builder,
    };
    let retain_label = format!("retain-{name}");
    // Scope the heap accountant around the whole stage body (map,
    // shuffle, reduce, contract bookkeeping) so the stage's metrics can
    // report its peak resident footprint. Inert (returns 0) unless
    // `obsv::alloc::enable_accounting` ran.
    let mem = obsv::alloc::scope();
    let ((out, mut metrics), wall) = obsv::timed_span(
        "job",
        || name.clone(),
        move || {
            let mut metrics = builder.metrics_shell();
            let chaos = builder.chaos_ctx();
            let ckey = ContractKey {
                kv: (TypeId::of::<M::OutKey>(), TypeId::of::<M::OutValue>()),
                map_tasks: builder.job_config().map_tasks,
                reduce_tasks: builder.job_config().reduce_tasks,
                partitioner: builder.partitioner_contract(),
                source,
            };
            let reuse = match (contract, elide) {
                (Some(token), true) => cache.take::<M::OutKey, M::OutValue>(token, &ckey),
                _ => None,
            };
            // Bytes the retained cache copy moved to disk under pressure;
            // folded into the stage's spill accounting after the fact
            // (the engine's own counter only sees map-side spills).
            let mut retained_spill = 0u64;
            let out = match reuse {
                Some((buckets, saved_bytes)) => {
                    // Map and shuffle elided: their counters stay 0, the
                    // skipped volume is reported separately, and the input
                    // rows are never even read.
                    metrics.shuffle_bytes_saved = saved_bytes;
                    metrics.max_reduce_task_records =
                        buckets.iter().map(|b| b.records()).max().unwrap_or(0);
                    builder.reduce_phase(buckets, &mut metrics, &chaos)
                }
                None => {
                    let map_out = builder.map_phase(input, &mut metrics, &chaos);
                    let buckets = builder.shuffle_phase(map_out, &mut metrics);
                    if let (Some(token), true) = (contract, elide) {
                        // The retained copy shares spilled parts with the
                        // live buckets and deep-copies only resident ones;
                        // under budget pressure those resident parts move
                        // to disk too, so retention never holds a second
                        // resident copy of the shuffle. Clone-then-spill
                        // runs bucket by bucket so the transient doubling
                        // is one bucket deep, not the whole shuffle.
                        let mut retained: Vec<ReduceBucket<M::OutKey, M::OutValue>> =
                            Vec::with_capacity(buckets.len());
                        for b in &buckets {
                            let mut rb = b.cache_clone();
                            if let Some(gov) = &governor {
                                if gov.should_spill() {
                                    retained_spill += rb.spill_mem_parts(gov, &retain_label);
                                }
                            }
                            retained.push(rb);
                        }
                        cache.retain::<M::OutKey, M::OutValue>(
                            token.to_string(),
                            ckey,
                            retained,
                            metrics.shuffle_bytes,
                        );
                    }
                    builder.reduce_phase(buckets, &mut metrics, &chaos)
                }
            };
            builder.finish_metrics(&mut metrics, &chaos);
            metrics.spill_bytes += retained_spill;
            (out, metrics)
        },
    );
    metrics.wall_time = wall;
    metrics.peak_resident_bytes = mem.peak();
    (out, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Driver;
    use crate::task::{FnMapper, FnReducer};

    fn mod_key_mapper() -> impl Mapper<InKey = u32, InValue = u32, OutKey = u32, OutValue = u64> {
        FnMapper::new(|k: u32, v: u32, out: &mut Emitter<u32, u64>| {
            out.emit(k % 7, v as u64);
        })
    }

    fn sum_reducer() -> impl Reducer<InKey = u32, InValue = u64, OutKey = u32, OutValue = u64> {
        FnReducer::new(|k: &u32, vs: Vec<u64>, out: &mut Emitter<u32, u64>| {
            out.emit(*k, vs.into_iter().sum());
        })
    }

    fn max_reducer() -> impl Reducer<InKey = u32, InValue = u64, OutKey = u32, OutValue = u64> {
        FnReducer::new(|k: &u32, vs: Vec<u64>, out: &mut Emitter<u32, u64>| {
            out.emit(*k, vs.into_iter().max().unwrap_or(0));
        })
    }

    fn input_rows(n: u32) -> Vec<(u32, u32)> {
        (0..n).map(|i| (i, i.wrapping_mul(2654435761))).collect()
    }

    #[test]
    fn multi_stage_plan_matches_hand_chained_jobs() {
        let rows = input_rows(100);

        // Reference: two hand-chained JobBuilder runs.
        let (mid, m1) = JobBuilder::new("s1", mod_key_mapper(), sum_reducer())
            .config(JobConfig::uniform(3))
            .run(rows.clone());
        let (mut want, m2) = JobBuilder::new(
            "s2",
            FnMapper::new(|k: u32, v: u64, out: &mut Emitter<u32, u64>| out.emit(k % 2, v)),
            sum_reducer(),
        )
        .config(JobConfig::uniform(2))
        .run(mid);

        // Same dataflow as a plan.
        let mut driver = Driver::new();
        let p = plan("two-stage")
            .rows(rows)
            .stage(Stage::new("s1", mod_key_mapper(), sum_reducer()).config(JobConfig::uniform(3)))
            .stage(
                Stage::new(
                    "s2",
                    FnMapper::new(|k: u32, v: u64, out: &mut Emitter<u32, u64>| out.emit(k % 2, v)),
                    sum_reducer(),
                )
                .config(JobConfig::uniform(2)),
            )
            .build();
        let mut got = driver.run_plan(p);

        got.sort();
        want.sort();
        assert_eq!(got, want);
        let h = driver.history();
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].name, "s1");
        assert_eq!(h[1].name, "s2");
        assert_eq!(h[0].shuffle_bytes, m1.shuffle_bytes);
        assert_eq!(h[1].shuffle_bytes, m2.shuffle_bytes);
        assert!(h.iter().all(|m| m.shuffle_bytes_saved == 0));
    }

    #[test]
    fn map_stages_fuse_into_one_single_pass_stage() {
        let rows = input_rows(60);

        // Reference: the unfused dataflow, one job per map stage.
        let (a, _) = JobBuilder::new(
            "m1",
            FnMapper::new(|k: u32, v: u32, out: &mut Emitter<u32, u32>| {
                out.emit(k, v / 2);
            }),
            FnReducer::new(|k: &u32, vs: Vec<u32>, out: &mut Emitter<u32, u32>| {
                for v in vs {
                    out.emit(*k, v);
                }
            }),
        )
        .config(JobConfig::uniform(2))
        .run(rows.clone());
        let (mut want, _) = JobBuilder::new("m2", mod_key_mapper(), sum_reducer())
            .config(JobConfig::uniform(2))
            .run(a);

        let mut driver = Driver::new();
        let p = plan("fused")
            .rows(rows)
            .map_stage(FnMapper::new(
                |k: u32, v: u32, out: &mut Emitter<u32, u32>| {
                    out.emit(k, v / 2);
                },
            ))
            .map_stage(mod_key_mapper())
            .reduce_stage(
                ReduceStage::new("fused-sum", sum_reducer()).config(JobConfig::uniform(2)),
            )
            .build();
        let mut got = driver.run_plan(p);

        got.sort();
        want.sort();
        assert_eq!(got, want);
        // The two map-only stages and the reduce stage ran as ONE job.
        assert_eq!(driver.history().len(), 1);
        assert_eq!(driver.history()[0].name, "fused-sum");
        assert_eq!(driver.history()[0].map_output_records, 60);
    }

    #[test]
    fn co_partitioned_stages_elide_the_second_shuffle() {
        let snap = Snapshot::new(input_rows(200));
        let mut driver = Driver::new();

        let p1 = plan("sum")
            .snapshot(&snap)
            .map_stage(mod_key_mapper())
            .reduce_stage(
                ReduceStage::new("sum", sum_reducer())
                    .config(JobConfig::uniform(4))
                    .co_partitioned("mod7"),
            )
            .build();
        let sums = driver.run_plan(p1);

        let p2 = plan("max")
            .snapshot(&snap)
            .map_stage(mod_key_mapper())
            .reduce_stage(
                ReduceStage::new("max", max_reducer())
                    .config(JobConfig::uniform(4))
                    .co_partitioned("mod7"),
            )
            .build();
        let mut maxes = driver.run_plan(p2);

        let h = driver.history();
        assert_eq!(h.len(), 2);
        assert!(h[0].shuffle_bytes > 0);
        assert_eq!(h[0].shuffle_bytes_saved, 0);
        // Second stage: map+shuffle elided, volume accounted as saved.
        assert_eq!(h[1].map_input_records, 0);
        assert_eq!(h[1].map_output_records, 0);
        assert_eq!(h[1].shuffle_records, 0);
        assert_eq!(h[1].shuffle_bytes, 0);
        assert_eq!(h[1].shuffle_bytes_saved, h[0].shuffle_bytes);
        // Reduce still ran for real.
        assert_eq!(h[1].reduce_input_groups, 7);

        // Outputs are bit-identical to an un-elided run.
        let mut plain_driver = Driver::new().with_elision(false);
        let p2_plain = plan("max-plain")
            .snapshot(&snap)
            .map_stage(mod_key_mapper())
            .reduce_stage(
                ReduceStage::new("max", max_reducer())
                    .config(JobConfig::uniform(4))
                    .co_partitioned("mod7"),
            )
            .build();
        let mut plain = plain_driver.run_plan(p2_plain);
        maxes.sort();
        plain.sort();
        assert_eq!(maxes, plain);
        assert_eq!(plain_driver.history()[0].shuffle_bytes_saved, 0);
        assert!(plain_driver.history()[0].shuffle_bytes > 0);

        // And the sums are what a direct job computes.
        let (mut want_sums, _) = JobBuilder::new("ref", mod_key_mapper(), sum_reducer())
            .config(JobConfig::uniform(4))
            .run(snap.rows().to_vec());
        let mut sums = sums;
        sums.sort();
        want_sums.sort();
        assert_eq!(sums, want_sums);
    }

    #[test]
    fn contract_mismatch_falls_back_to_full_execution() {
        let snap = Snapshot::new(input_rows(80));
        let mut driver = Driver::new();

        let p1 = plan("sum")
            .snapshot(&snap)
            .map_stage(mod_key_mapper())
            .reduce_stage(
                ReduceStage::new("sum", sum_reducer())
                    .config(JobConfig::uniform(4))
                    .co_partitioned("tok"),
            )
            .build();
        driver.run_plan(p1);

        // Same token but different reduce task count: the verified part of
        // the contract fails, so the stage runs (correctly) in full.
        let p2 = plan("max")
            .snapshot(&snap)
            .map_stage(mod_key_mapper())
            .reduce_stage(
                ReduceStage::new("max", max_reducer())
                    .config(JobConfig::uniform(2))
                    .co_partitioned("tok"),
            )
            .build();
        let mut got = driver.run_plan(p2);

        let h = driver.history();
        assert_eq!(h[1].shuffle_bytes_saved, 0);
        assert!(h[1].shuffle_bytes > 0);

        let (mut want, _) = JobBuilder::new("ref", mod_key_mapper(), max_reducer())
            .config(JobConfig::uniform(2))
            .run(snap.rows().to_vec());
        got.sort();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn snapshot_feeds_stages_without_copying_upfront() {
        let snap = Snapshot::new(input_rows(50));
        let resident = |s: &Snapshot<u32, u32>| match &s.rows {
            SnapRows::Resident(a) => Arc::clone(a),
            SnapRows::Spilled(_) => unreachable!("built resident"),
        };
        let before = Arc::strong_count(&resident(&snap)) - 1;
        let mut driver = Driver::new();
        let p = plan("reader")
            .snapshot(&snap)
            .map_stage(mod_key_mapper())
            .reduce_stage(ReduceStage::new("sum", sum_reducer()).config(JobConfig::uniform(3)))
            .build();
        let mut got = driver.run_plan(p);
        // The plan held a reference, not a copy, and released it.
        assert_eq!(Arc::strong_count(&resident(&snap)) - 1, before);

        let (mut want, _) = JobBuilder::new("ref", mod_key_mapper(), sum_reducer())
            .config(JobConfig::uniform(3))
            .run(snap.rows().to_vec());
        got.sort();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn finalize_hook_edits_recorded_metrics() {
        let mut driver = Driver::new();
        let p = plan("hooked")
            .rows(input_rows(10))
            .stage(
                Stage::new("s", mod_key_mapper(), sum_reducer())
                    .config(JobConfig::uniform(2))
                    .finalize(|m: &mut JobMetrics| {
                        m.user.insert("custom".into(), 42);
                    }),
            )
            .build();
        driver.run_plan(p);
        assert_eq!(driver.history()[0].user["custom"], 42);
    }

    #[test]
    fn checkpoints_materialize_and_clear_on_success() {
        let mut driver = Driver::new().with_checkpoints(true);
        let p = plan("ckpt")
            .rows(input_rows(50))
            .stage(Stage::new("s1", mod_key_mapper(), sum_reducer()).config(JobConfig::uniform(2)))
            .build();
        driver.run_plan(p);
        // The stage reported the bytes it materialized, and the completed
        // plan cleared its checkpoints (they only survive kills).
        assert!(driver.history()[0].checkpoint_bytes > 0);
        assert!(driver.dfs().list("ckpt/").is_empty());
    }

    fn resume_plan(rows: &[(u32, u32)], stage2_fault: Option<crate::FaultPlan>) -> Plan<u32, u64> {
        let mut cfg2 = JobConfig::uniform(2);
        cfg2.fault = stage2_fault;
        plan("resume")
            .rows(rows.to_vec())
            .stage(Stage::new("s1", mod_key_mapper(), sum_reducer()).config(JobConfig::uniform(3)))
            .stage(
                Stage::new(
                    "s2",
                    FnMapper::new(|k: u32, v: u64, out: &mut Emitter<u32, u64>| out.emit(k % 2, v)),
                    sum_reducer(),
                )
                .config(cfg2),
            )
            .build()
    }

    #[test]
    fn killed_plan_resumes_from_last_checkpoint() {
        use std::panic::{catch_unwind, AssertUnwindSafe};

        let rows = input_rows(80);
        let mut want = {
            let mut clean = Driver::new();
            clean.run_plan(resume_plan(&rows, None))
        };

        let mut driver = Driver::new().with_checkpoints(true);
        // First attempt: stage 2 has zero allowed attempts, so the job is
        // killed — after stage 1 materialized its checkpoint.
        let doomed = resume_plan(
            &rows,
            Some(crate::FaultPlan {
                fail_per_mille: 999,
                max_attempts: 0,
                seed: 7,
            }),
        );
        let killed = catch_unwind(AssertUnwindSafe(|| driver.run_plan(doomed)));
        assert!(killed.is_err());
        assert_eq!(driver.dfs().list("ckpt/resume/").len(), 1);

        // Retry of the identical (now healthy) plan resumes stage 1 from
        // its checkpoint instead of recomputing it.
        let mut got = driver.run_plan(resume_plan(&rows, None));
        got.sort();
        want.sort();
        assert_eq!(got, want);
        let resumed: Vec<_> = driver
            .history()
            .iter()
            .filter(|m| m.user.get("resumed_from_checkpoint") == Some(&1))
            .collect();
        assert_eq!(resumed.len(), 1);
        assert_eq!(resumed[0].name, "s1");
        assert_eq!(resumed[0].map_input_records, 0);
        // Success clears the surviving checkpoints.
        assert!(driver.dfs().list("ckpt/").is_empty());
    }

    #[test]
    fn zero_budget_always_spill_is_bit_identical() {
        let rows = input_rows(300);

        let mut plain = Driver::new();
        let p_ref = plan("ref")
            .rows(rows.clone())
            .stage(Stage::new("s1", mod_key_mapper(), sum_reducer()).config(JobConfig::uniform(4)))
            .build();
        let want = plain.run_plan(p_ref);

        // Budget 0: every governed map task spills its buckets and reduce
        // streams them back. Output must match the resident run exactly —
        // same records in the same order, not just the same set.
        let mut budgeted = Driver::new().with_mem_budget(0);
        let p = plan("budgeted")
            .rows(rows)
            .stage(Stage::new("s1", mod_key_mapper(), sum_reducer()).config(JobConfig::uniform(4)))
            .build();
        let got = budgeted.run_plan(p);
        assert_eq!(got, want);

        let h = budgeted.history();
        assert!(h[0].spill_bytes > 0, "zero budget must force spills");
        // Shuffle accounting is unchanged by spilling: the logical volume
        // crossed the boundary either way.
        assert_eq!(h[0].shuffle_bytes, plain.history()[0].shuffle_bytes);
        assert_eq!(h[0].shuffle_records, plain.history()[0].shuffle_records);
        // Spill I/O is metered on the DFS disk tier, split from in-memory
        // materialization, and everything spilled was read back.
        assert!(budgeted.dfs().spill_bytes_written() > 0);
        assert_eq!(
            budgeted.dfs().spill_bytes_read(),
            budgeted.dfs().spill_bytes_written()
        );
        assert_eq!(budgeted.dfs().bytes_written(), 0);
        let gov = budgeted.mem_governor().expect("budget configured");
        assert_eq!(gov.spill_bytes(), h[0].spill_bytes);
        assert_eq!(gov.resident_bytes(), 0, "all charges released");
    }

    #[test]
    fn elision_under_budget_spills_retained_copy_and_stays_identical() {
        let snap = Snapshot::new(input_rows(200));

        let run = |mut driver: Driver| {
            let p1 = plan("sum")
                .snapshot(&snap)
                .map_stage(mod_key_mapper())
                .reduce_stage(
                    ReduceStage::new("sum", sum_reducer())
                        .config(JobConfig::uniform(4))
                        .co_partitioned("mod7"),
                )
                .build();
            let sums = driver.run_plan(p1);
            let p2 = plan("max")
                .snapshot(&snap)
                .map_stage(mod_key_mapper())
                .reduce_stage(
                    ReduceStage::new("max", max_reducer())
                        .config(JobConfig::uniform(4))
                        .co_partitioned("mod7"),
                )
                .build();
            let maxes = driver.run_plan(p2);
            (sums, maxes, driver)
        };

        let (want_sums, want_maxes, plain) = run(Driver::new());
        let (sums, maxes, budgeted) = run(Driver::new().with_mem_budget(0));
        assert_eq!(sums, want_sums);
        assert_eq!(maxes, want_maxes);

        let h = budgeted.history();
        // Elision accounting is untouched by the budget: the second stage
        // still skips its map+shuffle and reports the saved volume.
        assert_eq!(h[1].shuffle_bytes_saved, plain.history()[0].shuffle_bytes);
        assert_eq!(h[1].shuffle_bytes, 0);
        // The first stage spilled both its live buckets and the retained
        // cache copy.
        assert!(h[0].spill_bytes > 0);
    }

    #[test]
    fn spilled_snapshot_plan_matches_resident_snapshot() {
        let rows = input_rows(150);
        let spilled = SpilledRows::from_batches("snap-test", rows.chunks(40).map(|c| c.to_vec()))
            .expect("spill tmp dir");
        let snap_cold = Snapshot::from_spilled(spilled);
        assert!(snap_cold.is_spilled());
        assert_eq!(snap_cold.len(), 150);
        let snap_hot = Snapshot::new(rows);

        let run = |snap: &Snapshot<u32, u32>| {
            let mut driver = Driver::new();
            let p = plan("reader")
                .snapshot(snap)
                .map_stage(mod_key_mapper())
                .reduce_stage(ReduceStage::new("sum", sum_reducer()).config(JobConfig::uniform(3)))
                .build();
            let out = driver.run_plan(p);
            let m = driver.history()[0].clone();
            (out, m)
        };

        let (want, m_hot) = run(&snap_hot);
        let (got, m_cold) = run(&snap_cold);
        assert_eq!(got, want);
        // Chunk boundaries — and therefore every counter — are identical
        // whether the input is streamed from disk or read from memory.
        assert_eq!(m_cold.shuffle_bytes, m_hot.shuffle_bytes);
        assert_eq!(m_cold.shuffle_records, m_hot.shuffle_records);
        assert_eq!(m_cold.map_input_records, m_hot.map_input_records);
    }

    #[test]
    fn map_chain_fuses_record_by_record() {
        let chain = MapChain::new(
            FnMapper::new(|k: u32, v: u32, out: &mut Emitter<u32, u32>| {
                // fan out two copies
                out.emit(k, v);
                out.emit(k + 1, v);
            }),
            FnMapper::new(|k: u32, v: u32, out: &mut Emitter<u32, u64>| {
                out.emit(k * 10, v as u64);
            }),
        );
        let mut out = Emitter::new();
        chain.map(3, 5, &mut out);
        assert_eq!(out.into_records(), vec![(30, 5u64), (40, 5u64)]);
    }
}
