//! Fixed-width binary wire format for shuffled records.
//!
//! The engine keeps records as native Rust values, but the shuffle-byte
//! accounting ([`crate::record::ShuffleSize`]) claims to report what a
//! real Hadoop shuffle would serialize. This module makes that claim
//! checkable: a [`Wire`] codec whose encoded length **equals**
//! `shuffle_bytes()` for every implementing type (enforced by a blanket
//! debug assertion in [`encode`] and by property tests), with a lossless
//! decode.
//!
//! Encoding rules (little-endian):
//!
//! * numeric types: their width;
//! * `bool`: one byte (0/1);
//! * `String`: `u32` length prefix + UTF-8 bytes;
//! * `Vec<T>`: `u32` element-count prefix + elements;
//! * `Option<T>`: one tag byte + payload when `Some`;
//! * tuples: fields in order.

use crate::record::ShuffleSize;

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of bytes mid-value.
    Truncated,
    /// Invalid payload (bad UTF-8, bad tag byte).
    Corrupt(&'static str),
    /// Extra bytes after the value when decoding with [`decode`].
    TrailingBytes(usize),
    /// Frame checksum did not verify ([`decode_framed`]): the payload was
    /// corrupted in flight.
    ChecksumMismatch {
        /// Checksum carried in the frame trailer.
        expected: u64,
        /// Checksum recomputed over the received payload.
        found: u64,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated wire data"),
            WireError::Corrupt(what) => write!(f, "corrupt wire data: {what}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            WireError::ChecksumMismatch { expected, found } => write!(
                f,
                "frame checksum mismatch: trailer says {expected:#018x}, payload hashes to {found:#018x}"
            ),
        }
    }
}

impl std::error::Error for WireError {}

/// A type with a fixed-width binary wire encoding whose length matches its
/// [`ShuffleSize`].
///
/// ```
/// use mapreduce::{encode, decode, ShuffleSize};
/// let record = (7u32, vec![1.0f64, 2.0]);
/// let bytes = encode(&record);
/// assert_eq!(bytes.len() as u64, record.shuffle_bytes());
/// let back: (u32, Vec<f64>) = decode(&bytes).unwrap();
/// assert_eq!(back, record);
/// ```
pub trait Wire: ShuffleSize + Sized {
    /// Appends this value's encoding to `out`.
    fn write(&self, out: &mut Vec<u8>);
    /// Reads one value from the front of `input`, advancing it.
    fn read(input: &mut &[u8]) -> Result<Self, WireError>;
}

/// Encodes a value to bytes; debug-asserts the length contract.
pub fn encode<T: Wire>(value: &T) -> Vec<u8> {
    let mut out = Vec::with_capacity(value.shuffle_bytes() as usize);
    value.write(&mut out);
    debug_assert_eq!(
        out.len() as u64,
        value.shuffle_bytes(),
        "wire length must equal the ShuffleSize estimate"
    );
    out
}

/// Decodes exactly one value from `bytes`; rejects trailing bytes.
pub fn decode<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut input = bytes;
    let v = T::read(&mut input)?;
    if input.is_empty() {
        Ok(v)
    } else {
        Err(WireError::TrailingBytes(input.len()))
    }
}

/// Encodes a value as a checksummed frame: the value's wire bytes
/// followed by an 8-byte little-endian FNV-1a trailer
/// ([`crate::record::checksum64`]).
///
/// This is the shuffle-integrity framing chaos injection exercises: a
/// record corrupted between map and reduce fails [`decode_framed`] with
/// [`WireError::ChecksumMismatch`], so the engine can detect the bad
/// attempt and retry it instead of silently reducing garbage.
///
/// ```
/// use mapreduce::{encode_framed, decode_framed, WireError};
/// let record = (7u32, vec![1.0f64, 2.0]);
/// let mut frame = encode_framed(&record);
/// assert_eq!(decode_framed::<(u32, Vec<f64>)>(&frame).unwrap(), record);
/// frame[2] ^= 0x40; // bit flip in flight
/// assert!(matches!(
///     decode_framed::<(u32, Vec<f64>)>(&frame),
///     Err(WireError::ChecksumMismatch { .. })
/// ));
/// ```
pub fn encode_framed<T: Wire>(value: &T) -> Vec<u8> {
    let mut out = encode(value);
    let sum = crate::record::checksum64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decodes a frame produced by [`encode_framed`], verifying the
/// checksum trailer before touching the payload.
pub fn decode_framed<T: Wire>(frame: &[u8]) -> Result<T, WireError> {
    if frame.len() < 8 {
        return Err(WireError::Truncated);
    }
    let (payload, trailer) = frame.split_at(frame.len() - 8);
    let expected = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    let found = crate::record::checksum64(payload);
    if expected != found {
        return Err(WireError::ChecksumMismatch { expected, found });
    }
    decode(payload)
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if input.len() < n {
        return Err(WireError::Truncated);
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

macro_rules! impl_wire_num {
    ($($t:ty),* $(,)?) => {
        $(
            impl Wire for $t {
                fn write(&self, out: &mut Vec<u8>) {
                    out.extend_from_slice(&self.to_le_bytes());
                }
                fn read(input: &mut &[u8]) -> Result<Self, WireError> {
                    let bytes = take(input, std::mem::size_of::<$t>())?;
                    Ok(<$t>::from_le_bytes(bytes.try_into().expect("sized take")))
                }
            }
        )*
    };
}

impl_wire_num!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

// `usize`/`isize` encode at a fixed 8 bytes regardless of platform width,
// matching their `ShuffleSize` accounting.
impl Wire for usize {
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u64).to_le_bytes());
    }
    fn read(input: &mut &[u8]) -> Result<Self, WireError> {
        let v = u64::read(input)?;
        usize::try_from(v).map_err(|_| WireError::Corrupt("usize overflow"))
    }
}

impl Wire for isize {
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as i64).to_le_bytes());
    }
    fn read(input: &mut &[u8]) -> Result<Self, WireError> {
        let v = i64::read(input)?;
        isize::try_from(v).map_err(|_| WireError::Corrupt("isize overflow"))
    }
}

impl Wire for () {
    fn write(&self, _out: &mut Vec<u8>) {}
    fn read(_input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(())
    }
}

impl Wire for bool {
    fn write(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn read(input: &mut &[u8]) -> Result<Self, WireError> {
        match take(input, 1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Corrupt("bool tag")),
        }
    }
}

impl Wire for String {
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        out.extend_from_slice(self.as_bytes());
    }
    fn read(input: &mut &[u8]) -> Result<Self, WireError> {
        let len = u32::read(input)? as usize;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Corrupt("utf-8"))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for v in self {
            v.write(out);
        }
    }
    fn read(input: &mut &[u8]) -> Result<Self, WireError> {
        let len = u32::read(input)? as usize;
        // Defensive cap: a corrupt length must not allocate the world.
        let mut out = Vec::with_capacity(len.min(input.len() + 1));
        for _ in 0..len {
            out.push(T::read(input)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Box<[T]> {
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for v in self.iter() {
            v.write(out);
        }
    }
    fn read(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Vec::<T>::read(input)?.into_boxed_slice())
    }
}

impl<T: Wire> Wire for Option<T> {
    fn write(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.write(out);
            }
        }
    }
    fn read(input: &mut &[u8]) -> Result<Self, WireError> {
        match take(input, 1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::read(input)?)),
            _ => Err(WireError::Corrupt("option tag")),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn write(&self, out: &mut Vec<u8>) {
        self.0.write(out);
        self.1.write(out);
    }
    fn read(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok((A::read(input)?, B::read(input)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn write(&self, out: &mut Vec<u8>) {
        self.0.write(out);
        self.1.write(out);
        self.2.write(out);
    }
    fn read(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok((A::read(input)?, B::read(input)?, C::read(input)?))
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    fn write(&self, out: &mut Vec<u8>) {
        self.0.write(out);
        self.1.write(out);
        self.2.write(out);
        self.3.write(out);
    }
    fn read(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok((
            A::read(input)?,
            B::read(input)?,
            C::read(input)?,
            D::read(input)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode(&v);
        assert_eq!(
            bytes.len() as u64,
            v.shuffle_bytes(),
            "length contract for {v:?}"
        );
        let back: T = decode(&bytes).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(-5i16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(-1i64);
        round_trip(3.25f64);
        round_trip(true);
        round_trip(false);
    }

    #[test]
    fn compound_round_trip() {
        round_trip("hello κόσμε".to_string());
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<f64>::new());
        round_trip(Some(7u64));
        round_trip(Option::<u64>::None);
        round_trip(42usize);
        round_trip(-42isize);
        round_trip(());
        round_trip(vec![1u32, 2, 3].into_boxed_slice());
        round_trip((1u32, vec![0.5f64, -0.5]));
        round_trip((1u32, 2u32, vec![1.0f64]));
        round_trip((1u8, 2u16, 3u32, 4u64));
    }

    #[test]
    fn pipeline_record_types_round_trip() {
        // The exact key/value shapes the DDP pipelines shuffle.
        round_trip((7u32, vec![1.0f64, 2.0, 3.0])); // point record
        round_trip((3u16, vec![-4i64, 2, 0])); // LSH partition key
        round_trip((0.5f64, 12u32, 9.75f64)); // delta partial
        round_trip((9u32, vec![0.0f64; 57], 1u8)); // EDDPC cell point
    }

    #[test]
    fn truncated_input_is_detected() {
        let bytes = encode(&(1u32, vec![1.0f64, 2.0]));
        for cut in 0..bytes.len() {
            let r: Result<(u32, Vec<f64>), _> = decode(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut bytes = encode(&42u32);
        bytes.push(0);
        let r: Result<u32, _> = decode(&bytes);
        assert_eq!(r, Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn corrupt_tags_are_detected() {
        let r: Result<bool, _> = decode(&[7]);
        assert_eq!(r, Err(WireError::Corrupt("bool tag")));
        let r: Result<Option<u8>, _> = decode(&[9, 1]);
        assert_eq!(r, Err(WireError::Corrupt("option tag")));
        let r: Result<String, _> = decode(&[2, 0, 0, 0, 0xFF, 0xFE]);
        assert_eq!(r, Err(WireError::Corrupt("utf-8")));
    }

    #[test]
    fn framed_round_trip_and_length() {
        let v = (3u16, vec![-4i64, 2, 0]);
        let frame = encode_framed(&v);
        assert_eq!(frame.len() as u64, v.shuffle_bytes() + 8);
        assert_eq!(decode_framed::<(u16, Vec<i64>)>(&frame).unwrap(), v);
    }

    #[test]
    fn framed_detects_any_single_byte_corruption() {
        let v = (7u32, vec![1.0f64, 2.0, 3.0]);
        let frame = encode_framed(&v);
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x01;
            let r = decode_framed::<(u32, Vec<f64>)>(&bad);
            assert!(r.is_err(), "corruption at byte {i} must be detected");
        }
    }

    #[test]
    fn framed_rejects_short_frames() {
        for n in 0..8 {
            let r = decode_framed::<u32>(&vec![0u8; n]);
            assert_eq!(r, Err(WireError::Truncated));
        }
    }

    #[test]
    fn corrupt_length_does_not_overallocate() {
        // Length prefix claims u32::MAX elements; must error, not OOM.
        let bytes = u32::MAX.to_le_bytes();
        let r: Result<Vec<u64>, _> = decode(&bytes);
        assert_eq!(r, Err(WireError::Truncated));
    }
}
