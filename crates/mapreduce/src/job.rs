//! Job configuration and execution: map → (combine) → shuffle → sort/group
//! → reduce, with every phase running on the Rayon thread pool.

use crate::counters::{Counters, JobMetrics, TaskTimes};
use crate::driver::MemoryGovernor;
use crate::fault::{ChaosPlan, FaultPlan, Phase};
use crate::record::ShuffleSize;
use crate::spill::{FrameMeta, SpillSegment, SpilledRows};
use crate::task::{Combiner, Emitter, Mapper, MrKey, MrValue, Reducer};
use parking_lot::Mutex;
use rayon::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Decides which reduce task receives a key.
pub trait Partitioner<K>: Send + Sync {
    /// Reduce-task index for `key`, in `0..num_reducers`.
    fn partition(&self, key: &K, num_reducers: usize) -> usize;

    /// Label identifying the partitioning *function* for co-partitioning
    /// contracts (see the plan layer): two stages can only share a
    /// partitioned intermediate when their partitioners carry the same
    /// label. The default is a catch-all, so distinct custom partitioners
    /// should override it with distinct labels.
    fn contract_id(&self) -> &'static str {
        "custom"
    }
}

/// Hadoop's default: `hash(key) mod R`. Uses a fixed-seed SipHash so runs
/// are reproducible across processes.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner;

impl<K: Hash> Partitioner<K> for HashPartitioner {
    fn partition(&self, key: &K, num_reducers: usize) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % num_reducers as u64) as usize
    }

    fn contract_id(&self) -> &'static str {
        "hash"
    }
}

/// Input to a job's map phase: an owned record list (the classic `run`
/// path), a shared immutable snapshot, or a disk-backed spilled segment.
/// Shared and spilled inputs are split into index ranges with the *same
/// chunk boundaries* as the owned path — records are cloned (or decoded)
/// inside the parallel map tasks, so one materialization can feed every
/// job of a pipeline and a bigger-than-memory dataset never needs to be
/// resident at once.
pub enum MapInput<K, V> {
    /// The job consumes these records.
    Owned(Vec<(K, V)>),
    /// The job reads (clones) records out of a shared snapshot.
    Shared(Arc<Vec<(K, V)>>),
    /// The job decodes records out of a shared on-disk segment, one map
    /// chunk at a time.
    Spilled(Arc<SpilledRows<K, V>>),
}

impl<K, V> MapInput<K, V> {
    /// Number of input records.
    pub fn len(&self) -> usize {
        match self {
            MapInput::Owned(v) => v.len(),
            MapInput::Shared(v) => v.len(),
            MapInput::Spilled(v) => v.len(),
        }
    }

    /// Whether there are no input records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Degree-of-parallelism (and fault-injection) knobs for one job.
#[derive(Debug, Clone, Copy)]
pub struct JobConfig {
    /// Number of map tasks the input is split into.
    pub map_tasks: usize,
    /// Number of reduce tasks (hash-partition buckets).
    pub reduce_tasks: usize,
    /// Optional deterministic task-failure injection (retried
    /// transparently; see [`FaultPlan`]).
    pub fault: Option<FaultPlan>,
    /// Optional full chaos injection — failures plus stragglers,
    /// corruption, and partition loss (see [`ChaosPlan`]). Takes
    /// precedence over `fault` when both are set.
    pub chaos: Option<ChaosPlan>,
}

impl Default for JobConfig {
    fn default() -> Self {
        let n = rayon::current_num_threads().max(1);
        JobConfig {
            map_tasks: n,
            reduce_tasks: n,
            fault: None,
            chaos: None,
        }
    }
}

impl JobConfig {
    /// A config with `n` map and `n` reduce tasks, no fault injection.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "task count must be positive");
        JobConfig {
            map_tasks: n,
            reduce_tasks: n,
            fault: None,
            chaos: None,
        }
    }
}

/// Builder for one MapReduce job.
///
/// Type parameters tie the pipeline together at compile time: the reducer's
/// input key/value types must equal the mapper's output types.
pub struct JobBuilder<M, R>
where
    M: Mapper,
    R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
{
    name: String,
    mapper: M,
    reducer: R,
    combiner: Option<Box<dyn Combiner<Key = M::OutKey, Value = M::OutValue> + Send + Sync>>,
    partitioner: Box<dyn Partitioner<M::OutKey>>,
    config: JobConfig,
    counters: Option<Counters>,
    fault_plan: Option<FaultPlan>,
    chaos_plan: Option<ChaosPlan>,
    spill: Option<SpillCtx>,
}

/// Per-job handle on the driver's [`MemoryGovernor`], plus cells
/// accumulating this job's spill volume and backpressure stall time for
/// [`JobMetrics`].
pub(crate) struct SpillCtx {
    governor: Arc<MemoryGovernor>,
    job_spill: Arc<AtomicU64>,
    job_stall: Arc<AtomicU64>,
}

impl SpillCtx {
    pub(crate) fn new(governor: Arc<MemoryGovernor>) -> Self {
        SpillCtx {
            governor,
            job_spill: Arc::new(AtomicU64::new(0)),
            job_stall: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl<M, R> JobBuilder<M, R>
where
    M: Mapper,
    R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
{
    /// Starts building a job named `name` with the given map and reduce
    /// functions.
    pub fn new(name: impl Into<String>, mapper: M, reducer: R) -> Self {
        JobBuilder {
            name: name.into(),
            mapper,
            reducer,
            combiner: None,
            partitioner: Box::new(HashPartitioner),
            config: JobConfig::default(),
            counters: None,
            fault_plan: None,
            chaos_plan: None,
            spill: None,
        }
    }

    /// Attaches the driver's memory governor: map-task outputs spill to
    /// disk under budget pressure and reduce buckets materialize under
    /// admission control. Without a governor the job runs the classic
    /// fully-resident path (outputs are bit-identical either way).
    pub(crate) fn with_governor(mut self, governor: Arc<MemoryGovernor>) -> Self {
        self.spill = Some(SpillCtx::new(governor));
        self
    }

    /// Installs a map-side combiner.
    pub fn combiner<C>(mut self, combiner: C) -> Self
    where
        C: Combiner<Key = M::OutKey, Value = M::OutValue> + Send + Sync + 'static,
    {
        self.combiner = Some(Box::new(combiner));
        self
    }

    /// Replaces the default hash partitioner.
    pub fn partitioner<P>(mut self, partitioner: P) -> Self
    where
        P: Partitioner<M::OutKey> + 'static,
    {
        self.partitioner = Box::new(partitioner);
        self
    }

    /// Sets the parallelism config.
    pub fn config(mut self, config: JobConfig) -> Self {
        assert!(
            config.map_tasks > 0 && config.reduce_tasks > 0,
            "task counts must be positive"
        );
        self.config = config;
        self
    }

    /// Attaches user counters whose snapshot is included in the job's
    /// metrics.
    pub fn counters(mut self, counters: Counters) -> Self {
        self.counters = Some(counters);
        self
    }

    /// Enables deterministic task-failure injection with retries —
    /// MapReduce's fault-tolerance path. Failed attempts re-run the task
    /// (paying its cost again) and are counted in
    /// [`JobMetrics::task_retries`]; a task exhausting its attempts kills
    /// the job, like Hadoop.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Enables full deterministic chaos injection: crash failures plus
    /// straggler delays (answered by speculative re-execution) and
    /// checksum-detected record corruption. Wins over
    /// [`JobBuilder::fault_plan`] and both config-level plans.
    pub fn chaos_plan(mut self, plan: ChaosPlan) -> Self {
        self.chaos_plan = Some(plan);
        self
    }

    /// Runs the job to completion, returning the reduce output (ordered by
    /// reduce-task index, then by key) and the measured [`JobMetrics`].
    ///
    /// The whole job runs inside a `"job"` span, each phase inside a
    /// `"phase"` span, and every task attempt inside a `"task"` span
    /// parented (across pool threads) on its phase. The phase-time metric
    /// fields (`map_time`, `shuffle_time`, `reduce_time`, `wall_time`)
    /// are *derived from the span layer's measurements* — there is no
    /// second clock; with capture off, `timed_span` degrades to a plain
    /// stopwatch.
    #[allow(clippy::type_complexity)]
    pub fn run(
        self,
        input: Vec<(M::InKey, M::InValue)>,
    ) -> (Vec<(R::OutKey, R::OutValue)>, JobMetrics)
    where
        M::InKey: Clone + Sync,
        M::InValue: Clone + Sync,
    {
        let name = self.name.clone();
        let ((output, mut metrics), wall) = obsv::timed_span(
            "job",
            || name.clone(),
            move || self.run_phases(MapInput::Owned(input)),
        );
        metrics.wall_time = wall;
        (output, metrics)
    }

    #[allow(clippy::type_complexity)]
    fn run_phases(
        self,
        input: MapInput<M::InKey, M::InValue>,
    ) -> (Vec<(R::OutKey, R::OutValue)>, JobMetrics)
    where
        M::InKey: Clone + Sync,
        M::InValue: Clone + Sync,
    {
        let mut metrics = self.metrics_shell();
        let chaos = self.chaos_ctx();
        let map_outputs = self.map_phase(input, &mut metrics, &chaos);
        let reduce_inputs = self.shuffle_phase(map_outputs, &mut metrics);
        let output = self.reduce_phase(reduce_inputs, &mut metrics, &chaos);
        self.finish_metrics(&mut metrics, &chaos);
        (output, metrics)
    }

    /// A metrics record carrying just this job's name; the phase methods
    /// below fill in the measurements.
    pub(crate) fn metrics_shell(&self) -> JobMetrics {
        JobMetrics {
            name: self.name.clone(),
            ..Default::default()
        }
    }

    /// This job's name.
    pub(crate) fn job_name(&self) -> &str {
        &self.name
    }

    /// This job's parallelism config.
    pub(crate) fn job_config(&self) -> &JobConfig {
        &self.config
    }

    /// The contract label of this job's partitioner (see
    /// [`Partitioner::contract_id`]).
    pub(crate) fn partitioner_contract(&self) -> &'static str {
        self.partitioner.contract_id()
    }

    /// Installs an already-boxed combiner (the plan layer erases stage
    /// types before handing them to the engine).
    pub(crate) fn boxed_combiner(
        mut self,
        combiner: Box<dyn Combiner<Key = M::OutKey, Value = M::OutValue> + Send + Sync>,
    ) -> Self {
        self.combiner = Some(combiner);
        self
    }

    /// Installs an already-boxed partitioner.
    pub(crate) fn boxed_partitioner(
        mut self,
        partitioner: Box<dyn Partitioner<M::OutKey>>,
    ) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// The chaos plan in effect: an explicit [`JobBuilder::chaos_plan`]
    /// wins over an explicit [`JobBuilder::fault_plan`] (promoted to a
    /// crash-only chaos plan), which wins over the config-level plans.
    fn effective_chaos_plan(&self) -> Option<ChaosPlan> {
        self.chaos_plan
            .or(self.fault_plan.map(ChaosPlan::from))
            .or(self.config.chaos)
            .or(self.config.fault.map(ChaosPlan::from))
    }

    /// A fresh per-job chaos context (attempt accounting + speculation
    /// state) for the effective plan.
    pub(crate) fn chaos_ctx(&self) -> ChaosCtx {
        ChaosCtx::new(self.effective_chaos_plan())
    }

    /// Map phase (parallel over map tasks): each task maps its chunk of
    /// the input, applies the combiner, and partitions its output into one
    /// bucket per reduce task. Fills `map_input_records`, `map_time` and
    /// `map_task_times`.
    pub(crate) fn map_phase(
        &self,
        input: MapInput<M::InKey, M::InValue>,
        metrics: &mut JobMetrics,
        chaos: &ChaosCtx,
    ) -> Vec<MapTaskOut<M::OutKey, M::OutValue>>
    where
        M::InKey: Clone + Sync,
        M::InValue: Clone + Sync,
    {
        metrics.map_input_records = input.len() as u64;
        let r_tasks = self.config.reduce_tasks;
        let chunk = input.len().div_ceil(self.config.map_tasks).max(1);
        let mapper = &self.mapper;
        let combiner = self.combiner.as_deref();
        let partitioner = self.partitioner.as_ref();
        // Per-task attempt durations, recorded unconditionally (tasks are
        // coarse, two clock reads each are noise) and summarized into
        // `JobMetrics::map_task_times`.
        let map_task_ns = obsv::Histogram::new();

        let (map_outputs, map_dur) = obsv::timed_span(
            "phase",
            || format!("map:{}", self.name),
            || {
                let parent = obsv::current_span();
                let hist = &map_task_ns;
                let spill = self.spill.as_ref();
                let name = self.name.as_str();
                let run_one = |task: usize, records: Vec<(M::InKey, M::InValue)>| {
                    obsv::with_parent(parent, move || {
                        let attempt = Instant::now();
                        let out = obsv::span!("task", format!("map-{task}") => {
                            chaos.run_task(Phase::Map, task, || {
                                map_one_task(mapper, combiner, partitioner, r_tasks, records)
                            })
                        });
                        hist.record(attempt.elapsed().as_nanos() as u64);
                        // Completed task buckets are charged against the
                        // budget and spilled once it is exceeded; the spill
                        // decision never changes record content or order,
                        // only where the bytes wait for the shuffle.
                        match spill {
                            Some(ctx) => spill_task_under_pressure(ctx, name, out),
                            None => out,
                        }
                    })
                };
                match input {
                    MapInput::Owned(rows) => {
                        let chunks: Vec<Vec<(M::InKey, M::InValue)>> = {
                            let mut chunks = Vec::new();
                            let mut it = rows.into_iter();
                            loop {
                                let c: Vec<_> = it.by_ref().take(chunk).collect();
                                if c.is_empty() {
                                    break;
                                }
                                chunks.push(c);
                            }
                            chunks
                        };
                        chunks
                            .into_par_iter()
                            .enumerate()
                            .map(|(task, records)| run_one(task, records))
                            .collect::<Vec<MapTaskOut<M::OutKey, M::OutValue>>>()
                    }
                    MapInput::Shared(rows) => {
                        // Same chunk boundaries as the owned path, so task
                        // assignment (and therefore record order downstream)
                        // is identical; records are cloned inside the
                        // parallel tasks rather than materialized up front.
                        let ranges: Vec<(usize, usize)> = (0..rows.len())
                            .step_by(chunk)
                            .map(|s| (s, (s + chunk).min(rows.len())))
                            .collect();
                        let rows = &rows;
                        ranges
                            .into_par_iter()
                            .enumerate()
                            .map(|(task, (s, e))| run_one(task, rows[s..e].to_vec()))
                            .collect::<Vec<MapTaskOut<M::OutKey, M::OutValue>>>()
                    }
                    MapInput::Spilled(rows) => {
                        // Same boundaries again; each task decodes only its
                        // own chunk's frames from the segment.
                        let ranges: Vec<(usize, usize)> = (0..rows.len())
                            .step_by(chunk)
                            .map(|s| (s, (s + chunk).min(rows.len())))
                            .collect();
                        let rows = &rows;
                        ranges
                            .into_par_iter()
                            .enumerate()
                            .map(|(task, (s, e))| run_one(task, rows.read_range(s, e)))
                            .collect::<Vec<MapTaskOut<M::OutKey, M::OutValue>>>()
                    }
                }
            },
        );
        metrics.map_time = map_dur;
        metrics.map_task_times = task_times(&map_task_ns);
        map_outputs
    }

    /// Shuffle: transpose the map-task outputs into one parts list per
    /// reducer, in map-task order — resident buckets move as `Vec`
    /// handles, spilled buckets as segment frame references, so nothing is
    /// concatenated (or decoded) here. The actual merge happens lazily in
    /// the reduce phase, one bucket at a time, which is what lets the
    /// governor bound how many buckets are resident at once. Byte
    /// accounting is identical to the old eager merge: resident part bytes
    /// were summed per record by the map tasks, and a spilled frame's
    /// on-disk payload length equals its records' `ShuffleSize` sum by the
    /// wire length contract. Fills the map output / combine / shuffle
    /// counters and `shuffle_time`.
    #[allow(clippy::type_complexity)]
    pub(crate) fn shuffle_phase(
        &self,
        map_outputs: Vec<MapTaskOut<M::OutKey, M::OutValue>>,
        metrics: &mut JobMetrics,
    ) -> Vec<ReduceBucket<M::OutKey, M::OutValue>> {
        let r_tasks = self.config.reduce_tasks;
        let charged = self.spill.is_some();
        let (reduce_inputs, shuffle_dur) = obsv::timed_span(
            "phase",
            || format!("shuffle:{}", self.name),
            || {
                let mut reduce_inputs: Vec<ReduceBucket<M::OutKey, M::OutValue>> = (0..r_tasks)
                    .map(|_| ReduceBucket {
                        parts: Vec::new(),
                        records: 0,
                        mem_bytes: 0,
                        spill_bytes: 0,
                        charged,
                    })
                    .collect();
                for task_out in map_outputs {
                    metrics.map_output_records += task_out.emitted;
                    metrics.combine_output_records += task_out.combined;
                    match task_out.data {
                        TaskData::Mem {
                            buckets,
                            bucket_bytes,
                        } => {
                            for (r, (bucket, bytes)) in
                                buckets.into_iter().zip(bucket_bytes).enumerate()
                            {
                                if bucket.is_empty() {
                                    continue;
                                }
                                let rb = &mut reduce_inputs[r];
                                rb.records += bucket.len() as u64;
                                rb.mem_bytes += bytes;
                                rb.parts.push(BucketPart::Mem(bucket));
                            }
                        }
                        TaskData::Spilled { seg, frames } => {
                            for (r, frame) in frames {
                                let rb = &mut reduce_inputs[r as usize];
                                rb.records += frame.records as u64;
                                rb.spill_bytes += frame.record_bytes;
                                rb.parts.push(BucketPart::Spilled {
                                    seg: Arc::clone(&seg),
                                    frame,
                                });
                            }
                        }
                    }
                }
                for rb in &reduce_inputs {
                    metrics.shuffle_records += rb.records;
                    metrics.max_reduce_task_records =
                        metrics.max_reduce_task_records.max(rb.records);
                    metrics.shuffle_bytes += rb.mem_bytes + rb.spill_bytes;
                }
                reduce_inputs
            },
        );
        metrics.shuffle_time = shuffle_dur;
        reduce_inputs
    }

    /// Sort/group + reduce phase (parallel over reduce tasks). Each task
    /// first *materializes* its bucket — concatenating resident parts and
    /// decoding spilled frames in map-task order — under the governor's
    /// admission control, so at most as many buckets are resident as the
    /// budget allows (always at least one: a lone task is admitted
    /// regardless, which keeps the loop deadlock-free). Fills the reduce
    /// counters, `reduce_time` and `reduce_task_times`.
    #[allow(clippy::type_complexity)]
    pub(crate) fn reduce_phase(
        &self,
        reduce_inputs: Vec<ReduceBucket<M::OutKey, M::OutValue>>,
        metrics: &mut JobMetrics,
        chaos: &ChaosCtx,
    ) -> Vec<(R::OutKey, R::OutValue)> {
        let reducer = &self.reducer;
        let reduce_task_ns = obsv::Histogram::new();
        // (groups, max group size, output records) per reduce task.
        type TaskOut<K, V> = (u64, u64, Vec<(K, V)>);
        let (reduced, reduce_dur) = obsv::timed_span(
            "phase",
            || format!("reduce:{}", self.name),
            || {
                let parent = obsv::current_span();
                let hist = &reduce_task_ns;
                let spill = self.spill.as_ref();
                reduce_inputs
                    .into_par_iter()
                    .enumerate()
                    .map(|(task, lazy_bucket)| {
                        obsv::with_parent(parent, move || {
                            let attempt = Instant::now();
                            // Admission: wait until the decoded bytes fit the
                            // budget (or this is the only active bucket). The
                            // guard releases the bucket's charge when the task
                            // completes.
                            let _admit = spill.map(|s| {
                                s.governor.admit(
                                    lazy_bucket.spill_bytes,
                                    if lazy_bucket.charged {
                                        lazy_bucket.mem_bytes
                                    } else {
                                        0
                                    },
                                    &s.job_stall,
                                )
                            });
                            let bucket = lazy_bucket.materialize();
                            let out = obsv::span!("task", format!("reduce-{task}") => {
                                chaos.run_task(
                                    Phase::Reduce,
                                    task,
                                    move || {
                                        let mut bucket = bucket;
                                        // Stable sort by key keeps value arrival
                                        // order deterministic (map-task index
                                        // order, preserved by the merge above).
                                        bucket.sort_by(|a, b| a.0.cmp(&b.0));
                                        let mut groups = 0u64;
                                        let mut max_group = 0u64;
                                        let mut emitter = Emitter::new();
                                        let mut it = bucket.into_iter().peekable();
                                        while let Some((key, first)) = it.next() {
                                            let mut values = vec![first];
                                            while it.peek().is_some_and(|(k, _)| *k == key) {
                                                values.push(it.next().expect("peeked").1);
                                            }
                                            groups += 1;
                                            max_group = max_group.max(values.len() as u64);
                                            reducer.reduce(&key, values, &mut emitter);
                                        }
                                        (groups, max_group, emitter.into_records())
                                    },
                                )
                            });
                            hist.record(attempt.elapsed().as_nanos() as u64);
                            out
                        })
                    })
                    .collect::<Vec<TaskOut<R::OutKey, R::OutValue>>>()
            },
        );

        let mut output = Vec::new();
        for (groups, max_group, records) in reduced {
            metrics.reduce_input_groups += groups;
            metrics.max_reduce_group = metrics.max_reduce_group.max(max_group);
            metrics.reduce_output_records += records.len() as u64;
            output.extend(records);
        }
        metrics.reduce_time = reduce_dur;
        metrics.reduce_task_times = task_times(&reduce_task_ns);
        output
    }

    /// Final metric bookkeeping shared by every execution path: recovery
    /// counters and the user-counter snapshot. Recovery events also flow
    /// into the global obsv registry so chaos is visible in `--stats`
    /// reports without plumbing metrics by hand.
    pub(crate) fn finish_metrics(&self, metrics: &mut JobMetrics, chaos: &ChaosCtx) {
        chaos.fill_metrics(metrics);
        if metrics.task_retries > 0 {
            obsv::global()
                .counter("task_retries")
                .inc(metrics.task_retries);
        }
        if metrics.corruption_retries > 0 {
            obsv::global()
                .counter("corruption_retries")
                .inc(metrics.corruption_retries);
        }
        if metrics.speculative_launched > 0 {
            obsv::global()
                .counter("speculative_launched")
                .inc(metrics.speculative_launched);
        }
        if metrics.speculative_wins > 0 {
            obsv::global()
                .counter("speculative_wins")
                .inc(metrics.speculative_wins);
        }
        if let Some(s) = &self.spill {
            metrics.spill_bytes = s.job_spill.load(Ordering::Relaxed);
            metrics.backpressure_stall_ns = s.job_stall.load(Ordering::Relaxed);
        }
        if let Some(c) = &self.counters {
            metrics.user = c.snapshot();
        }
    }
}

/// Where one map task's partitioned output lives while it waits for the
/// shuffle: resident `Vec` buckets, or one segment file with one frame
/// per reduce bucket.
pub(crate) enum TaskData<K, V> {
    /// Resident buckets plus their per-bucket `ShuffleSize` byte sums
    /// (computed here once so the shuffle never re-walks the records).
    Mem {
        buckets: Vec<Vec<(K, V)>>,
        bucket_bytes: Vec<u64>,
    },
    /// Buckets spilled to disk; one `(reduce bucket index, frame)` entry
    /// per *non-empty* bucket — empty buckets get neither a frame on disk
    /// nor a metadata slot (at `map_tasks x reduce_tasks` scale the empty
    /// metadata alone would rival the budget).
    Spilled {
        seg: Arc<SpillSegment>,
        frames: Vec<(u32, FrameMeta)>,
    },
}

/// Output of one map task: one bucket per reduce task (resident or
/// spilled), plus the record counts before and after combining.
pub(crate) struct MapTaskOut<K, V> {
    data: TaskData<K, V>,
    emitted: u64,
    combined: u64,
}

/// One slice of a reduce bucket, from one map task, in map-task order.
pub(crate) enum BucketPart<K, V> {
    /// Records held in memory since the map task produced them.
    Mem(Vec<(K, V)>),
    /// Records parked in a spill segment, decoded at materialization.
    Spilled {
        seg: Arc<SpillSegment>,
        frame: FrameMeta,
    },
}

/// One reduce task's input, kept as a lazy parts list until the reduce
/// phase materializes it under admission control.
pub(crate) struct ReduceBucket<K, V> {
    parts: Vec<BucketPart<K, V>>,
    records: u64,
    /// Bytes of the resident parts (charged against the governor when the
    /// producing map phase ran under one).
    mem_bytes: u64,
    /// Bytes parked on disk, to be charged at materialization.
    spill_bytes: u64,
    /// Whether `mem_bytes` is currently charged against the governor —
    /// true for buckets fresh out of a governed shuffle, false for cached
    /// clones handed back by the partition cache.
    charged: bool,
}

impl<K, V> ReduceBucket<K, V> {
    /// Records across all parts.
    pub(crate) fn records(&self) -> u64 {
        self.records
    }
}

// Decoding spilled frames needs (K, V): Wire, which MrKey/MrValue carry.
impl<K: MrKey, V: MrValue> ReduceBucket<K, V> {
    /// Concatenates the parts in map-task order, decoding spilled frames.
    /// Record order is exactly what the eager shuffle merge produced.
    pub(crate) fn materialize(self) -> Vec<(K, V)> {
        let mut rows = Vec::with_capacity(self.records as usize);
        for part in self.parts {
            match part {
                BucketPart::Mem(mut p) => rows.append(&mut p),
                BucketPart::Spilled { seg, frame } => rows.extend(
                    seg.read_frame::<(K, V)>(&frame)
                        .expect("spill segment read (process-local file)"),
                ),
            }
        }
        rows
    }

    /// A clone for the partition cache: resident parts deep-copy, spilled
    /// parts share their segment (already on disk — no resident cost).
    /// The clone is never governor-charged; its resident bytes belong to
    /// the cache, not to a running job.
    pub(crate) fn cache_clone(&self) -> Self
    where
        V: Clone,
    {
        ReduceBucket {
            parts: self
                .parts
                .iter()
                .map(|p| match p {
                    BucketPart::Mem(rows) => BucketPart::Mem(rows.clone()),
                    BucketPart::Spilled { seg, frame } => BucketPart::Spilled {
                        seg: Arc::clone(seg),
                        frame: frame.clone(),
                    },
                })
                .collect(),
            records: self.records,
            mem_bytes: self.mem_bytes,
            spill_bytes: self.spill_bytes,
            charged: false,
        }
    }

    /// Rewrites the resident parts into a spill segment (used by the
    /// partition cache when retaining a clone would breach the budget).
    /// Returns the bytes moved to disk.
    pub(crate) fn spill_mem_parts(&mut self, governor: &MemoryGovernor, label: &str) -> u64 {
        if self.mem_bytes == 0 {
            return 0;
        }
        let mut writer = match governor.segment(label) {
            Ok(w) => w,
            Err(e) => {
                // Spill tier unavailable: keep the resident copy (and
                // let the governor disable the tier on ENOSPC).
                governor.note_spill_error(&e);
                return 0;
            }
        };
        let mut moved = 0u64;
        let mut metas = Vec::new();
        for part in &self.parts {
            if let BucketPart::Mem(rows) = part {
                match writer.write_frame(rows) {
                    Ok(meta) => metas.push(meta),
                    Err(e) => {
                        governor.note_spill_error(&e);
                        return 0;
                    }
                }
            }
        }
        let seg = match writer.finish() {
            Ok(seg) => seg,
            Err(e) => {
                // An unflushable segment is not durable — stay resident.
                governor.note_spill_error(&e);
                return 0;
            }
        };
        let seg = Arc::new(seg);
        let mut metas = metas.into_iter();
        for part in &mut self.parts {
            if matches!(part, BucketPart::Mem(_)) {
                let meta = metas.next().expect("one frame per mem part");
                moved += meta.record_bytes;
                *part = BucketPart::Spilled {
                    seg: Arc::clone(&seg),
                    frame: meta,
                };
            }
        }
        self.spill_bytes += moved;
        self.mem_bytes -= moved;
        governor.note_spill(moved);
        moved
    }
}

/// One map task's body: map every record, combine, partition, and account
/// per-bucket shuffle bytes.
fn map_one_task<M: Mapper>(
    mapper: &M,
    combiner: Option<&(dyn Combiner<Key = M::OutKey, Value = M::OutValue> + Send + Sync)>,
    partitioner: &dyn Partitioner<M::OutKey>,
    r_tasks: usize,
    records: Vec<(M::InKey, M::InValue)>,
) -> MapTaskOut<M::OutKey, M::OutValue> {
    let mut emitter = Emitter::new();
    for (k, v) in records {
        mapper.map(k, v, &mut emitter);
    }
    let mut out = emitter.into_records();
    let emitted = out.len() as u64;

    if let Some(c) = combiner {
        out = run_combiner(c, out);
    }
    let combined = out.len() as u64;

    let mut buckets: Vec<Vec<(M::OutKey, M::OutValue)>> =
        (0..r_tasks).map(|_| Vec::new()).collect();
    let mut bucket_bytes = vec![0u64; r_tasks];
    for (k, v) in out {
        let b = partitioner.partition(&k, r_tasks);
        debug_assert!(b < r_tasks, "partitioner returned out-of-range bucket");
        bucket_bytes[b] += k.shuffle_bytes() + v.shuffle_bytes();
        buckets[b].push((k, v));
    }
    MapTaskOut {
        data: TaskData::Mem {
            buckets,
            bucket_bytes,
        },
        emitted,
        combined,
    }
}

/// Charges a completed map task's resident bytes against the budget and
/// spills its buckets to a segment (one frame per reduce bucket) when the
/// governor reports pressure. Falls back to staying resident on any spill
/// I/O error — correctness never depends on the disk.
fn spill_task_under_pressure<K: MrKey, V: MrValue>(
    ctx: &SpillCtx,
    job: &str,
    out: MapTaskOut<K, V>,
) -> MapTaskOut<K, V> {
    let TaskData::Mem {
        buckets,
        bucket_bytes,
    } = &out.data
    else {
        return out;
    };
    let total: u64 = bucket_bytes.iter().sum();
    ctx.governor.charge(total);
    if total == 0 || !ctx.governor.should_spill() {
        return out;
    }
    let mut writer = match ctx.governor.segment(job) {
        Ok(w) => w,
        Err(e) => {
            ctx.governor.note_spill_error(&e);
            return out;
        }
    };
    let mut frames = Vec::new();
    for (r, bucket) in buckets.iter().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        match writer.write_frame(bucket) {
            Ok(meta) => frames.push((r as u32, meta)),
            Err(e) => {
                ctx.governor.note_spill_error(&e);
                return out;
            }
        }
    }
    let seg = match writer.finish() {
        Ok(seg) => seg,
        Err(e) => {
            // The segment never became durable (sync failed): treat it
            // like any other spill failure and keep the data resident.
            ctx.governor.note_spill_error(&e);
            return out;
        }
    };
    ctx.governor.uncharge(total);
    ctx.governor.note_spill(total);
    ctx.job_spill.fetch_add(total, Ordering::Relaxed);
    MapTaskOut {
        data: TaskData::Spilled {
            seg: Arc::new(seg),
            frames,
        },
        emitted: out.emitted,
        combined: out.combined,
    }
}

/// Compresses a phase's per-task duration histogram into the fixed
/// [`TaskTimes`] summary stored on [`JobMetrics`].
fn task_times(h: &obsv::Histogram) -> TaskTimes {
    let s = h.summary();
    TaskTimes {
        tasks: s.count,
        p50_ns: s.p50,
        p95_ns: s.p95,
        p99_ns: s.p99,
        max_ns: s.max,
    }
}

/// Speculation fires only after this many tasks of the phase completed
/// (the quantile is meaningless on fewer samples).
const SPECULATION_MIN_SAMPLES: usize = 3;
/// A task is declared a straggler for speculation once its projected
/// runtime exceeds this multiple of the phase's median completed-task
/// duration (Hadoop's speculative-execution heuristic, quantile form).
const SPECULATION_FACTOR: f64 = 2.0;

/// Per-job chaos state: the effective plan, recovery counters, and the
/// completed-task duration samples speculation thresholds are derived
/// from.
///
/// Attempt accounting works like the original fault path: tasks are
/// deterministic, so wasted attempts (crashes *and* checksum-detected
/// corruption) are charged to counters without re-running bodies, and a
/// task that exhausts its attempt budget kills the job. Straggler delays
/// are physically slept (capped by the plan) so recovery behavior is
/// observable in wall-clock metrics; a speculative clone that wins the
/// race against a straggler's injected delay cuts the sleep short.
pub(crate) struct ChaosCtx {
    plan: Option<ChaosPlan>,
    task_retries: AtomicU64,
    corruption_retries: AtomicU64,
    speculative_launched: AtomicU64,
    speculative_wins: AtomicU64,
    speculative_work_ns: AtomicU64,
    straggler_delay_ns: AtomicU64,
    /// Completed-task durations (ns) per phase, feeding the speculation
    /// threshold. Index 0 = map, 1 = reduce.
    completed_ns: [Mutex<Vec<u64>>; 2],
}

impl ChaosCtx {
    pub(crate) fn new(plan: Option<ChaosPlan>) -> Self {
        ChaosCtx {
            plan,
            task_retries: AtomicU64::new(0),
            corruption_retries: AtomicU64::new(0),
            speculative_launched: AtomicU64::new(0),
            speculative_wins: AtomicU64::new(0),
            speculative_work_ns: AtomicU64::new(0),
            straggler_delay_ns: AtomicU64::new(0),
            completed_ns: [Mutex::new(Vec::new()), Mutex::new(Vec::new())],
        }
    }

    fn phase_slot(phase: Phase) -> usize {
        match phase {
            Phase::Map => 0,
            Phase::Reduce => 1,
        }
    }

    /// Speculation threshold for a phase: `SPECULATION_FACTOR` × the
    /// median completed-task duration, once enough samples exist.
    fn speculation_threshold(&self, phase: Phase) -> Option<Duration> {
        let done = self.completed_ns[Self::phase_slot(phase)].lock();
        if done.len() < SPECULATION_MIN_SAMPLES {
            return None;
        }
        let mut sorted = done.clone();
        drop(done);
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        Some(Duration::from_nanos(
            (median as f64 * SPECULATION_FACTOR) as u64,
        ))
    }

    /// Runs one task body under the plan.
    ///
    /// 1. Wasted attempts (crashes, checksum-detected corruption) are
    ///    charged to the counters; exhausting the budget kills the job.
    /// 2. If the task is a scheduled straggler, it owes an injected delay.
    ///    Once the phase has enough completed samples and the projected
    ///    runtime crosses the quantile threshold, a speculative clone is
    ///    launched: the clone re-executes the (deterministic) body on a
    ///    healthy worker in roughly the task's natural time, and whichever
    ///    finishes first wins. The loser's burned work is charged to
    ///    `speculative_work_ns`.
    pub(crate) fn run_task<T>(&self, phase: Phase, task: usize, work: impl FnOnce() -> T) -> T {
        let Some(plan) = self.plan else {
            return work();
        };
        match plan.task_wastage(phase, task) {
            Some(w) => {
                if w.failed > 0 {
                    self.task_retries
                        .fetch_add(w.failed as u64, Ordering::Relaxed);
                }
                if w.corrupt > 0 {
                    self.corruption_retries
                        .fetch_add(w.corrupt as u64, Ordering::Relaxed);
                }
            }
            None => panic!(
                "{phase:?} task {task} failed {} consecutive attempts; job killed \
                 (like Hadoop after mapred.max.attempts)",
                plan.fault.max_attempts
            ),
        }
        let start = Instant::now();
        let out = work();
        let natural = start.elapsed();
        if plan.is_straggler(phase, task) {
            let extra = plan.straggler_delay(natural);
            if !extra.is_zero() {
                self.handle_straggler(phase, natural, extra);
            }
        }
        self.completed_ns[Self::phase_slot(phase)]
            .lock()
            .push(natural.as_nanos() as u64);
        out
    }

    /// Serves a straggler's injected delay, racing a speculative clone
    /// against it when the threshold allows.
    fn handle_straggler(&self, phase: Phase, natural: Duration, extra: Duration) {
        let speculate = self
            .speculation_threshold(phase)
            .is_some_and(|threshold| natural + extra > threshold);
        if speculate {
            self.speculative_launched.fetch_add(1, Ordering::Relaxed);
            // The clone re-runs the deterministic body from scratch on a
            // healthy worker: it needs ~`natural` from launch, while the
            // original still owes `extra`. First result wins; the loser
            // is killed and its burned work is wasted.
            let clone_time = natural;
            if clone_time < extra {
                self.speculative_wins.fetch_add(1, Ordering::Relaxed);
                self.speculative_work_ns
                    .fetch_add(clone_time.as_nanos() as u64, Ordering::Relaxed);
                std::thread::sleep(clone_time);
            } else {
                self.speculative_work_ns
                    .fetch_add(extra.as_nanos() as u64, Ordering::Relaxed);
                self.straggler_delay_ns
                    .fetch_add(extra.as_nanos() as u64, Ordering::Relaxed);
                std::thread::sleep(extra);
            }
        } else {
            self.straggler_delay_ns
                .fetch_add(extra.as_nanos() as u64, Ordering::Relaxed);
            std::thread::sleep(extra);
        }
    }

    /// Copies the recovery counters into a job's metrics.
    pub(crate) fn fill_metrics(&self, metrics: &mut JobMetrics) {
        metrics.task_retries = self.task_retries.load(Ordering::Relaxed);
        metrics.corruption_retries = self.corruption_retries.load(Ordering::Relaxed);
        metrics.speculative_launched = self.speculative_launched.load(Ordering::Relaxed);
        metrics.speculative_wins = self.speculative_wins.load(Ordering::Relaxed);
        metrics.speculative_work_ns = self.speculative_work_ns.load(Ordering::Relaxed);
        metrics.straggler_delay_ns = self.straggler_delay_ns.load(Ordering::Relaxed);
    }
}

/// Groups a map task's output by key and applies the combiner per group.
fn run_combiner<K: MrKey, V: MrValue>(
    combiner: &(dyn Combiner<Key = K, Value = V> + Send + Sync),
    mut records: Vec<(K, V)>,
) -> Vec<(K, V)> {
    records.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = Vec::with_capacity(records.len());
    let mut it = records.into_iter().peekable();
    while let Some((key, first)) = it.next() {
        let mut values = vec![first];
        while it.peek().is_some_and(|(k, _)| *k == key) {
            values.push(it.next().expect("peeked").1);
        }
        let mut combined = combiner.combine(&key, values);
        // The key is cloned only for all-but-one output value; the last
        // value takes ownership (combiners typically emit exactly one
        // value per key, making the common case clone-free).
        if let Some(last) = combined.pop() {
            for v in combined {
                out.push((key.clone(), v));
            }
            out.push((key, last));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{FnMapper, FnReducer};

    fn wordcount_input() -> Vec<(u64, String)> {
        vec![
            (0, "the quick brown fox".to_string()),
            (1, "the lazy dog".to_string()),
            (2, "the fox".to_string()),
        ]
    }

    fn wordcount(input: Vec<(u64, String)>, config: JobConfig) -> (Vec<(String, u64)>, JobMetrics) {
        let m = FnMapper::new(|_k: u64, line: String, out: &mut Emitter<String, u64>| {
            for w in line.split_whitespace() {
                out.emit(w.to_string(), 1);
            }
        });
        let r = FnReducer::new(|k: &String, vs: Vec<u64>, out: &mut Emitter<String, u64>| {
            out.emit(k.clone(), vs.into_iter().sum());
        });
        JobBuilder::new("wordcount", m, r).config(config).run(input)
    }

    #[test]
    fn wordcount_is_correct() {
        let (mut out, metrics) = wordcount(wordcount_input(), JobConfig::uniform(2));
        out.sort();
        assert_eq!(
            out,
            vec![
                ("brown".to_string(), 1),
                ("dog".to_string(), 1),
                ("fox".to_string(), 2),
                ("lazy".to_string(), 1),
                ("quick".to_string(), 1),
                ("the".to_string(), 3),
            ]
        );
        assert_eq!(metrics.map_input_records, 3);
        assert_eq!(metrics.map_output_records, 9);
        assert_eq!(metrics.shuffle_records, 9);
        assert_eq!(metrics.reduce_input_groups, 6);
        assert_eq!(metrics.reduce_output_records, 6);
    }

    #[test]
    fn output_is_deterministic_across_task_counts() {
        let (a, _) = wordcount(wordcount_input(), JobConfig::uniform(1));
        let (b, _) = wordcount(wordcount_input(), JobConfig::uniform(7));
        let mut a = a;
        let mut b = b;
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn combiner_reduces_shuffle_volume() {
        struct SumCombiner;
        impl Combiner for SumCombiner {
            type Key = String;
            type Value = u64;
            fn combine(&self, _k: &String, vs: Vec<u64>) -> Vec<u64> {
                vec![vs.into_iter().sum()]
            }
        }

        let run = |with_combiner: bool| {
            let m = FnMapper::new(|_k: u64, line: String, out: &mut Emitter<String, u64>| {
                for w in line.split_whitespace() {
                    out.emit(w.to_string(), 1);
                }
            });
            let r = FnReducer::new(|k: &String, vs: Vec<u64>, out: &mut Emitter<String, u64>| {
                out.emit(k.clone(), vs.into_iter().sum());
            });
            let b = JobBuilder::new("wc", m, r).config(JobConfig::uniform(1));
            let b = if with_combiner {
                b.combiner(SumCombiner)
            } else {
                b
            };
            b.run(wordcount_input())
        };

        let (mut plain, m_plain) = run(false);
        let (mut combined, m_combined) = run(true);
        plain.sort();
        combined.sort();
        assert_eq!(plain, combined, "combiner must not change results");
        assert!(m_combined.shuffle_records < m_plain.shuffle_records);
        assert!(m_combined.shuffle_bytes < m_plain.shuffle_bytes);
        assert_eq!(m_combined.map_output_records, m_plain.map_output_records);
    }

    #[test]
    fn shuffle_bytes_match_record_sizes() {
        // Single word "aa" (4+2=6 bytes key) + u64 (8 bytes) = 14 per record.
        let input = vec![(0u64, "aa aa".to_string())];
        let m = FnMapper::new(|_k: u64, line: String, out: &mut Emitter<String, u64>| {
            for w in line.split_whitespace() {
                out.emit(w.to_string(), 1);
            }
        });
        let r = FnReducer::new(|k: &String, vs: Vec<u64>, out: &mut Emitter<String, u64>| {
            out.emit(k.clone(), vs.into_iter().sum());
        });
        let (_, metrics) = JobBuilder::new("wc", m, r)
            .config(JobConfig::uniform(1))
            .run(input);
        assert_eq!(metrics.shuffle_bytes, 2 * (6 + 8));
    }

    #[test]
    fn values_arrive_grouped_and_key_ordered_per_bucket() {
        // With one reduce task the full output must be key-sorted.
        let input: Vec<(u32, u32)> = (0..100).map(|i| (i, i)).collect();
        let m = FnMapper::new(|k: u32, v: u32, out: &mut Emitter<u32, u32>| {
            out.emit(k % 10, v);
        });
        let r = FnReducer::new(|k: &u32, vs: Vec<u32>, out: &mut Emitter<u32, u32>| {
            // Values of key k are 10 numbers congruent to k mod 10, in map
            // order (ascending) because of the stable shuffle.
            assert_eq!(vs.len(), 10);
            assert!(vs.windows(2).all(|w| w[0] < w[1]));
            out.emit(*k, vs.into_iter().sum());
        });
        let (out, _) = JobBuilder::new("grouping", m, r)
            .config(JobConfig {
                map_tasks: 4,
                reduce_tasks: 1,
                fault: None,
                chaos: None,
            })
            .run(input);
        let keys: Vec<u32> = out.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_runs_cleanly() {
        let (out, metrics) = wordcount(vec![], JobConfig::uniform(3));
        assert!(out.is_empty());
        assert_eq!(metrics.map_input_records, 0);
        assert_eq!(metrics.shuffle_bytes, 0);
    }

    #[test]
    fn user_counters_are_snapshotted() {
        let counters = Counters::new();
        let cc = counters.clone();
        let m = FnMapper::new(move |_k: u64, v: u64, out: &mut Emitter<u64, u64>| {
            cc.inc("seen", 1);
            out.emit(v % 2, v);
        });
        let r = FnReducer::new(|k: &u64, vs: Vec<u64>, out: &mut Emitter<u64, u64>| {
            out.emit(*k, vs.len() as u64);
        });
        let input: Vec<(u64, u64)> = (0..10).map(|i| (i, i)).collect();
        let (_, metrics) = JobBuilder::new("counted", m, r)
            .counters(counters)
            .config(JobConfig::uniform(2))
            .run(input);
        assert_eq!(metrics.user["seen"], 10);
    }

    #[test]
    fn custom_partitioner_controls_bucket() {
        struct AllToZero;
        impl Partitioner<u32> for AllToZero {
            fn partition(&self, _key: &u32, _num: usize) -> usize {
                0
            }
        }
        let m = FnMapper::new(|k: u32, v: u32, out: &mut Emitter<u32, u32>| out.emit(k, v));
        let r = FnReducer::new(|k: &u32, vs: Vec<u32>, out: &mut Emitter<u32, u32>| {
            out.emit(*k, vs.len() as u32);
        });
        let input: Vec<(u32, u32)> = (0..20).map(|i| (i, i)).collect();
        let (out, _) = JobBuilder::new("skewed", m, r)
            .partitioner(AllToZero)
            .config(JobConfig {
                map_tasks: 2,
                reduce_tasks: 4,
                fault: None,
                chaos: None,
            })
            .run(input);
        // All keys land in bucket 0, so the output is globally key-sorted.
        let keys: Vec<u32> = out.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn skew_counters_report_largest_group_and_task() {
        // 90 records on one key, 10 on another.
        let mut input: Vec<(u32, u32)> = (0..90).map(|i| (7, i)).collect();
        input.extend((0..10).map(|i| (3, i)));
        let m = FnMapper::new(|k: u32, v: u32, out: &mut Emitter<u32, u32>| out.emit(k, v));
        let r = FnReducer::new(|k: &u32, vs: Vec<u32>, out: &mut Emitter<u32, u32>| {
            out.emit(*k, vs.len() as u32);
        });
        let (_, metrics) = JobBuilder::new("skewed", m, r)
            .config(JobConfig {
                map_tasks: 4,
                reduce_tasks: 2,
                fault: None,
                chaos: None,
            })
            .run(input);
        assert_eq!(metrics.max_reduce_group, 90);
        assert!(metrics.max_reduce_task_records >= 90);
    }

    #[test]
    fn phase_times_are_recorded() {
        let input: Vec<(u32, u32)> = (0..1000).map(|i| (i, i)).collect();
        let m = FnMapper::new(|k: u32, v: u32, out: &mut Emitter<u32, u32>| {
            out.emit(k % 16, v);
        });
        let r = FnReducer::new(|k: &u32, vs: Vec<u32>, out: &mut Emitter<u32, u32>| {
            out.emit(*k, vs.len() as u32);
        });
        let (_, metrics) = JobBuilder::new("timed", m, r)
            .config(JobConfig::uniform(2))
            .run(input);
        assert!(metrics.map_time <= metrics.wall_time);
        assert!(metrics.reduce_time <= metrics.wall_time);
    }

    #[test]
    fn fault_injection_preserves_output_and_counts_retries() {
        use crate::fault::FaultPlan;
        let run = |plan: Option<FaultPlan>| {
            let m = FnMapper::new(|_k: u64, line: String, out: &mut Emitter<String, u64>| {
                for w in line.split_whitespace() {
                    out.emit(w.to_string(), 1);
                }
            });
            let r = FnReducer::new(|k: &String, vs: Vec<u64>, out: &mut Emitter<String, u64>| {
                out.emit(k.clone(), vs.into_iter().sum());
            });
            let b = JobBuilder::new("wc", m, r).config(JobConfig::uniform(6));
            let b = if let Some(p) = plan {
                b.fault_plan(p)
            } else {
                b
            };
            b.run(wordcount_input())
        };
        let (mut clean, m_clean) = run(None);
        // 30% failure rate: retries all but guaranteed across 12 tasks,
        // and output must be identical.
        let (mut faulty, m_faulty) = run(Some(FaultPlan::new(300, 1234)));
        clean.sort();
        faulty.sort();
        assert_eq!(clean, faulty, "fault tolerance must be invisible in output");
        assert_eq!(m_clean.task_retries, 0);
        assert!(
            m_faulty.task_retries > 0,
            "30% rate over 12 tasks must retry"
        );
    }

    #[test]
    #[should_panic(expected = "job killed")]
    fn doomed_job_is_killed() {
        use crate::fault::FaultPlan;
        // One attempt only, 99.9% failure: some map task dies.
        let plan = FaultPlan {
            fail_per_mille: 999,
            max_attempts: 1,
            seed: 8,
        };
        let m = FnMapper::new(|k: u32, v: u32, out: &mut Emitter<u32, u32>| out.emit(k, v));
        let r = FnReducer::new(|k: &u32, vs: Vec<u32>, out: &mut Emitter<u32, u32>| {
            out.emit(*k, vs.len() as u32);
        });
        let input: Vec<(u32, u32)> = (0..100).map(|i| (i, i)).collect();
        let _ = JobBuilder::new("doomed", m, r)
            .fault_plan(plan)
            .config(JobConfig::uniform(8))
            .run(input);
    }

    #[test]
    fn hash_partitioner_is_stable_and_in_range() {
        let p = HashPartitioner;
        for key in 0u64..1000 {
            let b = p.partition(&key, 7);
            assert!(b < 7);
            assert_eq!(b, p.partition(&key, 7), "partition must be deterministic");
        }
    }

    #[test]
    fn chaos_injection_preserves_output_and_counts_events() {
        use crate::fault::ChaosPlan;
        let run = |chaos: Option<ChaosPlan>| {
            let input: Vec<(u32, u32)> = (0..400).map(|i| (i, i)).collect();
            let m = FnMapper::new(|k: u32, v: u32, out: &mut Emitter<u32, u32>| {
                out.emit(k % 32, v);
            });
            let r = FnReducer::new(|k: &u32, vs: Vec<u32>, out: &mut Emitter<u32, u32>| {
                out.emit(*k, vs.into_iter().sum());
            });
            let b = JobBuilder::new("chaotic", m, r).config(JobConfig::uniform(8));
            let b = if let Some(c) = chaos {
                b.chaos_plan(c)
            } else {
                b
            };
            b.run(input)
        };
        let (mut clean, m_clean) = run(None);
        let chaos = ChaosPlan::new(100, 77)
            .with_stragglers(400, 4.0, 2)
            .with_corruption(150);
        let (mut chaotic, m_chaotic) = run(Some(chaos));
        clean.sort();
        chaotic.sort();
        assert_eq!(clean, chaotic, "chaos recovery must be invisible in output");
        assert_eq!(m_clean.task_retries + m_clean.corruption_retries, 0);
        assert!(
            m_chaotic.task_retries > 0,
            "10% crash rate over 16 tasks should retry"
        );
        assert!(
            m_chaotic.corruption_retries > 0,
            "15% corruption rate over 16 tasks should retry"
        );
        assert!(
            m_chaotic.straggler_delay_ns > 0 || m_chaotic.speculative_launched > 0,
            "40% straggler rate must charge delay or trigger speculation"
        );
    }

    #[test]
    fn speculative_clones_win_against_stragglers() {
        use crate::fault::ChaosPlan;
        // Heavy per-task work plus every task a straggler at 10× slowdown:
        // once the first few tasks complete, the quantile threshold exists
        // and later stragglers must race (and beat) their injected delay.
        let input: Vec<(u32, u32)> = (0..64).map(|i| (i, i)).collect();
        let m = FnMapper::new(|k: u32, v: u32, out: &mut Emitter<u32, u32>| {
            // ~100µs of real work so natural duration dominates noise.
            let mut acc = v;
            for i in 0..20_000u32 {
                acc = acc.wrapping_mul(1664525).wrapping_add(i);
            }
            out.emit(k % 4, acc);
        });
        let r = FnReducer::new(|k: &u32, vs: Vec<u32>, out: &mut Emitter<u32, u32>| {
            out.emit(*k, vs.into_iter().fold(0u32, u32::wrapping_add));
        });
        let chaos = ChaosPlan::new(0, 3).with_stragglers(1000, 10.0, 50);
        let (_, metrics) = JobBuilder::new("spec", m, r)
            .chaos_plan(chaos)
            .config(JobConfig {
                map_tasks: 16,
                reduce_tasks: 4,
                fault: None,
                chaos: None,
            })
            .run(input);
        assert!(
            metrics.speculative_launched > 0,
            "every task straggling at 10x must cross the 2x-median threshold"
        );
        assert!(
            metrics.speculative_wins > 0,
            "clone at 1x beats original owing 9x its runtime"
        );
        assert!(metrics.speculative_work_ns > 0);
        assert!(metrics.speculative_wins <= metrics.speculative_launched);
    }

    #[test]
    fn config_level_chaos_is_honored() {
        use crate::fault::ChaosPlan;
        let input: Vec<(u32, u32)> = (0..100).map(|i| (i, i)).collect();
        let m = FnMapper::new(|k: u32, v: u32, out: &mut Emitter<u32, u32>| out.emit(k % 8, v));
        let r = FnReducer::new(|k: &u32, vs: Vec<u32>, out: &mut Emitter<u32, u32>| {
            out.emit(*k, vs.len() as u32);
        });
        let (_, metrics) = JobBuilder::new("cfg-chaos", m, r)
            .config(JobConfig {
                map_tasks: 8,
                reduce_tasks: 8,
                fault: None,
                chaos: Some(ChaosPlan::new(300, 99)),
            })
            .run(input);
        assert!(metrics.task_retries > 0, "config-level chaos must inject");
    }
}
