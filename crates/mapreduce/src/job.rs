//! Job configuration and execution: map → (combine) → shuffle → sort/group
//! → reduce, with every phase running on the Rayon thread pool.

use crate::counters::{Counters, JobMetrics, TaskTimes};
use crate::fault::{FaultPlan, Phase};
use crate::record::ShuffleSize;
use crate::task::{Combiner, Emitter, Mapper, MrKey, Reducer};
use rayon::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Instant;

/// Decides which reduce task receives a key.
pub trait Partitioner<K>: Send + Sync {
    /// Reduce-task index for `key`, in `0..num_reducers`.
    fn partition(&self, key: &K, num_reducers: usize) -> usize;

    /// Label identifying the partitioning *function* for co-partitioning
    /// contracts (see the plan layer): two stages can only share a
    /// partitioned intermediate when their partitioners carry the same
    /// label. The default is a catch-all, so distinct custom partitioners
    /// should override it with distinct labels.
    fn contract_id(&self) -> &'static str {
        "custom"
    }
}

/// Hadoop's default: `hash(key) mod R`. Uses a fixed-seed SipHash so runs
/// are reproducible across processes.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner;

impl<K: Hash> Partitioner<K> for HashPartitioner {
    fn partition(&self, key: &K, num_reducers: usize) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % num_reducers as u64) as usize
    }

    fn contract_id(&self) -> &'static str {
        "hash"
    }
}

/// Input to a job's map phase: either an owned record list (the classic
/// `run` path) or a shared immutable snapshot. A shared snapshot is split
/// into index ranges and records are cloned inside the parallel map tasks,
/// so one materialization can feed every job of a pipeline.
pub enum MapInput<K, V> {
    /// The job consumes these records.
    Owned(Vec<(K, V)>),
    /// The job reads (clones) records out of a shared snapshot.
    Shared(Arc<Vec<(K, V)>>),
}

impl<K, V> MapInput<K, V> {
    /// Number of input records.
    pub fn len(&self) -> usize {
        match self {
            MapInput::Owned(v) => v.len(),
            MapInput::Shared(v) => v.len(),
        }
    }

    /// Whether there are no input records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Degree-of-parallelism (and fault-injection) knobs for one job.
#[derive(Debug, Clone, Copy)]
pub struct JobConfig {
    /// Number of map tasks the input is split into.
    pub map_tasks: usize,
    /// Number of reduce tasks (hash-partition buckets).
    pub reduce_tasks: usize,
    /// Optional deterministic task-failure injection (retried
    /// transparently; see [`FaultPlan`]).
    pub fault: Option<FaultPlan>,
}

impl Default for JobConfig {
    fn default() -> Self {
        let n = rayon::current_num_threads().max(1);
        JobConfig {
            map_tasks: n,
            reduce_tasks: n,
            fault: None,
        }
    }
}

impl JobConfig {
    /// A config with `n` map and `n` reduce tasks, no fault injection.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "task count must be positive");
        JobConfig {
            map_tasks: n,
            reduce_tasks: n,
            fault: None,
        }
    }
}

/// Builder for one MapReduce job.
///
/// Type parameters tie the pipeline together at compile time: the reducer's
/// input key/value types must equal the mapper's output types.
pub struct JobBuilder<M, R>
where
    M: Mapper,
    R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
{
    name: String,
    mapper: M,
    reducer: R,
    combiner: Option<Box<dyn Combiner<Key = M::OutKey, Value = M::OutValue> + Send + Sync>>,
    partitioner: Box<dyn Partitioner<M::OutKey>>,
    config: JobConfig,
    counters: Option<Counters>,
    fault_plan: Option<FaultPlan>,
}

impl<M, R> JobBuilder<M, R>
where
    M: Mapper,
    R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
{
    /// Starts building a job named `name` with the given map and reduce
    /// functions.
    pub fn new(name: impl Into<String>, mapper: M, reducer: R) -> Self {
        JobBuilder {
            name: name.into(),
            mapper,
            reducer,
            combiner: None,
            partitioner: Box::new(HashPartitioner),
            config: JobConfig::default(),
            counters: None,
            fault_plan: None,
        }
    }

    /// Installs a map-side combiner.
    pub fn combiner<C>(mut self, combiner: C) -> Self
    where
        C: Combiner<Key = M::OutKey, Value = M::OutValue> + Send + Sync + 'static,
    {
        self.combiner = Some(Box::new(combiner));
        self
    }

    /// Replaces the default hash partitioner.
    pub fn partitioner<P>(mut self, partitioner: P) -> Self
    where
        P: Partitioner<M::OutKey> + 'static,
    {
        self.partitioner = Box::new(partitioner);
        self
    }

    /// Sets the parallelism config.
    pub fn config(mut self, config: JobConfig) -> Self {
        assert!(
            config.map_tasks > 0 && config.reduce_tasks > 0,
            "task counts must be positive"
        );
        self.config = config;
        self
    }

    /// Attaches user counters whose snapshot is included in the job's
    /// metrics.
    pub fn counters(mut self, counters: Counters) -> Self {
        self.counters = Some(counters);
        self
    }

    /// Enables deterministic task-failure injection with retries —
    /// MapReduce's fault-tolerance path. Failed attempts re-run the task
    /// (paying its cost again) and are counted in
    /// [`JobMetrics::task_retries`]; a task exhausting its attempts kills
    /// the job, like Hadoop.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Runs the job to completion, returning the reduce output (ordered by
    /// reduce-task index, then by key) and the measured [`JobMetrics`].
    ///
    /// The whole job runs inside a `"job"` span, each phase inside a
    /// `"phase"` span, and every task attempt inside a `"task"` span
    /// parented (across pool threads) on its phase. The phase-time metric
    /// fields (`map_time`, `shuffle_time`, `reduce_time`, `wall_time`)
    /// are *derived from the span layer's measurements* — there is no
    /// second clock; with capture off, `timed_span` degrades to a plain
    /// stopwatch.
    #[allow(clippy::type_complexity)]
    pub fn run(
        self,
        input: Vec<(M::InKey, M::InValue)>,
    ) -> (Vec<(R::OutKey, R::OutValue)>, JobMetrics)
    where
        M::InKey: Clone + Sync,
        M::InValue: Clone + Sync,
    {
        let name = self.name.clone();
        let ((output, mut metrics), wall) = obsv::timed_span(
            "job",
            || name.clone(),
            move || self.run_phases(MapInput::Owned(input)),
        );
        metrics.wall_time = wall;
        (output, metrics)
    }

    #[allow(clippy::type_complexity)]
    fn run_phases(
        self,
        input: MapInput<M::InKey, M::InValue>,
    ) -> (Vec<(R::OutKey, R::OutValue)>, JobMetrics)
    where
        M::InKey: Clone + Sync,
        M::InValue: Clone + Sync,
    {
        let mut metrics = self.metrics_shell();
        let retries = AtomicU64::new(0);
        let map_outputs = self.map_phase(input, &mut metrics, &retries);
        let reduce_inputs = self.shuffle_phase(map_outputs, &mut metrics);
        let output = self.reduce_phase(reduce_inputs, &mut metrics, &retries);
        self.finish_metrics(&mut metrics, &retries);
        (output, metrics)
    }

    /// A metrics record carrying just this job's name; the phase methods
    /// below fill in the measurements.
    pub(crate) fn metrics_shell(&self) -> JobMetrics {
        JobMetrics {
            name: self.name.clone(),
            ..Default::default()
        }
    }

    /// This job's name.
    pub(crate) fn job_name(&self) -> &str {
        &self.name
    }

    /// This job's parallelism config.
    pub(crate) fn job_config(&self) -> &JobConfig {
        &self.config
    }

    /// The contract label of this job's partitioner (see
    /// [`Partitioner::contract_id`]).
    pub(crate) fn partitioner_contract(&self) -> &'static str {
        self.partitioner.contract_id()
    }

    /// Installs an already-boxed combiner (the plan layer erases stage
    /// types before handing them to the engine).
    pub(crate) fn boxed_combiner(
        mut self,
        combiner: Box<dyn Combiner<Key = M::OutKey, Value = M::OutValue> + Send + Sync>,
    ) -> Self {
        self.combiner = Some(combiner);
        self
    }

    /// Installs an already-boxed partitioner.
    pub(crate) fn boxed_partitioner(
        mut self,
        partitioner: Box<dyn Partitioner<M::OutKey>>,
    ) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// The fault plan in effect: an explicit [`JobBuilder::fault_plan`]
    /// wins over the config-level one.
    fn effective_fault_plan(&self) -> Option<FaultPlan> {
        self.fault_plan.or(self.config.fault)
    }

    /// Map phase (parallel over map tasks): each task maps its chunk of
    /// the input, applies the combiner, and partitions its output into one
    /// bucket per reduce task. Fills `map_input_records`, `map_time` and
    /// `map_task_times`.
    pub(crate) fn map_phase(
        &self,
        input: MapInput<M::InKey, M::InValue>,
        metrics: &mut JobMetrics,
        retries: &AtomicU64,
    ) -> Vec<MapTaskOut<M::OutKey, M::OutValue>>
    where
        M::InKey: Clone + Sync,
        M::InValue: Clone + Sync,
    {
        metrics.map_input_records = input.len() as u64;
        let r_tasks = self.config.reduce_tasks;
        let chunk = input.len().div_ceil(self.config.map_tasks).max(1);
        let mapper = &self.mapper;
        let combiner = self.combiner.as_deref();
        let partitioner = self.partitioner.as_ref();
        let fault_plan = self.effective_fault_plan();
        // Per-task attempt durations, recorded unconditionally (tasks are
        // coarse, two clock reads each are noise) and summarized into
        // `JobMetrics::map_task_times`.
        let map_task_ns = obsv::Histogram::new();

        let (map_outputs, map_dur) = obsv::timed_span(
            "phase",
            || format!("map:{}", self.name),
            || {
                let parent = obsv::current_span();
                let hist = &map_task_ns;
                let run_one = |task: usize, records: Vec<(M::InKey, M::InValue)>| {
                    obsv::with_parent(parent, move || {
                        let attempt = Instant::now();
                        let out = obsv::span!("task", format!("map-{task}") => {
                            run_task_with_plan(fault_plan, retries, Phase::Map, task, || {
                                map_one_task(mapper, combiner, partitioner, r_tasks, records)
                            })
                        });
                        hist.record(attempt.elapsed().as_nanos() as u64);
                        out
                    })
                };
                match input {
                    MapInput::Owned(rows) => {
                        let chunks: Vec<Vec<(M::InKey, M::InValue)>> = {
                            let mut chunks = Vec::new();
                            let mut it = rows.into_iter();
                            loop {
                                let c: Vec<_> = it.by_ref().take(chunk).collect();
                                if c.is_empty() {
                                    break;
                                }
                                chunks.push(c);
                            }
                            chunks
                        };
                        chunks
                            .into_par_iter()
                            .enumerate()
                            .map(|(task, records)| run_one(task, records))
                            .collect::<Vec<MapTaskOut<M::OutKey, M::OutValue>>>()
                    }
                    MapInput::Shared(rows) => {
                        // Same chunk boundaries as the owned path, so task
                        // assignment (and therefore record order downstream)
                        // is identical; records are cloned inside the
                        // parallel tasks rather than materialized up front.
                        let ranges: Vec<(usize, usize)> = (0..rows.len())
                            .step_by(chunk)
                            .map(|s| (s, (s + chunk).min(rows.len())))
                            .collect();
                        let rows = &rows;
                        ranges
                            .into_par_iter()
                            .enumerate()
                            .map(|(task, (s, e))| run_one(task, rows[s..e].to_vec()))
                            .collect::<Vec<MapTaskOut<M::OutKey, M::OutValue>>>()
                    }
                }
            },
        );
        metrics.map_time = map_dur;
        metrics.map_task_times = task_times(&map_task_ns);
        map_outputs
    }

    /// Shuffle: merge per-reduce buckets, accounting bytes. Transposing
    /// the map outputs into per-reducer columns is a cheap sequential pass
    /// over `Vec` handles; the actual merge (one big concatenation) and
    /// the per-record `shuffle_bytes` accounting — the expensive parts —
    /// run in parallel, one task per reducer. Fills the map output /
    /// combine / shuffle counters and `shuffle_time`.
    #[allow(clippy::type_complexity)]
    pub(crate) fn shuffle_phase(
        &self,
        map_outputs: Vec<MapTaskOut<M::OutKey, M::OutValue>>,
        metrics: &mut JobMetrics,
    ) -> Vec<Vec<(M::OutKey, M::OutValue)>> {
        let r_tasks = self.config.reduce_tasks;
        let (reduce_inputs, shuffle_dur) = obsv::timed_span(
            "phase",
            || format!("shuffle:{}", self.name),
            || {
                let mut columns: Vec<Vec<Vec<(M::OutKey, M::OutValue)>>> = (0..r_tasks)
                    .map(|_| Vec::with_capacity(self.config.map_tasks))
                    .collect();
                for task_out in map_outputs {
                    metrics.map_output_records += task_out.emitted;
                    metrics.combine_output_records += task_out.combined;
                    for (r, bucket) in task_out.buckets.into_iter().enumerate() {
                        columns[r].push(bucket);
                    }
                }
                let merged: Vec<(u64, Vec<(M::OutKey, M::OutValue)>)> = columns
                    .into_par_iter()
                    .map(|parts| {
                        let total: usize = parts.iter().map(Vec::len).sum();
                        let mut bucket = Vec::with_capacity(total);
                        // Concatenate in map-task order so value arrival order
                        // stays deterministic (the reduce sort below is stable).
                        for p in parts {
                            bucket.extend(p);
                        }
                        let bytes: u64 = bucket
                            .iter()
                            .map(|(k, v)| k.shuffle_bytes() + v.shuffle_bytes())
                            .sum();
                        (bytes, bucket)
                    })
                    .collect();
                let mut reduce_inputs: Vec<Vec<(M::OutKey, M::OutValue)>> =
                    Vec::with_capacity(r_tasks);
                for (bytes, bucket) in merged {
                    metrics.shuffle_records += bucket.len() as u64;
                    metrics.max_reduce_task_records =
                        metrics.max_reduce_task_records.max(bucket.len() as u64);
                    metrics.shuffle_bytes += bytes;
                    reduce_inputs.push(bucket);
                }
                reduce_inputs
            },
        );
        metrics.shuffle_time = shuffle_dur;
        reduce_inputs
    }

    /// Sort/group + reduce phase (parallel over reduce tasks). Fills the
    /// reduce counters, `reduce_time` and `reduce_task_times`.
    #[allow(clippy::type_complexity)]
    pub(crate) fn reduce_phase(
        &self,
        reduce_inputs: Vec<Vec<(M::OutKey, M::OutValue)>>,
        metrics: &mut JobMetrics,
        retries: &AtomicU64,
    ) -> Vec<(R::OutKey, R::OutValue)> {
        let reducer = &self.reducer;
        let fault_plan = self.effective_fault_plan();
        let reduce_task_ns = obsv::Histogram::new();
        // (groups, max group size, output records) per reduce task.
        type TaskOut<K, V> = (u64, u64, Vec<(K, V)>);
        let (reduced, reduce_dur) = obsv::timed_span(
            "phase",
            || format!("reduce:{}", self.name),
            || {
                let parent = obsv::current_span();
                let hist = &reduce_task_ns;
                reduce_inputs
                    .into_par_iter()
                    .enumerate()
                    .map(|(task, bucket)| {
                        obsv::with_parent(parent, move || {
                            let attempt = Instant::now();
                            let out = obsv::span!("task", format!("reduce-{task}") => {
                                run_task_with_plan(
                                    fault_plan,
                                    retries,
                                    Phase::Reduce,
                                    task,
                                    move || {
                                        let mut bucket = bucket;
                                        // Stable sort by key keeps value arrival
                                        // order deterministic (map-task index
                                        // order, preserved by the merge above).
                                        bucket.sort_by(|a, b| a.0.cmp(&b.0));
                                        let mut groups = 0u64;
                                        let mut max_group = 0u64;
                                        let mut emitter = Emitter::new();
                                        let mut it = bucket.into_iter().peekable();
                                        while let Some((key, first)) = it.next() {
                                            let mut values = vec![first];
                                            while it.peek().is_some_and(|(k, _)| *k == key) {
                                                values.push(it.next().expect("peeked").1);
                                            }
                                            groups += 1;
                                            max_group = max_group.max(values.len() as u64);
                                            reducer.reduce(&key, values, &mut emitter);
                                        }
                                        (groups, max_group, emitter.into_records())
                                    },
                                )
                            });
                            hist.record(attempt.elapsed().as_nanos() as u64);
                            out
                        })
                    })
                    .collect::<Vec<TaskOut<R::OutKey, R::OutValue>>>()
            },
        );

        let mut output = Vec::new();
        for (groups, max_group, records) in reduced {
            metrics.reduce_input_groups += groups;
            metrics.max_reduce_group = metrics.max_reduce_group.max(max_group);
            metrics.reduce_output_records += records.len() as u64;
            output.extend(records);
        }
        metrics.reduce_time = reduce_dur;
        metrics.reduce_task_times = task_times(&reduce_task_ns);
        output
    }

    /// Final metric bookkeeping shared by every execution path: retry
    /// count and the user-counter snapshot.
    pub(crate) fn finish_metrics(&self, metrics: &mut JobMetrics, retries: &AtomicU64) {
        metrics.task_retries = retries.load(std::sync::atomic::Ordering::Relaxed);
        if let Some(c) = &self.counters {
            metrics.user = c.snapshot();
        }
    }
}

/// Output of one map task: one bucket per reduce task, plus the record
/// counts before and after combining.
pub(crate) struct MapTaskOut<K, V> {
    buckets: Vec<Vec<(K, V)>>,
    emitted: u64,
    combined: u64,
}

/// One map task's body: map every record, combine, partition.
fn map_one_task<M: Mapper>(
    mapper: &M,
    combiner: Option<&(dyn Combiner<Key = M::OutKey, Value = M::OutValue> + Send + Sync)>,
    partitioner: &dyn Partitioner<M::OutKey>,
    r_tasks: usize,
    records: Vec<(M::InKey, M::InValue)>,
) -> MapTaskOut<M::OutKey, M::OutValue> {
    let mut emitter = Emitter::new();
    for (k, v) in records {
        mapper.map(k, v, &mut emitter);
    }
    let mut out = emitter.into_records();
    let emitted = out.len() as u64;

    if let Some(c) = combiner {
        out = run_combiner(c, out);
    }
    let combined = out.len() as u64;

    let mut buckets: Vec<Vec<(M::OutKey, M::OutValue)>> =
        (0..r_tasks).map(|_| Vec::new()).collect();
    for (k, v) in out {
        let b = partitioner.partition(&k, r_tasks);
        debug_assert!(b < r_tasks, "partitioner returned out-of-range bucket");
        buckets[b].push((k, v));
    }
    MapTaskOut {
        buckets,
        emitted,
        combined,
    }
}

/// Compresses a phase's per-task duration histogram into the fixed
/// [`TaskTimes`] summary stored on [`JobMetrics`].
fn task_times(h: &obsv::Histogram) -> TaskTimes {
    let s = h.summary();
    TaskTimes {
        tasks: s.count,
        p50_ns: s.p50,
        p95_ns: s.p95,
        p99_ns: s.p99,
        max_ns: s.max,
    }
}

/// Runs one task body, accounting injected failures: wasted attempts are
/// counted into `retries` (tasks are deterministic, so the successful
/// attempt's output equals what re-execution would produce); a task whose
/// every attempt fails kills the job.
fn run_task_with_plan<T>(
    plan: Option<FaultPlan>,
    retries: &std::sync::atomic::AtomicU64,
    phase: Phase,
    task: usize,
    work: impl FnOnce() -> T,
) -> T {
    if let Some(plan) = plan {
        match plan.attempts_before_success(phase, task) {
            Some(wasted) => {
                retries.fetch_add(wasted as u64, std::sync::atomic::Ordering::Relaxed);
            }
            None => panic!(
                "{phase:?} task {task} failed {} consecutive attempts; job killed                  (like Hadoop after mapred.max.attempts)",
                plan.max_attempts
            ),
        }
    }
    work()
}

/// Groups a map task's output by key and applies the combiner per group.
fn run_combiner<K: MrKey, V>(
    combiner: &(dyn Combiner<Key = K, Value = V> + Send + Sync),
    mut records: Vec<(K, V)>,
) -> Vec<(K, V)>
where
    V: Send + Sync + ShuffleSize,
{
    records.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = Vec::with_capacity(records.len());
    let mut it = records.into_iter().peekable();
    while let Some((key, first)) = it.next() {
        let mut values = vec![first];
        while it.peek().is_some_and(|(k, _)| *k == key) {
            values.push(it.next().expect("peeked").1);
        }
        let mut combined = combiner.combine(&key, values);
        // The key is cloned only for all-but-one output value; the last
        // value takes ownership (combiners typically emit exactly one
        // value per key, making the common case clone-free).
        if let Some(last) = combined.pop() {
            for v in combined {
                out.push((key.clone(), v));
            }
            out.push((key, last));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{FnMapper, FnReducer};

    fn wordcount_input() -> Vec<(u64, String)> {
        vec![
            (0, "the quick brown fox".to_string()),
            (1, "the lazy dog".to_string()),
            (2, "the fox".to_string()),
        ]
    }

    fn wordcount(input: Vec<(u64, String)>, config: JobConfig) -> (Vec<(String, u64)>, JobMetrics) {
        let m = FnMapper::new(|_k: u64, line: String, out: &mut Emitter<String, u64>| {
            for w in line.split_whitespace() {
                out.emit(w.to_string(), 1);
            }
        });
        let r = FnReducer::new(|k: &String, vs: Vec<u64>, out: &mut Emitter<String, u64>| {
            out.emit(k.clone(), vs.into_iter().sum());
        });
        JobBuilder::new("wordcount", m, r).config(config).run(input)
    }

    #[test]
    fn wordcount_is_correct() {
        let (mut out, metrics) = wordcount(wordcount_input(), JobConfig::uniform(2));
        out.sort();
        assert_eq!(
            out,
            vec![
                ("brown".to_string(), 1),
                ("dog".to_string(), 1),
                ("fox".to_string(), 2),
                ("lazy".to_string(), 1),
                ("quick".to_string(), 1),
                ("the".to_string(), 3),
            ]
        );
        assert_eq!(metrics.map_input_records, 3);
        assert_eq!(metrics.map_output_records, 9);
        assert_eq!(metrics.shuffle_records, 9);
        assert_eq!(metrics.reduce_input_groups, 6);
        assert_eq!(metrics.reduce_output_records, 6);
    }

    #[test]
    fn output_is_deterministic_across_task_counts() {
        let (a, _) = wordcount(wordcount_input(), JobConfig::uniform(1));
        let (b, _) = wordcount(wordcount_input(), JobConfig::uniform(7));
        let mut a = a;
        let mut b = b;
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn combiner_reduces_shuffle_volume() {
        struct SumCombiner;
        impl Combiner for SumCombiner {
            type Key = String;
            type Value = u64;
            fn combine(&self, _k: &String, vs: Vec<u64>) -> Vec<u64> {
                vec![vs.into_iter().sum()]
            }
        }

        let run = |with_combiner: bool| {
            let m = FnMapper::new(|_k: u64, line: String, out: &mut Emitter<String, u64>| {
                for w in line.split_whitespace() {
                    out.emit(w.to_string(), 1);
                }
            });
            let r = FnReducer::new(|k: &String, vs: Vec<u64>, out: &mut Emitter<String, u64>| {
                out.emit(k.clone(), vs.into_iter().sum());
            });
            let b = JobBuilder::new("wc", m, r).config(JobConfig::uniform(1));
            let b = if with_combiner {
                b.combiner(SumCombiner)
            } else {
                b
            };
            b.run(wordcount_input())
        };

        let (mut plain, m_plain) = run(false);
        let (mut combined, m_combined) = run(true);
        plain.sort();
        combined.sort();
        assert_eq!(plain, combined, "combiner must not change results");
        assert!(m_combined.shuffle_records < m_plain.shuffle_records);
        assert!(m_combined.shuffle_bytes < m_plain.shuffle_bytes);
        assert_eq!(m_combined.map_output_records, m_plain.map_output_records);
    }

    #[test]
    fn shuffle_bytes_match_record_sizes() {
        // Single word "aa" (4+2=6 bytes key) + u64 (8 bytes) = 14 per record.
        let input = vec![(0u64, "aa aa".to_string())];
        let m = FnMapper::new(|_k: u64, line: String, out: &mut Emitter<String, u64>| {
            for w in line.split_whitespace() {
                out.emit(w.to_string(), 1);
            }
        });
        let r = FnReducer::new(|k: &String, vs: Vec<u64>, out: &mut Emitter<String, u64>| {
            out.emit(k.clone(), vs.into_iter().sum());
        });
        let (_, metrics) = JobBuilder::new("wc", m, r)
            .config(JobConfig::uniform(1))
            .run(input);
        assert_eq!(metrics.shuffle_bytes, 2 * (6 + 8));
    }

    #[test]
    fn values_arrive_grouped_and_key_ordered_per_bucket() {
        // With one reduce task the full output must be key-sorted.
        let input: Vec<(u32, u32)> = (0..100).map(|i| (i, i)).collect();
        let m = FnMapper::new(|k: u32, v: u32, out: &mut Emitter<u32, u32>| {
            out.emit(k % 10, v);
        });
        let r = FnReducer::new(|k: &u32, vs: Vec<u32>, out: &mut Emitter<u32, u32>| {
            // Values of key k are 10 numbers congruent to k mod 10, in map
            // order (ascending) because of the stable shuffle.
            assert_eq!(vs.len(), 10);
            assert!(vs.windows(2).all(|w| w[0] < w[1]));
            out.emit(*k, vs.into_iter().sum());
        });
        let (out, _) = JobBuilder::new("grouping", m, r)
            .config(JobConfig {
                map_tasks: 4,
                reduce_tasks: 1,
                fault: None,
            })
            .run(input);
        let keys: Vec<u32> = out.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_runs_cleanly() {
        let (out, metrics) = wordcount(vec![], JobConfig::uniform(3));
        assert!(out.is_empty());
        assert_eq!(metrics.map_input_records, 0);
        assert_eq!(metrics.shuffle_bytes, 0);
    }

    #[test]
    fn user_counters_are_snapshotted() {
        let counters = Counters::new();
        let cc = counters.clone();
        let m = FnMapper::new(move |_k: u64, v: u64, out: &mut Emitter<u64, u64>| {
            cc.inc("seen", 1);
            out.emit(v % 2, v);
        });
        let r = FnReducer::new(|k: &u64, vs: Vec<u64>, out: &mut Emitter<u64, u64>| {
            out.emit(*k, vs.len() as u64);
        });
        let input: Vec<(u64, u64)> = (0..10).map(|i| (i, i)).collect();
        let (_, metrics) = JobBuilder::new("counted", m, r)
            .counters(counters)
            .config(JobConfig::uniform(2))
            .run(input);
        assert_eq!(metrics.user["seen"], 10);
    }

    #[test]
    fn custom_partitioner_controls_bucket() {
        struct AllToZero;
        impl Partitioner<u32> for AllToZero {
            fn partition(&self, _key: &u32, _num: usize) -> usize {
                0
            }
        }
        let m = FnMapper::new(|k: u32, v: u32, out: &mut Emitter<u32, u32>| out.emit(k, v));
        let r = FnReducer::new(|k: &u32, vs: Vec<u32>, out: &mut Emitter<u32, u32>| {
            out.emit(*k, vs.len() as u32);
        });
        let input: Vec<(u32, u32)> = (0..20).map(|i| (i, i)).collect();
        let (out, _) = JobBuilder::new("skewed", m, r)
            .partitioner(AllToZero)
            .config(JobConfig {
                map_tasks: 2,
                reduce_tasks: 4,
                fault: None,
            })
            .run(input);
        // All keys land in bucket 0, so the output is globally key-sorted.
        let keys: Vec<u32> = out.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn skew_counters_report_largest_group_and_task() {
        // 90 records on one key, 10 on another.
        let mut input: Vec<(u32, u32)> = (0..90).map(|i| (7, i)).collect();
        input.extend((0..10).map(|i| (3, i)));
        let m = FnMapper::new(|k: u32, v: u32, out: &mut Emitter<u32, u32>| out.emit(k, v));
        let r = FnReducer::new(|k: &u32, vs: Vec<u32>, out: &mut Emitter<u32, u32>| {
            out.emit(*k, vs.len() as u32);
        });
        let (_, metrics) = JobBuilder::new("skewed", m, r)
            .config(JobConfig {
                map_tasks: 4,
                reduce_tasks: 2,
                fault: None,
            })
            .run(input);
        assert_eq!(metrics.max_reduce_group, 90);
        assert!(metrics.max_reduce_task_records >= 90);
    }

    #[test]
    fn phase_times_are_recorded() {
        let input: Vec<(u32, u32)> = (0..1000).map(|i| (i, i)).collect();
        let m = FnMapper::new(|k: u32, v: u32, out: &mut Emitter<u32, u32>| {
            out.emit(k % 16, v);
        });
        let r = FnReducer::new(|k: &u32, vs: Vec<u32>, out: &mut Emitter<u32, u32>| {
            out.emit(*k, vs.len() as u32);
        });
        let (_, metrics) = JobBuilder::new("timed", m, r)
            .config(JobConfig::uniform(2))
            .run(input);
        assert!(metrics.map_time <= metrics.wall_time);
        assert!(metrics.reduce_time <= metrics.wall_time);
    }

    #[test]
    fn fault_injection_preserves_output_and_counts_retries() {
        use crate::fault::FaultPlan;
        let run = |plan: Option<FaultPlan>| {
            let m = FnMapper::new(|_k: u64, line: String, out: &mut Emitter<String, u64>| {
                for w in line.split_whitespace() {
                    out.emit(w.to_string(), 1);
                }
            });
            let r = FnReducer::new(|k: &String, vs: Vec<u64>, out: &mut Emitter<String, u64>| {
                out.emit(k.clone(), vs.into_iter().sum());
            });
            let b = JobBuilder::new("wc", m, r).config(JobConfig::uniform(6));
            let b = if let Some(p) = plan {
                b.fault_plan(p)
            } else {
                b
            };
            b.run(wordcount_input())
        };
        let (mut clean, m_clean) = run(None);
        // 30% failure rate: retries all but guaranteed across 12 tasks,
        // and output must be identical.
        let (mut faulty, m_faulty) = run(Some(FaultPlan::new(300, 1234)));
        clean.sort();
        faulty.sort();
        assert_eq!(clean, faulty, "fault tolerance must be invisible in output");
        assert_eq!(m_clean.task_retries, 0);
        assert!(
            m_faulty.task_retries > 0,
            "30% rate over 12 tasks must retry"
        );
    }

    #[test]
    #[should_panic(expected = "job killed")]
    fn doomed_job_is_killed() {
        use crate::fault::FaultPlan;
        // One attempt only, 99.9% failure: some map task dies.
        let plan = FaultPlan {
            fail_per_mille: 999,
            max_attempts: 1,
            seed: 8,
        };
        let m = FnMapper::new(|k: u32, v: u32, out: &mut Emitter<u32, u32>| out.emit(k, v));
        let r = FnReducer::new(|k: &u32, vs: Vec<u32>, out: &mut Emitter<u32, u32>| {
            out.emit(*k, vs.len() as u32);
        });
        let input: Vec<(u32, u32)> = (0..100).map(|i| (i, i)).collect();
        let _ = JobBuilder::new("doomed", m, r)
            .fault_plan(plan)
            .config(JobConfig::uniform(8))
            .run(input);
    }

    #[test]
    fn hash_partitioner_is_stable_and_in_range() {
        let p = HashPartitioner;
        for key in 0u64..1000 {
            let b = p.partition(&key, 7);
            assert!(b < 7);
            assert_eq!(b, p.partition(&key, 7), "partition must be deterministic");
        }
    }
}
