//! A small write-ahead log for [`DeltaBatch`]es.
//!
//! Layout: a sequence of records, each a little-endian `u32` length
//! followed by that many bytes of checksummed frame
//! ([`mapreduce::wire::encode_framed`]). The length prefix delimits
//! records (frames themselves carry a checksum but no length); the
//! frame checksum catches corruption within a record.
//!
//! Recovery contract: [`Wal::open`] replays every intact record and
//! *truncates* a torn or corrupt tail — the classic WAL convention that
//! a crash mid-append loses at most the batch being appended, never a
//! previously acknowledged one. Appends (and truncations) are fsynced
//! before returning, so acknowledged batches survive power loss, not
//! just process death. The log is truncated whole only by
//! [`Wal::clear`], which the session invokes *after* a compacted
//! artifact durably holds its batches — a crash any earlier leaves
//! every batch replayable.

use crate::batch::DeltaBatch;
use mapreduce::io_shim::{FaultFile, FaultFs};
use mapreduce::wire::{decode_framed, encode_framed};
use std::path::{Path, PathBuf};

/// Append handle over a WAL file (created empty if absent).
pub struct Wal {
    path: PathBuf,
    file: FaultFile,
    fs: FaultFs,
}

/// What [`Wal::open`] recovered from an existing log.
pub struct WalRecovery {
    /// Every intact batch, in append order.
    pub batches: Vec<DeltaBatch>,
    /// Bytes discarded from a torn/corrupt tail (0 for a clean log).
    pub torn_bytes: u64,
}

impl Wal {
    /// Opens (or creates) the log at `path`, replaying intact records
    /// and truncating any torn tail in place. I/O flows through the
    /// process-global [`FaultFs`].
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<(Wal, WalRecovery)> {
        Wal::open_with(path, FaultFs::default())
    }

    /// [`Wal::open`] with an explicit fault domain — the injection
    /// point for storage-fault drills.
    pub fn open_with(path: impl AsRef<Path>, fs: FaultFs) -> std::io::Result<(Wal, WalRecovery)> {
        let path = path.as_ref().to_path_buf();
        let created = !path.exists();
        let mut file = fs.open_append(&path)?;
        if created {
            // A freshly created log is only durable once its directory
            // entry is — without this, a power cut can lose the *file*
            // even though every append was fsynced (same dir-sync the
            // model artifact save does after its rename).
            if let Some(dir) = path.parent() {
                fs.fsync_dir(dir)?;
            }
        }

        let bytes = file.read_all()?;

        let mut batches = Vec::new();
        let mut good = 0usize;
        let mut at = 0usize;
        while at + 4 <= bytes.len() {
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
            let Some(frame) = bytes.get(at + 4..at + 4 + len) else {
                break; // torn length or torn frame
            };
            let Ok(batch) = decode_framed::<DeltaBatch>(frame) else {
                break; // checksum/layout failure: stop at the last good record
            };
            batches.push(batch);
            at += 4 + len;
            good = at;
        }
        let torn_bytes = (bytes.len() - good) as u64;
        if torn_bytes > 0 {
            file.set_len(good as u64)?;
            file.sync_all()?;
        }
        Ok((
            Wal { path, file, fs },
            WalRecovery {
                batches,
                torn_bytes,
            },
        ))
    }

    /// Appends one batch and fsyncs it to stable storage before
    /// returning — the acknowledgement point of the write path. (A
    /// plain flush would only reach the OS page cache; power loss could
    /// then drop an acknowledged batch.)
    pub fn append(&mut self, batch: &DeltaBatch) -> std::io::Result<()> {
        let frame = encode_framed(batch);
        let mut record = Vec::with_capacity(4 + frame.len());
        record.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        record.extend_from_slice(&frame);
        self.file.write_all(&record)?;
        self.file.sync_data()
    }

    /// Drops every record — called only after compaction's artifact
    /// durably holds the log's batches. The truncation is fsynced with
    /// `sync_all` (a length change is *metadata*, which `sync_data` is
    /// allowed to skip) and the parent directory is synced too, so
    /// retired batches cannot resurface after power loss.
    pub fn clear(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.sync_all()?;
        if let Some(dir) = self.path.parent() {
            self.fs.fsync_dir(dir)?;
        }
        Ok(())
    }

    /// The log's location on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::DeltaOp;
    use std::fs::OpenOptions;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ingest-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn batch(seq: u64) -> DeltaBatch {
        DeltaBatch {
            model_version: 1 + seq,
            seq,
            ops: vec![DeltaOp::Insert(vec![seq as f64]), DeltaOp::Delete(seq)],
        }
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let path = tmp("replay.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, rec) = Wal::open(&path).unwrap();
        assert!(rec.batches.is_empty());
        for seq in 0..5 {
            wal.append(&batch(seq)).unwrap();
        }
        drop(wal);
        let (_, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.torn_bytes, 0);
        assert_eq!(rec.batches, (0..5).map(batch).collect::<Vec<_>>());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let path = tmp("torn.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(&batch(0)).unwrap();
        wal.append(&batch(1)).unwrap();
        drop(wal);

        // Simulate a crash mid-append: chop the last record short.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let (_, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.batches, vec![batch(0)]);
        assert!(rec.torn_bytes > 0);

        // The truncation is durable: a further reopen sees a clean log.
        let (_, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.torn_bytes, 0);
        assert_eq!(rec.batches, vec![batch(0)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_stops_replay_at_the_last_good_one() {
        let path = tmp("corrupt.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(&batch(0)).unwrap();
        let first_end = std::fs::metadata(&path).unwrap().len();
        wal.append(&batch(1)).unwrap();
        drop(wal);

        // Flip a payload byte of the second record; its checksum fails.
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = first_end as usize + 10;
        bytes[idx] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let (_, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.batches, vec![batch(0)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn clear_empties_the_log() {
        let path = tmp("clear.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(&batch(0)).unwrap();
        wal.clear().unwrap();
        wal.append(&batch(9)).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.batches, vec![batch(9)]);
        std::fs::remove_file(&path).ok();
    }
}
