//! # ingest — the model lifecycle subsystem
//!
//! The batch pipelines in [`ddp`] fit a [`ClusterModel`] once; this
//! crate keeps that model *alive* under writes. Three mechanisms:
//!
//! * **Batched incremental ingest** — [`IngestSession::apply`] takes a
//!   [`DeltaBatch`] of point inserts/deletes and updates `rho`, `delta`,
//!   upslope links, and labels for only the LSH buckets the batch
//!   touches, using the localized kernels in [`dp_core::update`]. Every
//!   point an update brushes is marked *stale*; the session's
//!   [`staleness`](IngestSession::staleness) estimate (built on
//!   [`dp_core::quality::staleness_degradation`]) quantifies the
//!   expected accuracy drift and tells operators when compaction is due.
//! * **A write-ahead log** — batches are durably logged ([`Wal`],
//!   fsynced per append) before acknowledgement and replayed on reopen,
//!   so a crash between compactions loses at most a torn in-flight
//!   batch.
//! * **Compaction** — [`IngestSession::compact`] re-runs the *full*
//!   LSH-DDP plan over the live point set on a driver that shares the
//!   session's [`Dfs`](mapreduce::Dfs). With checkpointing enabled in
//!   [`IngestConfig::pipeline`], a compaction killed mid-pipeline
//!   resumes from the last completed stage (`ckpt/<plan>/<stage>`) on
//!   the next attempt — and the result is **bit-identical** to a
//!   from-scratch refit on the same points, which is the subsystem's
//!   central invariant (enforced by proptest). The WAL outlives the
//!   compaction itself: the caller persists the returned artifact
//!   durably first and only then calls
//!   [`retire_wal`](IngestSession::retire_wal), so at every instant the
//!   logged batches are held by *some* durable state (old artifact +
//!   log, or new artifact).
//!
//! Published models are versioned: every applied batch and every
//! compaction bumps the lineage counter carried by
//! [`ClusterModel::version`], which the serving side's
//! [`ModelStore`](serve::ModelStore) hot-swap and version-keyed caches
//! key off.
//!
//! Observability: the session meters `ingest_batches`, `stale_points`,
//! and `model_compactions` counters into [`obsv::global`].

pub mod batch;
pub mod drill;
pub mod wal;

pub use batch::{DeltaBatch, DeltaOp};
pub use wal::{Wal, WalRecovery};

use ddp::prelude::{
    CentralizedStep, LshDdp, LshDdpConfig, PeakSelection, PipelineConfig, RunReport,
};
use dp_core::quality::DegradationReport;
use dp_core::update::{self, Neighbor};
use dp_core::{Dataset, PointId, NO_UPSLOPE};
use lsh::{LshParams, MultiLsh, Signature};
use mapreduce::Dfs;
use obsv::Counter;
use serve::ClusterModel;
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;

/// Knobs for the ingest/compaction lifecycle.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Engine configuration for compaction refits. Enable
    /// [`PipelineConfig::checkpoints`] to make a killed compaction
    /// resumable from its last completed stage.
    pub pipeline: PipelineConfig,
    /// Peak-selection policy compaction hands the centralized step.
    pub selection: PeakSelection,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            pipeline: PipelineConfig::default(),
            selection: PeakSelection::Auto,
        }
    }
}

/// Ingest-path failures. Validation happens *before* any state or WAL
/// mutation: a rejected batch leaves the session untouched.
#[derive(Debug)]
pub enum IngestError {
    /// A point's dimensionality does not match the model.
    DimMismatch {
        /// Model dimensionality.
        expected: usize,
        /// Offending point's dimensionality.
        got: usize,
    },
    /// A delete referenced a key that does not exist (or is already
    /// deleted).
    UnknownKey(u64),
    /// The batch would delete every remaining member of a cluster; the
    /// model invariant requires each cluster to keep its peak. Compact
    /// with a different peak selection to retire a cluster.
    WouldEmptyCluster(u32),
    /// The WAL's recorded lineage does not match the model being opened
    /// (e.g. the artifact was replaced underneath the log, or a crash
    /// interrupted compaction after the new artifact landed but before
    /// the log was retired — the batches are already folded into the
    /// artifact; retire or remove the stale log to proceed).
    WalMismatch {
        /// Version the session is at.
        expected: u64,
        /// Version the WAL record claims to apply to.
        got: u64,
    },
    /// WAL I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::DimMismatch { expected, got } => {
                write!(f, "point dimension {got} does not match model {expected}")
            }
            IngestError::UnknownKey(k) => write!(f, "no live point with key {k}"),
            IngestError::WouldEmptyCluster(c) => {
                write!(f, "batch would delete every member of cluster {c}")
            }
            IngestError::WalMismatch { expected, got } => {
                write!(
                    f,
                    "WAL batch targets model version {got}, session is at {expected}"
                )
            }
            IngestError::Io(e) => write!(f, "ingest i/o: {e}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<std::io::Error> for IngestError {
    fn from(e: std::io::Error) -> Self {
        IngestError::Io(e)
    }
}

/// The outcome of one [`IngestSession::apply`] call.
#[derive(Debug, Clone)]
pub struct Applied {
    /// The batch as logged (with its lineage stamp).
    pub batch: DeltaBatch,
    /// Model version after the batch.
    pub version: u64,
    /// Points newly marked stale by this batch.
    pub newly_stale: u64,
}

/// The outcome of a compaction: the fresh artifact plus the refit's
/// pipeline report (whose stage metrics reveal checkpoint resumes).
///
/// Lifecycle contract: persist [`model`](Compaction::model) durably,
/// *then* call [`IngestSession::retire_wal`] to drop the folded log.
pub struct Compaction {
    /// The compacted model, versioned one past the session's last state.
    pub model: ClusterModel,
    /// The LSH-DDP run report of the refit.
    pub report: RunReport,
}

/// A mutable, versioned view over a [`ClusterModel`]: slots for every
/// point ever seen (tombstoned on delete, never reordered), incremental
/// LSH bucket tables, and the staleness bookkeeping.
///
/// External identity: the base model's points carry keys `0..n` in
/// point-id order; each insert takes the next key. Keys survive
/// compaction.
pub struct IngestSession {
    config: IngestConfig,
    algorithm: String,
    dim: usize,
    dc: f64,
    params: LshParams,
    lsh_seed: u64,
    version: u64,
    seq: u64,

    multi: MultiLsh,
    /// Layout -> signature -> live slots in the bucket.
    tables: Vec<HashMap<Signature, Vec<PointId>>>,

    // Slot-major state; tombstones keep their entries (coords included)
    // so slot ids stay stable within a compaction epoch.
    coords: Vec<f64>,
    rho: Vec<u32>,
    delta: Vec<f64>,
    upslope: Vec<PointId>,
    labels: Vec<u32>,
    halo: Vec<bool>,
    live: Vec<bool>,
    stale: Vec<bool>,
    n_live: usize,

    keys: Vec<u64>,
    by_key: HashMap<u64, PointId>,
    next_key: u64,
    peaks: Vec<PointId>,

    wal: Option<Wal>,
    /// Shared with every compaction driver, so a killed refit's stage
    /// checkpoints survive into the next attempt.
    dfs: Arc<Dfs>,

    batches_ctr: Arc<Counter>,
    stale_ctr: Arc<Counter>,
    compactions_ctr: Arc<Counter>,
}

impl IngestSession {
    /// A session over `model` with no WAL (mutations live only in
    /// memory until [`publish`](Self::publish) or
    /// [`compact`](Self::compact)).
    pub fn new(model: &ClusterModel, config: IngestConfig) -> Self {
        let reg = obsv::global();
        let mut session = IngestSession {
            config,
            algorithm: model.algorithm().to_string(),
            dim: model.dim(),
            dc: model.dc(),
            params: *model.params(),
            lsh_seed: model.seed(),
            version: model.version(),
            seq: 0,
            multi: MultiLsh::new(model.dim(), model.params(), model.seed()),
            tables: Vec::new(),
            coords: Vec::new(),
            rho: Vec::new(),
            delta: Vec::new(),
            upslope: Vec::new(),
            labels: Vec::new(),
            halo: Vec::new(),
            live: Vec::new(),
            stale: Vec::new(),
            n_live: 0,
            keys: Vec::new(),
            by_key: HashMap::new(),
            next_key: 0,
            peaks: Vec::new(),
            wal: None,
            dfs: Arc::new(Dfs::new()),
            batches_ctr: reg.counter("ingest_batches"),
            stale_ctr: reg.counter("stale_points"),
            compactions_ctr: reg.counter("model_compactions"),
        };
        session.seed_from(model, None);
        session
    }

    /// A session over `model` backed by the WAL at `path`: intact logged
    /// batches are replayed (bringing the session ahead of the artifact
    /// on disk), a torn tail is truncated. Returns the session and how
    /// many batches were replayed.
    pub fn with_wal(
        model: &ClusterModel,
        config: IngestConfig,
        path: impl AsRef<Path>,
    ) -> Result<(Self, usize), IngestError> {
        Self::with_wal_fs(model, config, path, mapreduce::io_shim::FaultFs::default())
    }

    /// [`Self::with_wal`] with an explicit storage-fault domain: the
    /// WAL *and* the session's compaction spill tier route their I/O
    /// through `fs` — the injection point for crash-consistency drills.
    pub fn with_wal_fs(
        model: &ClusterModel,
        config: IngestConfig,
        path: impl AsRef<Path>,
        fs: mapreduce::io_shim::FaultFs,
    ) -> Result<(Self, usize), IngestError> {
        let mut session = IngestSession::new(model, config);
        session.dfs.set_io_fs(fs.clone());
        let (wal, recovery) = Wal::open_with(path, fs)?;
        session.wal = Some(wal);
        let replayed = recovery.batches.len();
        for batch in recovery.batches {
            if batch.model_version != session.version {
                return Err(IngestError::WalMismatch {
                    expected: session.version,
                    got: batch.model_version,
                });
            }
            // Replay must succeed: these batches were validated before
            // they were acknowledged and logged.
            session
                .apply_inner(batch.ops, false)
                .expect("WAL replays a previously accepted batch");
        }
        Ok((session, replayed))
    }

    /// Re-seeds every slot from a model. `keys`: existing external keys
    /// for the model's points in id order (compaction), or `None` to
    /// assign `0..n` (fresh open).
    fn seed_from(&mut self, model: &ClusterModel, keys: Option<Vec<u64>>) {
        let n = model.len();
        self.coords = model.coords().to_vec();
        self.rho = model.rhos().to_vec();
        self.delta = model.deltas().to_vec();
        self.upslope = model.upslopes().to_vec();
        self.labels = model.labels().to_vec();
        self.halo = model.halos().to_vec();
        self.live = vec![true; n];
        self.stale = vec![false; n];
        self.n_live = n;
        self.peaks = model.peaks().to_vec();
        self.keys = keys.unwrap_or_else(|| (0..n as u64).collect());
        assert_eq!(self.keys.len(), n, "one key per model point");
        self.next_key = self.next_key.max(n as u64);
        self.by_key = self
            .keys
            .iter()
            .enumerate()
            .map(|(slot, &k)| (k, slot as PointId))
            .collect();
        self.tables = lsh::bucket_tables(
            &self.multi,
            (0..n).map(|i| &model.coords()[i * self.dim..(i + 1) * self.dim]),
        );
        self.version = model.version();
    }

    /// Applies one batch of mutations: validates it in full (a rejected
    /// batch changes nothing), logs it to the WAL, then updates the
    /// touched buckets through the localized kernels and bumps the
    /// model version.
    pub fn apply(&mut self, ops: Vec<DeltaOp>) -> Result<Applied, IngestError> {
        self.apply_inner(ops, true)
    }

    fn apply_inner(&mut self, ops: Vec<DeltaOp>, log: bool) -> Result<Applied, IngestError> {
        self.validate(&ops)?;
        let batch = DeltaBatch {
            model_version: self.version,
            seq: self.seq,
            ops,
        };
        if log {
            if let Some(wal) = &mut self.wal {
                wal.append(&batch)?;
            }
        }

        let mut newly_stale = 0u64;
        for op in &batch.ops {
            newly_stale += match op {
                DeltaOp::Insert(coords) => self.insert(coords),
                DeltaOp::Delete(key) => self.delete(*key),
            };
        }
        self.seq += 1;
        self.version += 1;
        self.batches_ctr.inc(1);
        self.stale_ctr.inc(newly_stale);
        Ok(Applied {
            version: self.version,
            newly_stale,
            batch,
        })
    }

    /// Up-front whole-batch validation. Deletes are checked against the
    /// *pre-batch* live set (inserts within the same batch cannot prop
    /// up a cluster the batch also empties — conservative, and keeps
    /// validation side-effect free). Per-cluster live counts are built
    /// once, on the first delete, so a batch of `k` deletes over `n`
    /// points validates in O(n + k) instead of O(n·k + k²).
    fn validate(&self, ops: &[DeltaOp]) -> Result<(), IngestError> {
        let mut dead: HashSet<u64> = HashSet::new();
        let mut remaining: Option<HashMap<u32, usize>> = None;
        for op in ops {
            match op {
                DeltaOp::Insert(coords) => {
                    if coords.len() != self.dim {
                        return Err(IngestError::DimMismatch {
                            expected: self.dim,
                            got: coords.len(),
                        });
                    }
                }
                DeltaOp::Delete(key) => {
                    let slot = match self.by_key.get(key) {
                        Some(&s) if self.live[s as usize] => s,
                        _ => return Err(IngestError::UnknownKey(*key)),
                    };
                    if !dead.insert(*key) {
                        return Err(IngestError::UnknownKey(*key));
                    }
                    let remaining = remaining.get_or_insert_with(|| {
                        let mut counts: HashMap<u32, usize> = HashMap::new();
                        for i in 0..self.live.len() {
                            if self.live[i] {
                                *counts.entry(self.labels[i]).or_insert(0) += 1;
                            }
                        }
                        counts
                    });
                    let c = self.labels[slot as usize];
                    let left = remaining
                        .get_mut(&c)
                        .expect("a live point's cluster is counted");
                    *left -= 1;
                    if *left == 0 {
                        return Err(IngestError::WouldEmptyCluster(c));
                    }
                }
            }
        }
        Ok(())
    }

    /// Inserts one point; returns how many points became newly stale.
    fn insert(&mut self, point: &[f64]) -> u64 {
        let s = self.rho.len() as PointId;
        let sigs = self.multi.signatures(point);

        // Per-layout density estimates (the paper's max aggregation) and
        // the union candidate set for the separation search.
        let mut rho_q = 0u32;
        let mut union: Vec<PointId> = Vec::new();
        for (m, sig) in sigs.iter().enumerate() {
            if let Some(bucket) = self.tables[m].get(sig) {
                let within =
                    update::neighbors_within(point, bucket, &self.coords, self.dim, self.dc);
                rho_q = rho_q.max(within.len() as u32);
                union.extend_from_slice(bucket);
            }
        }
        union.sort_unstable();
        union.dedup();
        let neighbors = update::candidate_neighbors(point, &union, &self.coords, self.dim);

        // Anchor the new point (localized Eq. 2); out-of-bucket points
        // degrade to the nearest peak, exactly like the serving-time
        // fallback.
        let anchor = update::nearest_denser(s, rho_q, &neighbors, &self.rho)
            .or_else(|| self.nearest_peak(point));
        let (delta_q, upslope_q, label_q, halo_q) = match anchor {
            Some(a) => (
                a.dist,
                a.id,
                self.labels[a.id as usize],
                self.halo[a.id as usize],
            ),
            None => unreachable!("a model always keeps at least one live peak"),
        };

        // Materialize the slot, then push density/separation effects out
        // to the bucket-mates.
        self.coords.extend_from_slice(point);
        self.rho.push(rho_q);
        self.delta.push(delta_q);
        self.upslope.push(upslope_q);
        self.labels.push(label_q);
        self.halo.push(halo_q);
        self.live.push(true);
        self.stale.push(false);
        self.n_live += 1;
        let key = self.next_key;
        self.next_key += 1;
        self.keys.push(key);
        self.by_key.insert(key, s);

        let mut newly = self.mark_stale(s); // incremental estimates are stale by definition
        let within: Vec<Neighbor> = neighbors
            .iter()
            .copied()
            .filter(|n| n.dist < self.dc)
            .collect();
        update::bump_rho(&mut self.rho, &within);
        for n in &within {
            newly += self.mark_stale(n.id);
        }
        update::relax_toward(
            s,
            rho_q,
            &neighbors,
            &self.rho,
            &mut self.delta,
            &mut self.upslope,
        );
        for n in &neighbors {
            if self.upslope[n.id as usize] == s {
                newly += self.mark_stale(n.id);
            }
        }

        for (m, sig) in sigs.into_iter().enumerate() {
            self.tables[m].entry(sig).or_default().push(s);
        }
        newly
    }

    /// Deletes the point under `key` (validated to exist and to leave
    /// its cluster non-empty); returns how many points became newly
    /// stale.
    fn delete(&mut self, key: u64) -> u64 {
        let slot = self.by_key.remove(&key).expect("validated key");
        let si = slot as usize;
        let point: Vec<f64> = self.point(slot).to_vec();
        let sigs = self.multi.signatures(&point);

        // Unhook from the bucket tables first: the slot must not appear
        // as its own neighborhood's candidate.
        for (m, sig) in sigs.iter().enumerate() {
            if let Some(bucket) = self.tables[m].get_mut(sig) {
                bucket.retain(|&x| x != slot);
                if bucket.is_empty() {
                    self.tables[m].remove(sig);
                }
            }
        }
        self.live[si] = false;
        self.n_live -= 1;

        // Reverse the density contribution for surviving bucket-mates.
        let mut union: Vec<PointId> = Vec::new();
        for (m, sig) in sigs.iter().enumerate() {
            if let Some(bucket) = self.tables[m].get(sig) {
                union.extend_from_slice(bucket);
            }
        }
        union.sort_unstable();
        union.dedup();
        let within: Vec<PointId> =
            update::neighbors_within(&point, &union, &self.coords, self.dim, self.dc)
                .into_iter()
                .map(|n| n.id)
                .collect();
        update::drop_rho(&mut self.rho, &within);
        let mut newly = 0;
        for &id in &within {
            newly += self.mark_stale(id);
        }

        // Points that upsloped through the deleted slot re-anchor over
        // their own buckets.
        for p in 0..self.live.len() as PointId {
            if self.live[p as usize] && self.upslope[p as usize] == slot {
                newly += self.reanchor(p);
            }
        }

        // A deleted peak hands its cluster to the densest survivor.
        if let Some(c) = self.peaks.iter().position(|&pk| pk == slot) {
            let heir = (0..self.live.len() as PointId)
                .filter(|&i| self.live[i as usize] && self.labels[i as usize] == c as u32)
                .max_by_key(|&i| (self.rho[i as usize], i))
                .expect("validation keeps every cluster non-empty");
            self.peaks[c] = heir;
            newly += self.mark_stale(heir);
        }
        newly
    }

    /// Localized separation recompute for `p` after its upslope point
    /// died: search its own bucket-mates; fall back to the nearest peak;
    /// a point with no denser reachable neighbor becomes a local
    /// apparent-peak (`NO_UPSLOPE`), the same convention approximate
    /// batch results use.
    fn reanchor(&mut self, p: PointId) -> u64 {
        let point: Vec<f64> = self.point(p).to_vec();
        let mut union: Vec<PointId> = Vec::new();
        for (m, sig) in self.multi.signatures(&point).iter().enumerate() {
            if let Some(bucket) = self.tables[m].get(sig) {
                union.extend_from_slice(bucket);
            }
        }
        union.sort_unstable();
        union.dedup();
        union.retain(|&x| x != p);
        let neighbors = update::candidate_neighbors(&point, &union, &self.coords, self.dim);
        let anchor = update::nearest_denser(p, self.rho[p as usize], &neighbors, &self.rho)
            .or_else(|| self.nearest_peak(&point).filter(|pk| pk.id != p));
        match anchor {
            Some(a) => {
                self.delta[p as usize] = a.dist;
                self.upslope[p as usize] = a.id;
            }
            None => {
                self.upslope[p as usize] = NO_UPSLOPE;
            }
        }
        self.mark_stale(p)
    }

    /// The nearest live peak to `point`, as a [`Neighbor`].
    fn nearest_peak(&self, point: &[f64]) -> Option<Neighbor> {
        update::candidate_neighbors(point, &self.peaks, &self.coords, self.dim)
            .into_iter()
            .min_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)))
    }

    fn mark_stale(&mut self, slot: PointId) -> u64 {
        let s = slot as usize;
        if self.live[s] && !self.stale[s] {
            self.stale[s] = true;
            1
        } else {
            0
        }
    }

    fn point(&self, slot: PointId) -> &[f64] {
        let i = slot as usize * self.dim;
        &self.coords[i..i + self.dim]
    }

    /// The live points as a dense [`Dataset`], in slot order — the
    /// canonical point set both [`publish`](Self::publish) and
    /// [`compact`](Self::compact) (and any from-scratch refit) operate
    /// on.
    pub fn live_dataset(&self) -> Dataset {
        let mut ds = Dataset::new(self.dim);
        for s in 0..self.live.len() {
            if self.live[s] {
                ds.push(self.point(s as PointId));
            }
        }
        ds
    }

    /// Snapshots the session's *incremental* state as a publishable
    /// model at the current version: tombstones squeezed out, slot ids
    /// densified, upslope links through dead points rewired to
    /// `NO_UPSLOPE`. This is the cheap path — the artifact reflects the
    /// localized estimates, staleness and all; [`compact`](Self::compact)
    /// is the exact one.
    pub fn publish(&self) -> ClusterModel {
        let n_slots = self.live.len();
        let mut dense: Vec<PointId> = vec![NO_UPSLOPE; n_slots];
        let mut next = 0u32;
        for (d, &alive) in dense.iter_mut().zip(&self.live) {
            if alive {
                *d = next;
                next += 1;
            }
        }
        let remap = |slot: PointId| -> PointId {
            if slot == NO_UPSLOPE || !self.live[slot as usize] {
                NO_UPSLOPE
            } else {
                dense[slot as usize]
            }
        };
        let live = |s: &usize| self.live[*s];

        let mut coords = Vec::with_capacity(self.n_live * self.dim);
        for s in (0..n_slots).filter(live) {
            coords.extend_from_slice(self.point(s as PointId));
        }
        ClusterModel::from_parts(
            self.version,
            self.algorithm.clone(),
            self.dim,
            self.dc,
            self.params,
            self.lsh_seed,
            coords,
            (0..n_slots).filter(live).map(|s| self.rho[s]).collect(),
            (0..n_slots).filter(live).map(|s| self.delta[s]).collect(),
            (0..n_slots)
                .filter(live)
                .map(|s| remap(self.upslope[s]))
                .collect(),
            (0..n_slots).filter(live).map(|s| self.labels[s]).collect(),
            self.peaks.iter().map(|&pk| dense[pk as usize]).collect(),
            (0..n_slots).filter(live).map(|s| self.halo[s]).collect(),
        )
    }

    /// Re-runs the full LSH-DDP plan over the live point set and resets
    /// the session onto the result.
    ///
    /// The refit's driver shares the session's [`Dfs`]: with
    /// checkpointing enabled, a compaction killed mid-pipeline leaves
    /// its completed stages under `ckpt/<plan>/<stage>`, and the next
    /// `compact` call resumes from them instead of recomputing. Output
    /// is bit-identical to a from-scratch refit either way.
    ///
    /// On success staleness drops to zero, external keys carry over,
    /// and the version advances by one. The WAL is **not** touched:
    /// durably persist [`Compaction::model`] first (e.g.
    /// [`ClusterModel::save`], which writes atomically), then call
    /// [`retire_wal`](Self::retire_wal). Clearing the log any earlier
    /// would open a window where a crash leaves the old artifact and an
    /// empty log — every acknowledged batch lost.
    pub fn compact(&mut self) -> Compaction {
        // Heap-accounted (inert unless `obsv::alloc::enable_accounting`
        // ran): a refit materializes the full live dataset plus the plan's
        // intermediates, and its footprint bounds the streaming budget.
        let mem = obsv::alloc::scope();
        let ds = self.live_dataset();
        let ddp = LshDdp::new(LshDdpConfig {
            params: self.params,
            seed: self.lsh_seed,
            pipeline: self.config.pipeline,
            rho_aggregation: Default::default(),
            partition_cap: None,
        });
        let driver = self
            .config
            .pipeline
            .driver()
            .with_dfs(Arc::clone(&self.dfs));
        let report = ddp.run_with_driver(&ds, self.dc, driver);
        let outcome = CentralizedStep::new(self.config.selection.clone()).run(&report.result);
        let model = ClusterModel::from_run(&ds, &report, &outcome, &self.params, self.lsh_seed)
            .with_version(self.version + 1);

        // The refit succeeded: re-seed the session onto it. The WAL is
        // deliberately left intact — its batches are only *durably*
        // folded once the caller persists the artifact and retires the
        // log (`retire_wal`).
        let keys: Vec<u64> = (0..self.live.len())
            .filter(|&s| self.live[s])
            .map(|s| self.keys[s])
            .collect();
        self.algorithm = model.algorithm().to_string();
        self.seed_from(&model, Some(keys));
        self.compactions_ctr.inc(1);
        obsv::global()
            .gauge("ingest.compact_peak_bytes")
            .set(mem.peak() as i64);
        Compaction { model, report }
    }

    /// Retires the WAL after a compaction: truncates (and fsyncs) the
    /// log. Call this only once the compacted artifact durably holds
    /// the logged batches — i.e. after [`Compaction::model`] has been
    /// written to its final path. A crash *before* this call is safe
    /// either way: old artifact + full log if the save never landed, or
    /// new artifact + stale log (whose out-of-lineage batches are
    /// refused on open, never replayed twice) if it did. No-op without
    /// a WAL.
    pub fn retire_wal(&mut self) -> Result<(), IngestError> {
        if let Some(wal) = &mut self.wal {
            wal.clear()?;
        }
        Ok(())
    }

    /// Expected-accuracy estimate for the current staleness level: the
    /// per-point accuracy of the model's LSH ensemble (Theorem 1, via
    /// [`lsh::prob::expected_accuracy`]) mixed over the stale fraction.
    pub fn staleness(&self) -> DegradationReport {
        let per_point =
            lsh::prob::expected_accuracy(self.params.w, self.dc, self.params.pi, self.params.m);
        dp_core::quality::staleness_degradation(per_point, self.n_live, self.stale_points())
    }

    /// Live points currently carrying incrementally maintained (stale)
    /// estimates.
    pub fn stale_points(&self) -> usize {
        (0..self.live.len())
            .filter(|&s| self.live[s] && self.stale[s])
            .count()
    }

    /// Live point count.
    pub fn len(&self) -> usize {
        self.n_live
    }

    /// Whether the session holds no live points (never true: deletes
    /// cannot empty the model).
    pub fn is_empty(&self) -> bool {
        self.n_live == 0
    }

    /// Current model lineage version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Batches applied so far (including WAL replays).
    pub fn batches_applied(&self) -> u64 {
        self.seq
    }

    /// The cutoff distance inherited from the base model.
    pub fn dc(&self) -> f64 {
        self.dc
    }

    /// LSH layout parameters inherited from the base model.
    pub fn params(&self) -> &LshParams {
        &self.params
    }

    /// Hash-layout seed inherited from the base model.
    pub fn seed(&self) -> u64 {
        self.lsh_seed
    }

    /// The lifecycle configuration (mutable, e.g. to toggle fault
    /// injection between compaction attempts in drills).
    pub fn config_mut(&mut self) -> &mut IngestConfig {
        &mut self.config
    }

    /// The DFS shared by this session's compaction drivers.
    pub fn dfs(&self) -> &Arc<Dfs> {
        &self.dfs
    }

    /// External keys of the live points, in slot (= publish) order.
    pub fn live_keys(&self) -> Vec<u64> {
        (0..self.live.len())
            .filter(|&s| self.live[s])
            .map(|s| self.keys[s])
            .collect()
    }
}
