//! The [`DeltaBatch`] wire codec: the unit of mutation the ingest path
//! accepts, logs to the WAL, and replays on recovery.
//!
//! A batch is versioned twice over: the *format* revision guards the
//! byte layout, and the embedded `model_version`/`seq` pair pins the
//! batch to the model lineage it was applied against — a WAL written
//! against one model cannot silently replay onto another.

use mapreduce::wire::{Wire, WireError};
use mapreduce::ShuffleSize;

/// Magic number opening every serialized batch ("LDPB" little-endian).
const MAGIC: u32 = 0x4250_444c;
/// Format revision; bump on any layout change.
const FORMAT: u32 = 1;

/// One mutation against the model's point set.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Add a point at these coordinates; the session assigns it the next
    /// external key.
    Insert(Vec<f64>),
    /// Remove the point with this external key (base-model points carry
    /// keys `0..n`; inserts continue the sequence).
    Delete(u64),
}

impl ShuffleSize for DeltaOp {
    fn shuffle_bytes(&self) -> u64 {
        1 + match self {
            DeltaOp::Insert(coords) => coords.shuffle_bytes(),
            DeltaOp::Delete(_) => 8,
        }
    }
}

impl Wire for DeltaOp {
    fn write(&self, out: &mut Vec<u8>) {
        match self {
            DeltaOp::Insert(coords) => {
                0u8.write(out);
                coords.write(out);
            }
            DeltaOp::Delete(key) => {
                1u8.write(out);
                key.write(out);
            }
        }
    }

    fn read(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::read(input)? {
            0 => Ok(DeltaOp::Insert(Vec::<f64>::read(input)?)),
            1 => Ok(DeltaOp::Delete(u64::read(input)?)),
            _ => Err(WireError::Corrupt("delta op tag")),
        }
    }
}

/// An ordered group of mutations applied (and versioned) atomically:
/// one batch = one model-version bump = one WAL record.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaBatch {
    /// The model lineage version this batch applies *on top of*.
    pub model_version: u64,
    /// Position in the session's batch sequence, starting at 0.
    pub seq: u64,
    /// The mutations, applied in order.
    pub ops: Vec<DeltaOp>,
}

impl ShuffleSize for DeltaBatch {
    fn shuffle_bytes(&self) -> u64 {
        // magic + format + model_version + seq + ops
        4 + 4 + 8 + 8 + self.ops.shuffle_bytes()
    }
}

impl Wire for DeltaBatch {
    fn write(&self, out: &mut Vec<u8>) {
        MAGIC.write(out);
        FORMAT.write(out);
        self.model_version.write(out);
        self.seq.write(out);
        self.ops.write(out);
    }

    fn read(input: &mut &[u8]) -> Result<Self, WireError> {
        if u32::read(input)? != MAGIC {
            return Err(WireError::Corrupt("batch magic"));
        }
        if u32::read(input)? != FORMAT {
            return Err(WireError::Corrupt("batch format"));
        }
        Ok(DeltaBatch {
            model_version: u64::read(input)?,
            seq: u64::read(input)?,
            ops: Vec::<DeltaOp>::read(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::wire;

    fn sample() -> DeltaBatch {
        DeltaBatch {
            model_version: 3,
            seq: 7,
            ops: vec![
                DeltaOp::Insert(vec![1.0, -2.5]),
                DeltaOp::Delete(42),
                DeltaOp::Insert(vec![0.0, 0.0]),
            ],
        }
    }

    #[test]
    fn round_trips_and_sizes_exactly() {
        let batch = sample();
        let bytes = wire::encode(&batch);
        assert_eq!(bytes.len() as u64, batch.shuffle_bytes());
        assert_eq!(wire::decode::<DeltaBatch>(&bytes).unwrap(), batch);
    }

    #[test]
    fn rejects_bad_magic_format_and_tag() {
        let mut bytes = wire::encode(&sample());
        let mut flipped = bytes.clone();
        flipped[0] ^= 0xff;
        assert!(matches!(
            wire::decode::<DeltaBatch>(&flipped),
            Err(WireError::Corrupt("batch magic"))
        ));
        bytes[4] = 0x66;
        assert!(matches!(
            wire::decode::<DeltaBatch>(&bytes),
            Err(WireError::Corrupt("batch format"))
        ));
        let op = wire::encode(&DeltaOp::Delete(1));
        let mut bad = op.clone();
        bad[0] = 9;
        assert!(matches!(
            wire::decode::<DeltaOp>(&bad),
            Err(WireError::Corrupt("delta op tag"))
        ));
    }
}
