//! ALICE-style crash-consistency drill over the durability tier.
//!
//! One *attempt* runs the full durable workflow — save a fitted model,
//! open a WAL-backed session, apply batches, compact (spilling and
//! checkpointing through the governed tier), save the compacted
//! artifact, retire the log — with every file operation routed through
//! one [`FaultFs`] domain. The driver first runs the workflow under an
//! armed-but-inert plan to *count* its I/O operations, then replays it
//! once per operation with [`IoFaultPlan::crash_at`] pinned to that op
//! (clean and torn flavors), simulating a power cut at every distinct
//! point of the write path. After each cut, [`verify_attempt`] restarts
//! on clean storage and checks the recovery invariants:
//!
//! * the model artifact is **wholly old or wholly new** (and loadable)
//!   — never a blend, never garbage;
//! * WAL replay returns **exactly the acknowledged batches** (a torn
//!   tail is truncated, an unacknowledged record never resurfaces, an
//!   acknowledged one is never lost), and the truncation itself is
//!   durable across a second reopen;
//! * an interrupted retirement leaves the log **all-or-nothing**;
//! * a restart over a new artifact plus a stale log refuses the
//!   out-of-lineage batches ([`IngestError::WalMismatch`]) instead of
//!   replaying them twice.
//!
//! [`random_fault_drill`] runs the same workflow and verification under
//! seeded per-mille mixes of transient `EIO`, `ENOSPC`, and power cuts;
//! [`checkpoint_resume_drill`] kills a compaction mid-pipeline (under
//! transient storage faults) and checks the resumed refit is
//! bit-identical to a from-scratch one. The root `crash_consistency`
//! test and the bench `crash_consistency` scenario both drive this
//! module.

use crate::batch::{DeltaBatch, DeltaOp};
use crate::wal::Wal;
use crate::{IngestConfig, IngestError, IngestSession};
use ddp::prelude::{CentralizedStep, LshDdp, PeakSelection, PipelineConfig};
use dp_core::Dataset;
use mapreduce::io_shim::{FaultFs, IoFaultPlan};
use mapreduce::wire;
use serve::ClusterModel;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Batches each attempt applies (the later ones mix deletes in).
const ROUNDS: usize = 8;
/// Inserts per batch.
const PER_ROUND: usize = 3;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn jitter(state: &mut u64) -> f64 {
    // Uniform in [-1.5, 1.5] — tight enough that every synthetic point
    // stays unambiguously inside its blob.
    (splitmix(state) as f64 / u64::MAX as f64 - 0.5) * 3.0
}

const CENTERS: [[f64; 2]; 3] = [[-30.0, 0.0], [30.0, 20.0], [0.0, -25.0]];

/// A deterministic 3-blob 2-D dataset (the drill cannot use the
/// `datasets` crate — it is a dev-dependency here).
pub fn drill_dataset(n_per: usize, seed: u64) -> Dataset {
    let mut ds = Dataset::new(2);
    let mut state = seed ^ 0xD1F7_F00D;
    for center in CENTERS {
        for _ in 0..n_per {
            ds.push(&[
                center[0] + jitter(&mut state),
                center[1] + jitter(&mut state),
            ]);
        }
    }
    ds
}

/// Fits the drill's base model end to end (the same recipe the ingest
/// behavioral tests use).
pub fn fit_base_model(ds: &Dataset, seed: u64) -> ClusterModel {
    let dc = dp_core::cutoff::estimate_dc_exact(ds, 0.05);
    let ddp = LshDdp::with_accuracy(0.99, 8, 3, dc, seed).expect("valid LSH params");
    let params = ddp.config().params;
    let report = ddp.run(ds, dc);
    let outcome = CentralizedStep::new(PeakSelection::TopK(3)).run(&report.result);
    ClusterModel::from_run(ds, &report, &outcome, &params, seed)
}

/// The drill's session config: checkpoints on and a zero memory budget,
/// so compaction exercises the checkpoint *and* spill write paths.
fn drill_config() -> IngestConfig {
    IngestConfig {
        pipeline: PipelineConfig {
            map_tasks: 2,
            reduce_tasks: 2,
            checkpoints: true,
            mem_budget: Some(0),
            ..Default::default()
        },
        selection: PeakSelection::TopK(3),
    }
}

/// The ops of batch `round`: [`PER_ROUND`] inserts near a rotating blob
/// center, plus (from round 2 on) a delete of a point inserted two
/// rounds earlier — deterministic, validation-clean, and key-exact.
fn drill_ops(base_len: usize, round: usize) -> Vec<DeltaOp> {
    let mut state = 0x0BA7_C4E5 ^ round as u64;
    let center = CENTERS[round % CENTERS.len()];
    let mut ops: Vec<DeltaOp> = (0..PER_ROUND)
        .map(|_| {
            DeltaOp::Insert(vec![
                center[0] + jitter(&mut state),
                center[1] + jitter(&mut state),
            ])
        })
        .collect();
    if round >= 2 {
        // The first insert of round-2 got key base_len + (round-2)*PER_ROUND.
        ops.push(DeltaOp::Delete((base_len + (round - 2) * PER_ROUND) as u64));
    }
    ops
}

/// Attempts in flight whose panics are *expected* (a simulated power
/// cut killing a compaction). While nonzero, the process panic hook
/// stays quiet — a drill fires hundreds of these and each would
/// otherwise print a full backtrace. Genuine panics elsewhere still
/// fail their tests; only the message printing is suppressed during a
/// drill window.
static EXPECTED_PANICS: AtomicUsize = AtomicUsize::new(0);

fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if EXPECTED_PANICS.load(Ordering::Relaxed) == 0 {
                prev(info);
            }
        }));
    });
}

/// RAII window in which drill-induced panics print nothing.
struct QuietPanics;

impl QuietPanics {
    fn enter() -> QuietPanics {
        install_quiet_hook();
        EXPECTED_PANICS.fetch_add(1, Ordering::Relaxed);
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        EXPECTED_PANICS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// What one attempt acknowledged before its storage failed (or it ran
/// to completion): the ground truth [`verify_attempt`] checks recovery
/// against.
#[derive(Debug)]
pub struct AttemptTrace {
    /// Batches whose `apply` returned `Ok` — the durability contract
    /// covers exactly these.
    pub acked: Vec<DeltaBatch>,
    /// Wire bytes of the base artifact.
    pub v1: Vec<u8>,
    /// Wire bytes of the compacted artifact, if compaction ran.
    pub v2: Option<Vec<u8>>,
    /// The v1 save returned `Ok`.
    pub save1_done: bool,
    /// The v2 save started (its partial effects are on disk).
    pub save2_attempted: bool,
    /// The v2 save returned `Ok`.
    pub save2_done: bool,
    /// WAL retirement started.
    pub retire_attempted: bool,
    /// WAL retirement returned `Ok`.
    pub retire_done: bool,
    /// The simulated power cut fired during this attempt.
    pub crashed: bool,
    /// I/O ops the fault domain gated (0 when unarmed).
    pub ops: u64,
}

/// Runs one full durable workflow under `fs`, recording what was
/// acknowledged. Never panics: every storage failure ends the relevant
/// phase and is captured in the trace.
pub fn run_attempt(dir: &Path, fs: &FaultFs, base: &ClusterModel) -> AttemptTrace {
    let model_path = dir.join("model.bin");
    let wal_path = dir.join("ingest.wal");
    let mut t = AttemptTrace {
        acked: Vec::new(),
        v1: wire::encode(base),
        v2: None,
        save1_done: false,
        save2_attempted: false,
        save2_done: false,
        retire_attempted: false,
        retire_done: false,
        crashed: false,
        ops: 0,
    };

    'attempt: {
        t.save1_done = base.save_with(model_path.to_str().unwrap(), fs).is_ok();
        if fs.crashed() {
            break 'attempt;
        }

        let opened = IngestSession::with_wal_fs(base, drill_config(), &wal_path, fs.clone());
        let Ok((mut session, _)) = opened else {
            break 'attempt;
        };

        for round in 0..ROUNDS {
            match session.apply(drill_ops(base.len(), round)) {
                Ok(applied) => t.acked.push(applied.batch),
                // Give-ups and cuts alike end the ingest phase; the
                // failed batch changed nothing and is not acked.
                Err(_) => break,
            }
        }
        if fs.crashed() {
            break 'attempt;
        }

        // Compaction is compute plus *governed* storage: write failures
        // degrade the spill tier to resident. But a power cut after
        // frames already spilled makes their read-back fail — the
        // process dies with its storage. That panic is this simulation's
        // process death: the attempt ends at the cut and recovery is
        // judged from what's on disk, exactly as for any other crash
        // point. A panic on *healthy* storage is a real bug and is
        // re-raised.
        let quiet = QuietPanics::enter();
        let compacted =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| session.compact()));
        drop(quiet);
        let compaction = match compacted {
            Ok(c) => c,
            Err(payload) => {
                if fs.crashed() {
                    break 'attempt;
                }
                std::panic::resume_unwind(payload);
            }
        };
        t.v2 = Some(wire::encode(&compaction.model));
        t.save2_attempted = true;
        t.save2_done = compaction
            .model
            .save_with(model_path.to_str().unwrap(), fs)
            .is_ok();

        // Lifecycle contract: retire only once the artifact durably
        // holds the batches.
        if t.save2_done {
            t.retire_attempted = true;
            t.retire_done = session.retire_wal().is_ok();
        }
    }

    t.crashed = fs.crashed();
    t.ops = fs.ops();
    t
}

/// Restarts on clean storage and checks every recovery invariant the
/// durability tier promises. Returns human-readable violations (empty =
/// the attempt's outcome is consistent).
pub fn verify_attempt(dir: &Path, t: &AttemptTrace) -> Vec<String> {
    let mut violations = Vec::new();
    let clean = FaultFs::real();
    let model_path = dir.join("model.bin");
    let wal_path = dir.join("ingest.wal");

    // --- Artifact: wholly old, wholly new, or (before the first save
    // committed) absent. Never a blend, never unloadable.
    let artifact = std::fs::read(&model_path).ok();
    let (is_v1, is_v2) = match &artifact {
        Some(bytes) => {
            let is_v1 = bytes == &t.v1;
            let is_v2 = t.v2.as_deref() == Some(&bytes[..]);
            if !is_v1 && !is_v2 {
                violations.push(format!(
                    "artifact is neither wholly v1 nor wholly v2 ({} bytes)",
                    bytes.len()
                ));
            }
            if ClusterModel::load_with(model_path.to_str().unwrap(), &clean).is_err() {
                violations.push("artifact present but unloadable".into());
            }
            (is_v1, is_v2)
        }
        None => {
            if t.save1_done {
                violations.push("save of v1 was acknowledged but the artifact is missing".into());
            }
            (false, false)
        }
    };
    if t.save2_done && !is_v2 {
        violations.push("save of v2 was acknowledged but the artifact is not v2".into());
    }
    if !t.save2_attempted && is_v2 {
        violations.push("artifact is v2 before the v2 save started".into());
    }

    // --- WAL: replay is exactly the acked batches; an interrupted
    // retirement is all-or-nothing; truncation repair is durable.
    if wal_path.exists() {
        match Wal::open_with(&wal_path, clean.clone()) {
            Ok((_, rec)) => {
                if t.retire_done {
                    if !rec.batches.is_empty() {
                        violations.push(format!(
                            "retirement was acknowledged but {} batch(es) resurfaced",
                            rec.batches.len()
                        ));
                    }
                } else if t.retire_attempted {
                    if !(rec.batches.is_empty() || rec.batches == t.acked) {
                        violations.push(format!(
                            "interrupted retirement left a partial log ({} of {} batches)",
                            rec.batches.len(),
                            t.acked.len()
                        ));
                    }
                } else if rec.batches != t.acked {
                    violations.push(format!(
                        "WAL replay returned {} batch(es), {} were acknowledged",
                        rec.batches.len(),
                        t.acked.len()
                    ));
                }
                let survivors = rec.batches.len();
                // The torn-tail truncation must itself be durable: a
                // second reopen sees a clean log with the same batches.
                match Wal::open_with(&wal_path, clean.clone()) {
                    Ok((_, rec2)) => {
                        if rec2.torn_bytes != 0 {
                            violations.push("torn tail was not durably truncated".into());
                        }
                        if rec2.batches.len() != survivors {
                            violations.push("second reopen changed the replayed batches".into());
                        }
                    }
                    Err(e) => violations.push(format!("second WAL reopen failed: {e}")),
                }
            }
            Err(e) => violations.push(format!("WAL recovery failed on clean storage: {e}")),
        }
    } else if !t.acked.is_empty() && !t.retire_done && !t.retire_attempted {
        violations.push("batches were acknowledged but the log vanished".into());
    }

    // --- Session restart over whatever survived: a fresh artifact plus
    // a stale log must be *refused* (the batches are already folded in),
    // an old artifact plus its log must replay every acked batch.
    if artifact.is_some() && (is_v1 || is_v2) {
        let model = ClusterModel::load_with(model_path.to_str().unwrap(), &clean)
            .expect("loadability checked above");
        let survivors = Wal::open_with(&wal_path, clean.clone())
            .map(|(_, rec)| rec.batches.len())
            .unwrap_or(0);
        match IngestSession::with_wal_fs(&model, drill_config(), &wal_path, clean) {
            Ok((_, replayed)) => {
                if is_v2 && survivors > 0 {
                    violations.push(
                        "restart replayed already-compacted batches onto the new artifact".into(),
                    );
                } else if is_v1 && replayed != t.acked.len() {
                    violations.push(format!(
                        "restart over v1 replayed {replayed} of {} acked batches",
                        t.acked.len()
                    ));
                }
            }
            Err(IngestError::WalMismatch { .. }) => {
                if !(is_v2 && survivors > 0) {
                    violations.push("restart refused a log that matches its artifact".into());
                }
            }
            Err(e) => violations.push(format!("restart failed on clean storage: {e}")),
        }
    }

    violations
}

/// Aggregate outcome of a drill sweep.
#[derive(Debug, Default)]
pub struct DrillReport {
    /// I/O ops the counting pass gated — the size of the crash-point space.
    pub io_ops: u64,
    /// Attempts whose simulated power cut actually fired.
    pub crash_attempts: u64,
    /// Attempts that ran to completion (op-order variance moved the
    /// pinned op past the end, or a random plan never rolled a fault).
    pub vacuous: u64,
    /// Attempts where a fault (of any class) was injected.
    pub fault_attempts: u64,
    /// Every invariant violation found, labeled with its attempt.
    pub violations: Vec<String>,
    /// Transient-fault retries absorbed across the sweep.
    pub retries: u64,
    /// Faults injected across the sweep.
    pub injected: u64,
    /// Faults surfaced to callers after exhausting retry policy.
    pub give_ups: u64,
}

fn fresh_dir(root: &Path, name: &str) -> std::path::PathBuf {
    let dir = root.join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create drill dir");
    dir
}

fn absorb(report: &mut DrillReport, fs: &FaultFs, label: &str, dir: &Path, t: &AttemptTrace) {
    if t.crashed {
        report.crash_attempts += 1;
    } else if fs.injected_faults() == 0 {
        report.vacuous += 1;
    }
    if fs.injected_faults() > 0 {
        report.fault_attempts += 1;
    }
    report.retries += fs.retries();
    report.injected += fs.injected_faults();
    report.give_ups += fs.give_ups();
    for v in verify_attempt(dir, t) {
        report.violations.push(format!("{label}: {v}"));
    }
}

/// Enumerates the workflow's crash points: one counting pass, then one
/// attempt per selected op index with a power cut pinned there,
/// alternating clean and torn flavors (both flavors per point when the
/// budget of `max_runs` allows). Every attempt is verified; directories
/// are removed as the sweep goes so disk stays bounded.
pub fn enumerate_crash_points(root: &Path, base: &ClusterModel, max_runs: usize) -> DrillReport {
    let mut report = DrillReport::default();

    // Counting pass: armed (so ops are counted) but the pinned op is
    // unreachable, so nothing fires.
    let count_fs = FaultFs::with_plan(IoFaultPlan {
        crash_at: Some(u64::MAX),
        ..Default::default()
    });
    let dir = fresh_dir(root, "count");
    let t = run_attempt(&dir, &count_fs, base);
    report.io_ops = t.ops;
    for v in verify_attempt(&dir, &t) {
        report.violations.push(format!("counting pass: {v}"));
    }
    std::fs::remove_dir_all(&dir).ok();

    let n = report.io_ops as usize;
    let both_flavors = n * 2 <= max_runs;
    let stride = if both_flavors {
        1
    } else {
        (2 * n).div_ceil(max_runs).max(1)
    };
    for (i, op) in (0..n).step_by(stride).enumerate() {
        let flavors: &[bool] = if both_flavors {
            &[false, true]
        } else if i % 2 == 0 {
            &[false]
        } else {
            &[true]
        };
        for &torn in flavors {
            let tag = if torn { "torn" } else { "clean" };
            let dir = fresh_dir(root, &format!("p{op}-{tag}"));
            let fs = FaultFs::with_plan(IoFaultPlan {
                crash_at: Some(op as u64),
                crash_torn: torn,
                ..Default::default()
            });
            let t = run_attempt(&dir, &fs, base);
            absorb(&mut report, &fs, &format!("cut@{op}/{tag}"), &dir, &t);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    report
}

/// Runs the workflow under seeded per-mille fault mixes (transient EIO,
/// ENOSPC, clean and torn power cuts) — the randomized complement of
/// the exhaustive enumeration.
pub fn random_fault_drill(
    root: &Path,
    base: &ClusterModel,
    seeds: std::ops::Range<u64>,
) -> DrillReport {
    let mut report = DrillReport::default();
    for seed in seeds {
        let fs = FaultFs::with_plan(IoFaultPlan {
            seed,
            eio_per_mille: 60,
            enospc_per_mille: 8,
            crash_per_mille: 5,
            torn_per_mille: 5,
            ..Default::default()
        });
        let dir = fresh_dir(root, &format!("rand{seed}"));
        let t = run_attempt(&dir, &fs, base);
        report.io_ops = report.io_ops.max(t.ops);
        absorb(&mut report, &fs, &format!("plan seed={seed}"), &dir, &t);
        std::fs::remove_dir_all(&dir).ok();
    }
    report
}

/// Kills a checkpointed compaction mid-pipeline (while the storage tier
/// also suffers transient EIO) and verifies the resumed refit is
/// bit-identical to a from-scratch one on a pristine session. Returns
/// `Err` with a description on any divergence.
pub fn checkpoint_resume_drill(base: &ClusterModel) -> Result<(), String> {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let batches: Vec<Vec<DeltaOp>> = (0..3).map(|r| drill_ops(base.len(), r)).collect();

    // Doomed run: transient storage faults plus a compute-stage kill
    // scoped to the delta aggregate, so earlier stages checkpoint first.
    let fs = FaultFs::with_plan(IoFaultPlan {
        seed: 5,
        eio_per_mille: 120,
        ..Default::default()
    });
    let mut session = IngestSession::new(base, drill_config());
    session.dfs().set_io_fs(fs);
    for ops in &batches {
        session
            .apply(ops.clone())
            .map_err(|e| format!("apply failed before the kill: {e}"))?;
    }
    session.config_mut().pipeline.fault = Some(mapreduce::FaultPlan {
        fail_per_mille: 999,
        max_attempts: 0,
        seed: 7,
    });
    session.config_mut().pipeline.fault_stage = Some("lsh/delta-aggregate");
    let quiet = QuietPanics::enter();
    let killed = catch_unwind(AssertUnwindSafe(|| session.compact()));
    drop(quiet);
    if killed.is_ok() {
        return Err("the doomed refit did not die mid-pipeline".into());
    }
    session.config_mut().pipeline.fault = None;
    session.config_mut().pipeline.fault_stage = None;
    let resumed = session.compact();
    if !resumed
        .report
        .jobs
        .iter()
        .any(|j| j.user.get("resumed_from_checkpoint") == Some(&1))
    {
        return Err("no stage resumed from the killed run's checkpoint".into());
    }

    // From-scratch reference: clean storage, no kill, same batches.
    let mut pristine = IngestSession::new(base, drill_config());
    for ops in &batches {
        pristine
            .apply(ops.clone())
            .map_err(|e| format!("reference apply failed: {e}"))?;
    }
    let reference = pristine.compact();
    if wire::encode(&resumed.model) != wire::encode(&reference.model) {
        return Err("resumed compaction diverged from the from-scratch refit".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ingest-drill-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn clean_attempt_completes_and_verifies() {
        let base = fit_base_model(&drill_dataset(20, 9), 9);
        let dir = root("clean");
        let fs = FaultFs::real();
        let t = run_attempt(&dir, &fs, &base);
        assert!(t.save1_done && t.save2_done && t.retire_done && !t.crashed);
        assert_eq!(t.acked.len(), ROUNDS);
        assert_eq!(verify_attempt(&dir, &t), Vec::<String>::new());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn early_cut_loses_nothing_acknowledged() {
        let base = fit_base_model(&drill_dataset(20, 9), 9);
        let dir = root("early");
        // Op 7 lands inside the WAL append run of the first batches.
        let fs = FaultFs::with_plan(IoFaultPlan {
            crash_at: Some(7),
            crash_torn: true,
            ..Default::default()
        });
        let t = run_attempt(&dir, &fs, &base);
        assert!(t.crashed);
        assert_eq!(verify_attempt(&dir, &t), Vec::<String>::new());
        std::fs::remove_dir_all(&dir).ok();
    }
}
