//! Property tests for the lifecycle wire formats: the versioned model
//! header and the delta-batch codec must round-trip arbitrary values,
//! honor the `encoded length == shuffle_bytes()` size contract, and
//! error on every truncated prefix rather than misread one.

use ingest::{DeltaBatch, DeltaOp};
use mapreduce::wire::{decode, encode, Wire};
use mapreduce::ShuffleSize;
use proptest::prelude::*;
use serve::ModelHeader;

fn check_roundtrip<T: Wire + ShuffleSize + PartialEq + std::fmt::Debug>(value: &T) {
    let bytes = encode(value);
    assert_eq!(
        bytes.len() as u64,
        value.shuffle_bytes(),
        "size contract for {value:?}"
    );
    let back: T = decode(&bytes).expect("well-formed buffer must decode");
    assert_eq!(&back, value);
}

fn check_truncations<T: Wire + ShuffleSize>(value: &T) {
    let bytes = encode(value);
    for cut in 0..bytes.len() {
        assert!(
            decode::<T>(&bytes[..cut]).is_err(),
            "decoding a {cut}-byte prefix of a {}-byte encoding must fail",
            bytes.len()
        );
    }
}

fn delta_op() -> impl Strategy<Value = DeltaOp> {
    (
        any::<bool>(),
        proptest::collection::vec(-1e9f64..1e9, 0..8),
        any::<u64>(),
    )
        .prop_map(|(insert, coords, key)| {
            if insert {
                DeltaOp::Insert(coords)
            } else {
                DeltaOp::Delete(key)
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn model_headers_round_trip(
        version in any::<u64>(),
        algorithm in any::<String>(),
        dim in any::<u64>(),
        n_points in any::<u64>(),
        n_clusters in any::<u64>(),
    ) {
        let header = ModelHeader {
            format: 2,
            version,
            algorithm,
            dim,
            n_points,
            n_clusters,
        };
        check_roundtrip(&header);
        check_truncations(&header);
    }

    #[test]
    fn delta_batches_round_trip(
        model_version in any::<u64>(),
        seq in any::<u64>(),
        ops in proptest::collection::vec(delta_op(), 0..12),
    ) {
        let batch = DeltaBatch { model_version, seq, ops };
        check_roundtrip(&batch);
        check_truncations(&batch);
    }

    #[test]
    fn corrupt_leading_bytes_never_decode(
        seq in any::<u64>(),
        flip in 0usize..8,
    ) {
        // The magic/format prefix guards both codecs: flipping any of
        // the first eight bytes must be caught (magic mismatch, format
        // mismatch, or a checksummed layer above).
        let batch = DeltaBatch { model_version: 1, seq, ops: vec![DeltaOp::Delete(3)] };
        let mut bytes = encode(&batch);
        bytes[flip] ^= 0xa5;
        prop_assert!(decode::<DeltaBatch>(&bytes).is_err());
    }
}
