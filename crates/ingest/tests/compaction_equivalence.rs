//! The compaction invariant, property-tested: after an arbitrary legal
//! sequence of inserts and deletes, [`IngestSession::compact`] must
//! produce a model **bit-identical** to fitting LSH-DDP from scratch on
//! the same live point set with the same parameters. Incremental ingest
//! may drift (that is what staleness measures); compaction may not.

use ddp::prelude::*;
use ingest::{DeltaOp, IngestConfig, IngestSession};
use mapreduce::wire;
use proptest::prelude::*;
use serve::ClusterModel;

fn fitted(n_per: usize, seed: u64) -> ClusterModel {
    let ld = datasets::gaussian_mixture(2, 3, n_per, 40.0, 1.0, seed);
    let ds = &ld.data;
    let dc = dp_core::cutoff::estimate_dc_exact(ds, 0.05);
    let ddp = LshDdp::with_accuracy(0.99, 8, 3, dc, seed).expect("valid LSH params");
    let params = ddp.config().params;
    let report = ddp.run(ds, dc);
    let outcome = CentralizedStep::new(PeakSelection::TopK(3)).run(&report.result);
    ClusterModel::from_run(ds, &report, &outcome, &params, seed)
}

#[derive(Debug, Clone)]
enum Op {
    Insert(f64, f64),
    /// Delete the live key at this (wrapped) index; skipped when the
    /// session rejects it (emptying a cluster).
    DeleteNth(usize),
}

fn op() -> impl Strategy<Value = Op> {
    (any::<bool>(), -60.0f64..60.0, -60.0f64..60.0, 0usize..1000).prop_map(|(insert, x, y, nth)| {
        if insert {
            Op::Insert(x, y)
        } else {
            Op::DeleteNth(nth)
        }
    })
}

/// An independent from-scratch refit over exactly the session's live
/// points, through the public batch API — no session code involved.
fn scratch_refit(session: &IngestSession) -> ClusterModel {
    let ds = session.live_dataset();
    let params = *session.params();
    let seed = session.seed();
    let ddp = LshDdp::new(LshDdpConfig {
        params,
        seed,
        pipeline: PipelineConfig::default(),
        partition_cap: None,
        rho_aggregation: Default::default(),
    });
    let report = ddp.run(&ds, session.dc());
    let outcome = CentralizedStep::new(PeakSelection::TopK(3)).run(&report.result);
    ClusterModel::from_run(&ds, &report, &outcome, &params, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn compaction_is_bit_identical_to_a_scratch_refit(
        seed in 0u64..3,
        ops in proptest::collection::vec(op(), 1..10),
    ) {
        let model = fitted(12, 100 + seed);
        let mut session = IngestSession::new(&model, IngestConfig {
            selection: PeakSelection::TopK(3),
            ..IngestConfig::default()
        });

        for op in ops {
            let delta = match op {
                Op::Insert(x, y) => DeltaOp::Insert(vec![x, y]),
                Op::DeleteNth(nth) => {
                    let keys = session.live_keys();
                    DeltaOp::Delete(keys[nth % keys.len()])
                }
            };
            // A rejected delete (would empty a cluster) is skipped;
            // everything else must apply.
            let _ = session.apply(vec![delta]);
        }

        let compacted = session.compact().model;
        let scratch = scratch_refit(&session).with_version(compacted.version());
        prop_assert_eq!(
            wire::encode(&compacted),
            wire::encode(&scratch),
            "compaction must equal a from-scratch refit byte for byte"
        );

        // And the session itself now *is* that artifact.
        prop_assert_eq!(wire::encode(&session.publish()), wire::encode(&scratch));

        // A second compaction over the same DFS (checkpoint paths,
        // snapshot ids) is just as exact.
        session.apply(vec![DeltaOp::Insert(vec![0.25, -0.25])]).unwrap();
        let again = session.compact().model;
        let scratch = scratch_refit(&session).with_version(again.version());
        prop_assert_eq!(wire::encode(&again), wire::encode(&scratch));
    }
}
