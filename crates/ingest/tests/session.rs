//! Behavioral tests for [`IngestSession`]: localized updates, batch
//! validation atomicity, WAL-backed recovery, and compaction resetting
//! the session onto an exact artifact.

use ddp::prelude::*;
use ingest::{DeltaOp, IngestConfig, IngestError, IngestSession};
use mapreduce::wire;
use serve::ClusterModel;
use std::path::PathBuf;

/// Fits a small 3-blob model end to end (mirrors serve's test fixture).
fn fitted(n_per: usize, seed: u64) -> ClusterModel {
    let ld = datasets::gaussian_mixture(2, 3, n_per, 40.0, 1.0, seed);
    let ds = &ld.data;
    let dc = dp_core::cutoff::estimate_dc_exact(ds, 0.05);
    let ddp = LshDdp::with_accuracy(0.99, 8, 3, dc, seed).expect("valid LSH params");
    let params = ddp.config().params;
    let report = ddp.run(ds, dc);
    let outcome = CentralizedStep::new(PeakSelection::TopK(3)).run(&report.result);
    ClusterModel::from_run(ds, &report, &outcome, &params, seed)
}

fn config() -> IngestConfig {
    IngestConfig {
        selection: PeakSelection::TopK(3),
        ..IngestConfig::default()
    }
}

/// A tiny hand-built model: cluster 0 = {p0 (peak), p1}, cluster 1 =
/// {p2 (peak)} — small enough to reason about validation exactly.
fn two_cluster_line() -> ClusterModel {
    ClusterModel::from_parts(
        1,
        "test".to_string(),
        1,
        2.0,
        lsh::LshParams {
            m: 2,
            pi: 2,
            w: 8.0,
        },
        7,
        vec![0.0, 1.0, 10.0],
        vec![2, 1, 1],
        vec![10.0, 1.0, 9.0],
        vec![dp_core::NO_UPSLOPE, 0, dp_core::NO_UPSLOPE],
        vec![0, 0, 1],
        vec![0, 2],
        vec![false, false, false],
    )
}

fn wal_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ingest-session-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::remove_file(&path).ok();
    path
}

#[test]
fn insert_bumps_neighbor_density_and_versions_the_model() {
    let model = fitted(20, 11);
    let n = model.len();
    let mut session = IngestSession::new(&model, config());
    assert_eq!(session.version(), 1);
    assert_eq!(session.len(), n);
    assert_eq!(session.stale_points(), 0);

    // A duplicate of point 0 shares its signatures, so point 0 is a
    // within-dc bucket-mate and must gain density.
    let dup = model.point(0).to_vec();
    let applied = session.apply(vec![DeltaOp::Insert(dup)]).unwrap();
    assert_eq!(applied.version, 2);
    assert_eq!(session.version(), 2);
    assert!(
        applied.newly_stale > 0,
        "localized updates mark points stale"
    );
    assert_eq!(session.len(), n + 1);

    let published = session.publish();
    assert_eq!(published.version(), 2);
    assert_eq!(published.len(), n + 1);
    assert_eq!(
        published.rhos()[0],
        model.rhos()[0] + 1,
        "the duplicated point gains one within-dc neighbor"
    );
    assert!((published.n_clusters()) == model.n_clusters());

    // Deleting the insert restores the neighbor's density.
    let key = n as u64; // base points hold 0..n, the insert took n
    session.apply(vec![DeltaOp::Delete(key)]).unwrap();
    assert_eq!(session.len(), n);
    assert_eq!(session.publish().rhos()[0], model.rhos()[0]);
    assert_eq!(session.version(), 3);
}

#[test]
fn rejected_batches_leave_the_session_untouched() {
    let model = two_cluster_line();
    let mut session = IngestSession::new(&model, config());

    // Wrong dimensionality.
    let err = session
        .apply(vec![DeltaOp::Insert(vec![1.0, 2.0])])
        .unwrap_err();
    assert!(matches!(
        err,
        IngestError::DimMismatch {
            expected: 1,
            got: 2
        }
    ));

    // Unknown / repeated keys.
    let err = session.apply(vec![DeltaOp::Delete(99)]).unwrap_err();
    assert!(matches!(err, IngestError::UnknownKey(99)));
    let err = session
        .apply(vec![DeltaOp::Delete(1), DeltaOp::Delete(1)])
        .unwrap_err();
    assert!(matches!(err, IngestError::UnknownKey(1)));

    // Emptying a cluster — directly, or across the batch.
    let err = session.apply(vec![DeltaOp::Delete(2)]).unwrap_err();
    assert!(matches!(err, IngestError::WouldEmptyCluster(1)));
    let err = session
        .apply(vec![DeltaOp::Delete(0), DeltaOp::Delete(1)])
        .unwrap_err();
    assert!(matches!(err, IngestError::WouldEmptyCluster(0)));

    // Nothing above changed any state: full-batch validation runs
    // before the first op is applied.
    assert_eq!(session.version(), 1);
    assert_eq!(session.len(), 3);
    assert_eq!(session.stale_points(), 0);
    assert_eq!(session.batches_applied(), 0);

    // The same deletes succeed one at a time when legal.
    session.apply(vec![DeltaOp::Delete(1)]).unwrap();
    assert_eq!(session.len(), 2);
}

#[test]
fn deleting_a_peak_hands_the_cluster_to_the_densest_survivor() {
    let model = two_cluster_line();
    let mut session = IngestSession::new(&model, config());
    session.apply(vec![DeltaOp::Delete(0)]).unwrap();
    let published = session.publish();
    assert_eq!(published.len(), 2);
    assert_eq!(published.n_clusters(), 2);
    // p1 (dense id 0 after the squeeze) inherits cluster 0's peak slot.
    assert_eq!(published.labels()[published.peaks()[0] as usize], 0);
    assert_eq!(published.labels()[published.peaks()[1] as usize], 1);
}

#[test]
fn wal_replay_reconstructs_the_exact_session_state() {
    let model = fitted(15, 23);
    let path = wal_path("replay-session.wal");

    let (mut session, replayed) = IngestSession::with_wal(&model, config(), &path).unwrap();
    assert_eq!(replayed, 0);
    session
        .apply(vec![
            DeltaOp::Insert(vec![1.5, -0.5]),
            DeltaOp::Insert(model.point(3).to_vec()),
        ])
        .unwrap();
    session.apply(vec![DeltaOp::Delete(2)]).unwrap();
    let before = wire::encode(&session.publish());
    let version = session.version();
    drop(session);

    // Reopen against the same base artifact: the log replays both
    // batches and lands on byte-identical published state.
    let (session, replayed) = IngestSession::with_wal(&model, config(), &path).unwrap();
    assert_eq!(replayed, 2);
    assert_eq!(session.version(), version);
    assert_eq!(wire::encode(&session.publish()), before);
    std::fs::remove_file(&path).ok();
}

#[test]
fn wal_from_a_different_lineage_is_rejected() {
    let model = fitted(15, 23);
    let path = wal_path("lineage-mismatch.wal");
    let (mut session, _) = IngestSession::with_wal(&model, config(), &path).unwrap();
    session.apply(vec![DeltaOp::Delete(0)]).unwrap();
    drop(session);

    // The same log replayed onto a *newer* artifact must refuse.
    let newer = model.clone().with_version(5);
    let Err(err) = IngestSession::with_wal(&newer, config(), &path) else {
        panic!("a foreign WAL must be rejected");
    };
    assert!(matches!(
        err,
        IngestError::WalMismatch {
            expected: 5,
            got: 1
        }
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn compaction_folds_the_wal_and_clears_staleness() {
    let model = fitted(15, 31);
    let path = wal_path("compact-folds.wal");
    let (mut session, _) = IngestSession::with_wal(&model, config(), &path).unwrap();
    session
        .apply(vec![DeltaOp::Insert(vec![0.5, 0.5]), DeltaOp::Delete(4)])
        .unwrap();
    assert!(session.stale_points() > 0);
    let degraded = session.staleness();
    assert!(degraded.accuracy_after < degraded.accuracy_before);

    let version_before = session.version();
    let compaction = session.compact();
    assert_eq!(compaction.model.version(), version_before + 1);
    assert_eq!(session.version(), version_before + 1);
    assert_eq!(session.stale_points(), 0, "compaction is exact");
    let healed = session.staleness();
    assert_eq!(healed.accuracy_after, healed.accuracy_before);

    // External keys survive: base keys minus the delete, plus the
    // insert's fresh key.
    let keys = session.live_keys();
    assert!(!keys.contains(&4));
    assert!(keys.contains(&(model.len() as u64)));

    // Compaction does NOT retire the log by itself: until the caller
    // durably persists the artifact and acknowledges, the batches stay
    // replayable against the old base (crash-between-save-and-retire
    // leaves new artifact + stale log, which is refused, not replayed).
    {
        let (unretired, replayed) = IngestSession::with_wal(&model, config(), &path).unwrap();
        assert_eq!(
            replayed, 1,
            "unretired batches still replay on the old base"
        );
        assert_eq!(unretired.version(), version_before);
    }
    match IngestSession::with_wal(&compaction.model, config(), &path) {
        Err(IngestError::WalMismatch { .. }) => {}
        Err(other) => panic!("expected WalMismatch, got {other:?}"),
        Ok(_) => panic!("a stale log never replays onto the compacted artifact"),
    }

    // After the acknowledge step the folded log is empty on reopen.
    session.retire_wal().unwrap();
    drop(session);
    let (restored, replayed) = IngestSession::with_wal(&compaction.model, config(), &path).unwrap();
    assert_eq!(replayed, 0);
    assert_eq!(restored.version(), version_before + 1);
    std::fs::remove_file(&path).ok();
}

#[test]
fn lifecycle_counters_are_metered() {
    let reg = obsv::global();
    let batches = reg.counter("ingest_batches");
    let stale = reg.counter("stale_points");
    let compactions = reg.counter("model_compactions");
    let (b0, s0, c0) = (batches.get(), stale.get(), compactions.get());

    let model = fitted(15, 47);
    let mut session = IngestSession::new(&model, config());
    session
        .apply(vec![DeltaOp::Insert(model.point(1).to_vec())])
        .unwrap();
    session.compact();

    assert!(batches.get() > b0);
    assert!(stale.get() > s0);
    assert!(compactions.get() > c0);
}

mod fault_plans {
    use super::*;
    use ingest::Wal;
    use mapreduce::io_shim::{FaultFs, IoFaultPlan};
    use proptest::prelude::*;
    use std::sync::OnceLock;

    /// One fitted model shared across proptest cases (a fit per case
    /// would dominate the runtime without adding coverage).
    fn shared_model() -> &'static serve::ClusterModel {
        static MODEL: OnceLock<serve::ClusterModel> = OnceLock::new();
        MODEL.get_or_init(|| fitted(15, 5))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The WAL acknowledgement contract under arbitrary seeded
        /// storage-fault plans: whatever mix of transient EIO, power
        /// cuts, and torn writes the schedule rolls, a clean reopen
        /// replays *exactly* the acknowledged batches — never a lost
        /// ack, never a resurfaced reject — and the torn-tail repair is
        /// durable across a second reopen.
        #[test]
        fn wal_replays_exactly_the_acked_batches(
            seed in any::<u64>(),
            eio in 0u16..250,
            crash in 0u16..40,
            torn in 0u16..40,
            rounds in 1usize..8,
        ) {
            let model = shared_model();
            let path = wal_path(&format!("prop-{seed}-{eio}-{crash}-{torn}.wal"));
            let fs = FaultFs::with_plan(IoFaultPlan {
                seed,
                eio_per_mille: eio,
                crash_per_mille: crash,
                torn_per_mille: torn,
                ..Default::default()
            });

            let mut acked = Vec::new();
            if let Ok((mut session, _)) =
                IngestSession::with_wal_fs(model, config(), &path, fs)
            {
                for r in 0..rounds {
                    let point = model.point((r % model.len()) as u32).to_vec();
                    match session.apply(vec![DeltaOp::Insert(point)]) {
                        Ok(applied) => acked.push(applied.batch),
                        Err(_) => break, // nothing acknowledged, nothing owed
                    }
                }
            }

            // Recovery on clean storage: exactly the acked batches.
            let clean = FaultFs::real();
            let (_, rec) = Wal::open_with(&path, clean.clone()).unwrap();
            prop_assert_eq!(&rec.batches, &acked);
            // The truncation repair (if any) was fsynced in place.
            let (_, again) = Wal::open_with(&path, clean).unwrap();
            prop_assert_eq!(again.torn_bytes, 0);
            prop_assert_eq!(&again.batches, &acked);

            // And the session-level restart replays them all.
            let (restarted, replayed) =
                IngestSession::with_wal(model, config(), &path).unwrap();
            prop_assert_eq!(replayed, acked.len());
            prop_assert_eq!(restarted.len(), model.len() + acked.len());

            std::fs::remove_file(&path).ok();
        }
    }
}
